#!/usr/bin/env bash
# Offline build + test driver: compiles the workspace with bare rustc against
# the stub crates in ./stubs, bypassing the cargo registry entirely.
#
#   tools/offline-harness/build.sh            # build libs + tests + bins
#   tools/offline-harness/build.sh run-tests  # ...then run every test binary
#   tools/offline-harness/build.sh bins       # build only the release bins
#
# Artifacts land in target/offline/ (gitignored). See README.md here for the
# stub-fidelity contract.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
STUBS="$ROOT/tools/offline-harness/stubs"
OUT="${OUT:-$ROOT/target/offline}"
mkdir -p "$OUT" "$OUT/tests" "$OUT/bins"

RUSTC="${RUSTC:-rustc}"
# -O everywhere: the property suites are too slow unoptimised on one core.
# codegen-units=1 matches [profile.release] so bin timings are representative.
FLAGS=(--edition=2021 -O -C codegen-units=1 -L "$OUT")

# --extern table (filled in as crates build).
declare -A EXT
ext() { # ext <names...> -> "--extern a=... --extern b=..."
    local out=()
    for n in "$@"; do out+=(--extern "$n=${EXT[$n]}"); done
    echo "${out[@]}"
}

lib() { # lib <crate_name> <src> <deps...>
    local name=$1 src=$2; shift 2
    echo "lib   $name"
    # shellcheck disable=SC2046
    "$RUSTC" "${FLAGS[@]}" --crate-type lib --crate-name "$name" "$src" \
        --out-dir "$OUT" $(ext "$@")
    EXT[$name]="$OUT/lib$name.rlib"
}

tbin() { # tbin <out_name> <crate_name> <src> <deps...>
    local out_name=$1 name=$2 src=$3; shift 3
    echo "test  $out_name"
    # shellcheck disable=SC2046
    "$RUSTC" "${FLAGS[@]}" --test --crate-name "$name" "$src" \
        -o "$OUT/tests/$out_name" $(ext "$@")
}

rbin() { # rbin <out_name> <src> <deps...>
    local out_name=$1 src=$2; shift 2
    echo "bin   $out_name"
    # shellcheck disable=SC2046
    "$RUSTC" "${FLAGS[@]}" --crate-name "${out_name//-/_}" "$src" \
        -o "$OUT/bins/$out_name" $(ext "$@")
}

build_stubs() {
    lib rand "$STUBS/rand.rs"
    lib bytes "$STUBS/bytes.rs"
    lib proptest "$STUBS/proptest.rs" rand
    echo "lib   serde_derive (proc-macro)"
    "$RUSTC" --edition=2021 -O --crate-type proc-macro --crate-name serde_derive \
        "$STUBS/serde_derive.rs" --out-dir "$OUT"
    EXT[serde_derive]="$OUT/libserde_derive.so"
    lib serde "$STUBS/serde.rs" serde_derive
    lib serde_json "$STUBS/serde_json.rs" serde
}

build_libs() {
    lib gcmae_obs "$ROOT/crates/obs/src/lib.rs"
    lib gcmae_tensor "$ROOT/crates/tensor/src/lib.rs" gcmae_obs rand
    lib gcmae_graph "$ROOT/crates/graph/src/lib.rs" gcmae_tensor rand
    lib gcmae_nn "$ROOT/crates/nn/src/lib.rs" gcmae_tensor gcmae_graph rand bytes
    lib gcmae_core "$ROOT/crates/core/src/lib.rs" \
        gcmae_obs gcmae_tensor gcmae_graph gcmae_nn rand serde
    lib gcmae_eval "$ROOT/crates/eval/src/lib.rs" gcmae_tensor gcmae_graph gcmae_nn rand
    lib gcmae_baselines "$ROOT/crates/baselines/src/lib.rs" \
        gcmae_tensor gcmae_graph gcmae_nn rand
    lib gcmae_serve "$ROOT/crates/serve/src/lib.rs" \
        gcmae_obs gcmae_tensor gcmae_graph gcmae_nn gcmae_core rand bytes
    lib gcmae_bench "$ROOT/crates/bench/src/lib.rs" \
        gcmae_obs gcmae_tensor gcmae_graph gcmae_nn gcmae_core gcmae_baselines \
        gcmae_eval rand serde serde_json
    lib gcmae_repro "$ROOT/src/lib.rs" \
        gcmae_obs gcmae_tensor gcmae_graph gcmae_nn gcmae_core gcmae_baselines \
        gcmae_eval gcmae_serve rand
}

ALL_DEPS=(gcmae_obs gcmae_tensor gcmae_graph gcmae_nn gcmae_core
    gcmae_baselines gcmae_eval gcmae_serve gcmae_bench gcmae_repro
    rand bytes proptest serde serde_json)

build_tests() {
    # Unit tests: each crate's lib compiled with --test (dev-deps included).
    tbin unit_obs gcmae_obs "$ROOT/crates/obs/src/lib.rs"
    tbin unit_tensor gcmae_tensor "$ROOT/crates/tensor/src/lib.rs" gcmae_obs rand proptest
    tbin unit_graph gcmae_graph "$ROOT/crates/graph/src/lib.rs" gcmae_tensor rand proptest
    tbin unit_nn gcmae_nn "$ROOT/crates/nn/src/lib.rs" \
        gcmae_tensor gcmae_graph rand bytes proptest
    tbin unit_core gcmae_core "$ROOT/crates/core/src/lib.rs" \
        gcmae_obs gcmae_tensor gcmae_graph gcmae_nn rand serde proptest serde_json
    tbin unit_eval gcmae_eval "$ROOT/crates/eval/src/lib.rs" \
        gcmae_tensor gcmae_graph gcmae_nn rand proptest
    tbin unit_baselines gcmae_baselines "$ROOT/crates/baselines/src/lib.rs" \
        gcmae_tensor gcmae_graph gcmae_nn rand proptest gcmae_eval
    tbin unit_serve gcmae_serve "$ROOT/crates/serve/src/lib.rs" \
        gcmae_obs gcmae_tensor gcmae_graph gcmae_nn gcmae_core rand bytes
    tbin unit_bench gcmae_bench "$ROOT/crates/bench/src/lib.rs" \
        gcmae_obs gcmae_tensor gcmae_graph gcmae_nn gcmae_core gcmae_baselines \
        gcmae_eval rand serde serde_json
    tbin unit_repro gcmae_repro "$ROOT/src/lib.rs" "${ALL_DEPS[@]:0:8}" rand proptest bytes

    # Integration tests.
    local t
    for t in "$ROOT"/crates/tensor/tests/*.rs; do
        tbin "tensor_$(basename "$t" .rs)" "$(basename "$t" .rs)" "$t" \
            gcmae_tensor gcmae_obs rand proptest
    done
    for t in "$ROOT"/crates/core/tests/*.rs; do
        tbin "core_$(basename "$t" .rs)" "$(basename "$t" .rs)" "$t" \
            gcmae_core gcmae_obs gcmae_tensor gcmae_graph gcmae_nn rand serde \
            serde_json proptest
    done
    for t in "$ROOT"/tests/*.rs; do
        tbin "repro_$(basename "$t" .rs)" "$(basename "$t" .rs)" "$t" "${ALL_DEPS[@]}"
    done
}

build_bins() {
    rbin bench_kernels "$ROOT/crates/bench/src/bin/bench_kernels.rs" "${ALL_DEPS[@]}"
    rbin bench_training_scale "$ROOT/crates/bench/src/bin/bench_training_scale.rs" "${ALL_DEPS[@]}"
    rbin gcmae-serve "$ROOT/crates/serve/src/bin/gcmae_serve.rs" "${ALL_DEPS[@]:0:8}" rand bytes
    rbin bench_serve "$ROOT/crates/serve/src/bin/bench_serve.rs" "${ALL_DEPS[@]:0:8}" rand bytes
    rbin bench_chaos "$ROOT/crates/serve/src/bin/bench_chaos.rs" "${ALL_DEPS[@]:0:8}" rand bytes
    rbin gcmae-gateway "$ROOT/crates/serve/src/bin/gcmae_gateway.rs" "${ALL_DEPS[@]:0:8}" rand bytes
    rbin bench_shards "$ROOT/crates/serve/src/bin/bench_shards.rs" "${ALL_DEPS[@]:0:8}" rand bytes
    rbin bench_ann "$ROOT/crates/serve/src/bin/bench_ann.rs" "${ALL_DEPS[@]:0:8}" rand bytes
}

build_examples() {
    local e
    for e in "$ROOT"/examples/*.rs; do
        rbin "example_$(basename "$e" .rs)" "$e" "${ALL_DEPS[@]}"
    done
}

run_tests() {
    local bin rc=0
    for bin in "$OUT"/tests/*; do
        [ -x "$bin" ] || continue
        echo "== $(basename "$bin")"
        "$bin" --test-threads=1 -q || rc=1
    done
    return $rc
}

case "${1:-all}" in
all)
    build_stubs
    build_libs
    build_tests
    build_bins
    build_examples
    ;;
libs)
    build_stubs
    build_libs
    ;;
tests)
    build_stubs
    build_libs
    build_tests
    ;;
bins)
    build_stubs
    build_libs
    build_bins
    ;;
run-tests)
    run_tests
    ;;
*)
    echo "usage: build.sh [all|libs|tests|bins|run-tests]" >&2
    exit 2
    ;;
esac
