//! Offline-build stub for `serde` (with the `derive` feature): a simplified
//! `Serialize` trait that renders JSON directly (`to_json`), and a
//! simplified `Deserialize` that reads from a parsed [`Value`] tree, plus
//! the derive re-exports. See tools/offline-harness/README.md.

pub use serde_derive::{Deserialize, Serialize};

/// Simplified stand-in for serde's `Serialize`: render as a JSON value.
pub trait Serialize {
    fn to_json(&self) -> String;
}

/// Simplified stand-in for serde's `Deserialize`: build from a parsed
/// [`Value`]. `missing` is consulted when a struct field is absent from the
/// JSON object — it errors by default and yields `None` for `Option<T>`,
/// matching real serde's implicit-default handling of `Option` fields.
pub trait Deserialize<'de>: Sized {
    fn from_json(v: &Value) -> Result<Self, String>;

    fn missing(field: &str) -> Result<Self, String> {
        Err(format!("missing field `{field}`"))
    }
}

/// A parsed JSON document (the stub's stand-in for `serde_json::Value`).
/// Objects keep insertion order; duplicate keys resolve to the first.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut i = 0;
        let v = parse_value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing data at byte {i}"));
        }
        Ok(v)
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, word: &str) -> Result<(), String> {
    if b[*i..].starts_with(word.as_bytes()) {
        *i += word.len();
        Ok(())
    } else {
        Err(format!("expected `{word}` at byte {i}"))
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Value, String> {
    skip_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, i, "null").map(|()| Value::Null),
        Some(b't') => expect(b, i, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, i, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, i).map(Value::Str),
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(Value::Arr(items));
                }
                if !items.is_empty() {
                    if b.get(*i) != Some(&b',') {
                        return Err(format!("expected `,` or `]` at byte {i}"));
                    }
                    *i += 1;
                }
                items.push(parse_value(b, i)?);
            }
        }
        Some(b'{') => {
            *i += 1;
            let mut pairs: Vec<(String, Value)> = Vec::new();
            loop {
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(Value::Obj(pairs));
                }
                if !pairs.is_empty() {
                    if b.get(*i) != Some(&b',') {
                        return Err(format!("expected `,` or `}}` at byte {i}"));
                    }
                    *i += 1;
                    skip_ws(b, i);
                }
                let key = parse_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected `:` at byte {i}"));
                }
                *i += 1;
                let val = parse_value(b, i)?;
                pairs.push((key, val));
            }
        }
        Some(_) => parse_number(b, i),
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    *i += 1;
    let mut out = String::new();
    loop {
        match b.get(*i) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *i += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
                *i += 1;
            }
            Some(_) => {
                // advance one UTF-8 scalar
                let start = *i;
                *i += 1;
                while *i < b.len() && (b[*i] & 0xc0) == 0x80 {
                    *i += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<Value, String> {
    let start = *i;
    while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *i += 1;
    }
    let text = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_json(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    _ => Err(format!("expected number, got {v:?}")),
                }
            }
        }
    )*};
}
de_int!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! de_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_json(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN), // serializer renders non-finite as null
                    _ => Err(format!("expected number, got {v:?}")),
                }
            }
        }
    )*};
}
de_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn from_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(x) => Ok(*x),
            _ => Err(format!("expected bool, got {v:?}")),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(format!("expected string, got {v:?}")),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_json).collect(),
            _ => Err(format!("expected array, got {v:?}")),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }

    fn missing(_field: &str) -> Result<Self, String> {
        Ok(None)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> String {
                self.to_string()
            }
        }
    )*};
}
ser_int!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64, bool);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> String {
                if self.is_finite() {
                    self.to_string()
                } else {
                    "null".to_string()
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for String {
    fn to_json(&self) -> String {
        escape(self)
    }
}

impl Serialize for &str {
    fn to_json(&self) -> String {
        escape(self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> String {
        let inner: Vec<String> = self.iter().map(Serialize::to_json).collect();
        format!("[{}]", inner.join(","))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> String {
        match self {
            Some(v) => v.to_json(),
            None => "null".to_string(),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> String {
        (**self).to_json()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
