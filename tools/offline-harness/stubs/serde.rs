//! Offline-build stub for `serde` (with the `derive` feature): a simplified
//! `Serialize` trait that renders JSON directly (`to_json`), plus the derive
//! re-exports. `Deserialize` is a marker — the workspace never parses.
//! See tools/offline-harness/README.md.

pub use serde_derive::{Deserialize, Serialize};

/// Simplified stand-in for serde's `Serialize`: render as a JSON value.
pub trait Serialize {
    fn to_json(&self) -> String;
}

/// Marker stand-in for serde's `Deserialize` (never used at runtime).
pub trait Deserialize<'de> {}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> String {
                self.to_string()
            }
        }
    )*};
}
ser_int!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64, bool);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> String {
                if self.is_finite() {
                    self.to_string()
                } else {
                    "null".to_string()
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for String {
    fn to_json(&self) -> String {
        escape(self)
    }
}

impl Serialize for &str {
    fn to_json(&self) -> String {
        escape(self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> String {
        let inner: Vec<String> = self.iter().map(Serialize::to_json).collect();
        format!("[{}]", inner.join(","))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> String {
        match self {
            Some(v) => v.to_json(),
            None => "null".to_string(),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> String {
        (**self).to_json()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
