//! Offline-build stub for the `bytes` crate: `Bytes`/`BytesMut` as plain
//! `Vec<u8>` wrappers with the little-endian `Buf`/`BufMut` accessors the
//! checkpoint code uses. See tools/offline-harness/README.md.

/// Read cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Append-only byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

/// Immutable byte buffer with a consume-from-front cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: std::sync::Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Self {
            data: std::sync::Arc::new(s.to_vec()),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-range view (copies; the stub does not share storage windows).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::from(self[range.start..range.end].to_vec())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: std::sync::Arc::new(v),
            pos: 0,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end");
        self.pos += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Self {
            data: Vec::with_capacity(n),
        }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}
