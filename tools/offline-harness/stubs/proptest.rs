//! Offline-build stub for the `proptest` crate: just enough surface for the
//! workspace's property tests (`proptest!`, range/tuple/collection
//! strategies, `prop_map`, `any`, `prop_assert*`). No shrinking — a failing
//! case panics with the sampled inputs' debug output lost, which is
//! acceptable for an offline compile-and-run gate. See
//! tools/offline-harness/README.md.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::Range;

pub use rand::rngs::StdRng;

/// Runner configuration (`with_cases` is the only knob the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { s: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    s: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.s.sample_value(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            #[allow(non_snake_case)]
            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.sample_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for a primitive.
pub struct Any<T>(PhantomData<T>);

macro_rules! any_impl {
    ($($t:ty => $s:expr),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                let f: fn(&mut StdRng) -> $t = $s;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(PhantomData)
            }
        }
    )*};
}
any_impl!(
    u64 => |r| rand::Rng::gen::<u64>(r),
    u32 => |r| rand::Rng::gen::<u32>(r),
    bool => |r| rand::Rng::gen::<bool>(r),
    f32 => |r| rand::Rng::gen::<f32>(r),
    usize => |r| rand::Rng::gen::<u64>(r) as usize
);

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// `proptest::num::<ty>::ANY` constants.
pub mod num {
    pub mod u64 {
        pub const ANY: crate::Any<u64> = crate::Any(std::marker::PhantomData);
    }
    pub mod u32 {
        pub const ANY: crate::Any<u32> = crate::Any(std::marker::PhantomData);
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{BTreeSet, Strategy};

    /// Size argument: a fixed length or a half-open range of lengths.
    pub trait IntoSize: Clone {
        fn pick(&self, rng: &mut super::StdRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut super::StdRng) -> usize {
            *self
        }
    }

    impl IntoSize for std::ops::Range<usize> {
        fn pick(&self, rng: &mut super::StdRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, Z> {
        s: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut super::StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.s.sample_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, Z: IntoSize>(s: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { s, size }
    }

    pub struct BTreeSetStrategy<S, Z> {
        s: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSize> Strategy for BTreeSetStrategy<S, Z>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample_value(&self, rng: &mut super::StdRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded retry: duplicate draws must not shrink the set below
            // the requested size forever, but tiny domains must not loop.
            let mut attempts = 0;
            while out.len() < n && attempts < 64 * (n + 1) {
                out.insert(self.s.sample_value(rng));
                attempts += 1;
            }
            out
        }
    }

    pub fn btree_set<S: Strategy, Z: IntoSize>(s: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { s, size }
    }
}

/// Deterministic per-test seed (FNV-1a over the test name).
pub fn test_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fresh RNG for one property test.
pub fn test_rng(name: &str) -> StdRng {
    <StdRng as rand::SeedableRng>::seed_from_u64(test_seed(name))
}

/// Sampling helper so the `proptest!` expansion stays path-hygienic.
pub fn sample<S: Strategy>(s: &S, rng: &mut StdRng) -> S::Value {
    s.sample_value(rng)
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Prelude mirroring `proptest::prelude::*` for the used surface.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}
