//! Offline-build stub for the `rand` crate (the 0.8 API subset this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen}`). Deterministic SplitMix64 core — statistical
//! quality is irrelevant for compile checks and kernel benchmarks, but the
//! stream is reproducible so seeded tests stay stable within a harness run.
//!
//! NOT the real crate: numeric streams differ from rand 0.8, so any test
//! asserting exact values derived from the RNG stream is only meaningful
//! under the real dependency. See tools/offline-harness/README.md.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry point (`seed_from_u64` is the only constructor the
/// workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every core RNG.
pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

pub mod rngs {
    /// SplitMix64-backed stand-in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0xA076_1D64_78BD_642F,
            }
        }
    }
}

/// `Rng::gen` distribution (uniform over the type's natural range;
/// `[0, 1)` for floats).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Per-type uniform sampling (rand's `SampleUniform`). A single blanket
/// `SampleRange` impl over this trait — mirroring rand's structure — is what
/// lets `f32_val + rng.gen_range(-0.3..0.3)` infer the literals as f32.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128 + inclusive as i128) as u128;
                assert!(span > 0, "empty gen_range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "empty gen_range");
                let f = <$t as Standard>::sample_standard(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// `gen_range` argument trait (rand's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}
