//! Offline-build stub for `serde_derive`: a dependency-free proc-macro that
//! implements the harness's simplified `serde::Serialize` trait (JSON via
//! `to_json`) and `serde::Deserialize` trait (from a parsed `serde::Value`)
//! for non-generic structs with named fields and enums with unit/struct
//! variants — the only shapes this workspace derives.
//! See tools/offline-harness/README.md.

extern crate proc_macro;

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Strips attributes/visibility and returns (`"struct"` or `"enum"`, type
/// name, brace body). The workspace derives no generic types.
fn parse_type(input: TokenStream) -> (&'static str, String, TokenStream) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + bracket group
            TokenTree::Ident(id) if *id.to_string() == *"pub" => i += 1,
            TokenTree::Ident(id) if *id.to_string() == *"struct" => break "struct",
            TokenTree::Ident(id) if *id.to_string() == *"enum" => break "enum",
            _ => i += 1,
        }
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected type name, got {t}"),
    };
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no body on {name}"));
    (kind, name, body)
}

/// Generated expression that reads struct field `f` out of object `src`,
/// falling back to `Deserialize::missing` when the key is absent.
fn field_expr(src: &str, f: &str) -> String {
    format!(
        "match serde::Value::get({src}, \"{f}\") {{ \
         Some(x) => serde::Deserialize::from_json(x)?, \
         None => serde::Deserialize::missing(\"{f}\")?, }}"
    )
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (kind, name, body) = parse_type(input);
    let mut code = format!(
        "#[allow(deprecated)] impl<'de> serde::Deserialize<'de> for {name} {{ \
         fn from_json(v: &serde::Value) -> Result<Self, String> {{"
    );
    if kind == "struct" {
        let fields = parse_named_fields(body);
        code.push_str(&format!(
            "if !matches!(v, serde::Value::Obj(_)) {{ \
             return Err(format!(\"expected object for {name}, got {{v:?}}\")); }} \
             Ok({name} {{"
        ));
        for f in &fields {
            code.push_str(&format!("{f}: {},", field_expr("v", f)));
        }
        code.push_str("})");
    } else {
        // Externally tagged: unit variants are plain strings, struct
        // variants are single-key objects `{"Variant":{...}}`.
        let variants = parse_variants(body);
        code.push_str("match v { serde::Value::Str(tag) => match tag.as_str() {");
        for (vname, vfields) in &variants {
            if vfields.is_empty() {
                code.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),"));
            }
        }
        code.push_str(&format!(
            "other => Err(format!(\"unknown {name} variant `{{other}}`\")), }},"
        ));
        code.push_str(
            "serde::Value::Obj(pairs) if pairs.len() == 1 => { \
             let (tag, body) = &pairs[0]; match tag.as_str() {",
        );
        for (vname, vfields) in &variants {
            if !vfields.is_empty() {
                code.push_str(&format!("\"{vname}\" => Ok({name}::{vname} {{"));
                for f in vfields {
                    code.push_str(&format!("{f}: {},", field_expr("body", f)));
                }
                code.push_str("}),");
            }
        }
        code.push_str(&format!(
            "other => Err(format!(\"unknown {name} variant `{{other}}`\")), }} }},"
        ));
        code.push_str(&format!(
            "_ => Err(format!(\"expected {name} tag, got {{v:?}}\")), }}"
        ));
    }
    code.push_str("} }");
    code.parse().expect("generated impl parses")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (kind, name, body) = parse_type(input);

    let out = if kind == "struct" {
        let fields = parse_named_fields(body);
        let mut code = format!(
            "impl serde::Serialize for {name} {{ fn to_json(&self) -> String {{ \
             let mut s = String::from(\"{{\");"
        );
        for (idx, f) in fields.iter().enumerate() {
            if idx > 0 {
                code.push_str("s.push(',');");
            }
            code.push_str(&format!(
                "s.push_str(\"\\\"{f}\\\":\"); \
                 s.push_str(&serde::Serialize::to_json(&self.{f}));"
            ));
        }
        code.push_str("s.push('}'); s } }");
        code
    } else {
        let variants = parse_variants(body);
        let mut arms = String::new();
        for (vname, vfields) in &variants {
            if vfields.is_empty() {
                arms.push_str(&format!(
                    "{name}::{vname} => \"\\\"{vname}\\\"\".to_string(),"
                ));
            } else {
                let binders = vfields.join(", ");
                let mut inner = format!(
                    "{name}::{vname} {{ {binders} }} => {{ \
                     let mut s = String::from(\"{{\\\"{vname}\\\":{{\");"
                );
                for (idx, f) in vfields.iter().enumerate() {
                    if idx > 0 {
                        inner.push_str("s.push(',');");
                    }
                    inner.push_str(&format!(
                        "s.push_str(\"\\\"{f}\\\":\"); \
                         s.push_str(&serde::Serialize::to_json({f}));"
                    ));
                }
                inner.push_str("s.push_str(\"}}\"); s },");
                arms.push_str(&inner);
            }
        }
        format!(
            "impl serde::Serialize for {name} {{ fn to_json(&self) -> String {{ \
             match self {{ {arms} }} }} }}"
        )
    };
    out.parse().expect("generated impl parses")
}

/// Field names of a named-field body: `(attr)* (pub)? name : type ,`*.
/// Types are skipped with angle-bracket-depth tracking.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if *id.to_string() == *"pub" => i += 1,
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                // expect ':', then skip the type up to a top-level ','
                debug_assert!(matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'));
                i += 1;
                let mut depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    fields
}

/// Variants of an enum body: name → field names (empty for unit variants).
fn parse_variants(body: TokenStream) -> Vec<(String, Vec<String>)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let vname = id.to_string();
                i += 1;
                let mut vfields = Vec::new();
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Brace {
                        vfields = parse_named_fields(g.stream());
                    }
                    i += 1;
                }
                variants.push((vname, vfields));
                // skip to after the variant separator
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    variants
}
