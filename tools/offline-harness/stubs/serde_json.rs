//! Offline-build stub for `serde_json`: `to_string` over the harness's
//! simplified `serde::Serialize` and `from_str` over its simplified
//! `serde::Deserialize`/`serde::Value`. See tools/offline-harness/README.md.

/// Parse or mapping error, carrying the stub's diagnostic text.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stub error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json())
}

pub fn from_str<'de, T: serde::Deserialize<'de>>(text: &'de str) -> Result<T, Error> {
    let value = serde::Value::parse(text).map_err(Error)?;
    T::from_json(&value).map_err(Error)
}
