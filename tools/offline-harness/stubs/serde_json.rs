//! Offline-build stub for `serde_json`: `to_string` over the harness's
//! simplified `serde::Serialize`. See tools/offline-harness/README.md.

/// Serialization error (never produced by the stub, kept for signature
/// compatibility).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json())
}
