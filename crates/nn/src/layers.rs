//! Dense layers: linear, MLP, activations, dropout.

use std::sync::Arc;

use gcmae_tensor::{init, TensorId};
use rand::Rng;

use crate::param::{ParamStore, Session};

/// Activation functions used across the models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Act {
    /// None.
    None,
    /// Relu.
    Relu,
    /// Elu.
    Elu,
    /// Tanh.
    Tanh,
    /// PReLU-style leaky with fixed slope (GraphMAE default family).
    Leaky,
}

impl Act {
    /// Applies the activation on the tape.
    pub fn apply(self, sess: &mut Session, x: TensorId) -> TensorId {
        match self {
            Act::None => x,
            Act::Relu => sess.tape.relu(x),
            Act::Elu => sess.tape.elu(x, 1.0),
            Act::Tanh => sess.tape.tanh(x),
            Act::Leaky => sess.tape.leaky_relu(x, 0.2),
        }
    }
}

/// Inverted dropout; identity when `training` is false or `p == 0`.
pub fn dropout<R: Rng>(
    sess: &mut Session,
    x: TensorId,
    p: f32,
    training: bool,
    rng: &mut R,
) -> TensorId {
    if !training || p <= 0.0 {
        return x;
    }
    assert!(p < 1.0, "dropout rate must be < 1");
    let len = sess.tape.value(x).len();
    let keep = 1.0 - p;
    let inv = 1.0 / keep;
    let mask: Vec<f32> =
        (0..len).map(|_| if rng.gen::<f32>() < keep { inv } else { 0.0 }).collect();
    sess.tape.dropout(x, Arc::new(mask))
}

/// Fully-connected layer `x·W (+ b)`.
#[derive(Clone, Debug)]
pub struct Linear {
    pub(crate) w: crate::param::ParamId,
    pub(crate) b: Option<crate::param::ParamId>,
    /// in dim.
    pub in_dim: usize,
    /// out dim.
    pub out_dim: usize,
}

impl Linear {
    /// Glorot-initialized linear layer.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let w = store.create(init::glorot_uniform(in_dim, out_dim, rng));
        let b = bias.then(|| store.create(init::zeros(1, out_dim)));
        Self { w, b, in_dim, out_dim }
    }

    /// Applies the layer.
    pub fn forward(&self, sess: &mut Session, store: &ParamStore, x: TensorId) -> TensorId {
        let w = sess.param(store, self.w);
        let mut out = sess.tape.matmul(x, w);
        if let Some(b) = self.b {
            let b = sess.param(store, b);
            out = sess.tape.add_bias(out, b);
        }
        out
    }
}

/// Multi-layer perceptron with a shared activation between layers.
#[derive(Clone, Debug)]
pub struct Mlp {
    pub(crate) layers: Vec<Linear>,
    pub(crate) act: Act,
}

impl Mlp {
    /// Builds an MLP over the given layer widths (`dims.len() >= 2`).
    pub fn new<R: Rng>(store: &mut ParamStore, dims: &[usize], act: Act, rng: &mut R) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(store, w[0], w[1], true, rng))
            .collect();
        Self { layers, act }
    }

    /// Applies the MLP (activation between layers, none after the last).
    pub fn forward(&self, sess: &mut Session, store: &ParamStore, x: TensorId) -> TensorId {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, l) in self.layers.iter().enumerate() {
            h = l.forward(sess, store, h);
            if i != last {
                h = self.act.apply(sess, h);
            }
        }
        h
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, 4, 3, true, &mut rng);
        let mut sess = Session::new();
        let x = sess.tape.constant(Matrix::zeros(5, 4));
        let y = lin.forward(&mut sess, &store, x);
        assert_eq!(sess.tape.value(y).shape(), (5, 3));
        // zero input + zero bias → zero output
        assert_eq!(sess.tape.value(y).sum(), 0.0);
    }

    #[test]
    fn mlp_learns_identity_ish_mapping() {
        // Train a 1-2-1 MLP to fit y = 2x on a few points.
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &[1, 8, 1], Act::Tanh, &mut rng);
        let xs = Matrix::from_vec(4, 1, vec![-1.0, -0.5, 0.5, 1.0]);
        let ys = Matrix::from_vec(4, 1, vec![-2.0, -1.0, 1.0, 2.0]);
        let mut adam = crate::optim::Adam::new(0.05, 0.0);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let mut sess = Session::new();
            let x = sess.tape.constant(xs.clone());
            let t = sess.tape.constant(ys.clone());
            let p = mlp.forward(&mut sess, &store, x);
            let d = sess.tape.sub(p, t);
            let loss = sess.tape.frob_sq(d);
            last = sess.tape.value(loss).scalar_value();
            first.get_or_insert(last);
            let mut grads = sess.tape.backward(loss);
            adam.step(&mut store, &sess, &mut grads);
        }
        assert!(last < first.unwrap() * 0.05, "loss {} -> {}", first.unwrap(), last);
    }

    #[test]
    fn dropout_is_identity_in_eval_mode() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sess = Session::new();
        let x = sess.tape.constant(Matrix::full(4, 4, 1.0));
        let y = dropout(&mut sess, x, 0.5, false, &mut rng);
        assert_eq!(x, y);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sess = Session::new();
        let x = sess.tape.constant(Matrix::full(100, 100, 1.0));
        let y = dropout(&mut sess, x, 0.3, true, &mut rng);
        let mean = sess.tape.value(y).mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }
}
