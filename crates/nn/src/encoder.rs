//! Configurable multi-layer GNN encoder/decoder stacks.

use gcmae_tensor::TensorId;
use rand::Rng;

use crate::gnn::{GatLayer, GcnLayer, GinLayer, SageLayer};
use crate::graph_ops::GraphOps;
use crate::layers::{dropout, Act};
use crate::param::{ParamStore, Session};

/// Which GNN architecture to stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncoderKind {
    /// Gcn.
    Gcn,
    /// GraphSAGE with a mean aggregator (the paper's choice for GCMAE and
    /// MaskGAE so subgraph mini-batching works).
    Sage,
    /// GAT with the given number of attention heads (GraphMAE's choice).
    /// Gat.
    Gat {
        /// Number of attention heads.
        heads: usize,
    },
    /// Gin.
    Gin,
}

/// Encoder hyper-parameters.
#[derive(Clone, Debug)]
pub struct EncoderConfig {
    /// kind.
    pub kind: EncoderKind,
    /// in dim.
    pub in_dim: usize,
    /// hidden dim.
    pub hidden_dim: usize,
    /// out dim.
    pub out_dim: usize,
    /// layers.
    pub layers: usize,
    /// act.
    pub act: Act,
    /// dropout.
    pub dropout: f32,
}

impl EncoderConfig {
    /// Two-layer GraphSAGE with the paper's defaults.
    pub fn sage(in_dim: usize, hidden_dim: usize, out_dim: usize) -> Self {
        Self {
            kind: EncoderKind::Sage,
            in_dim,
            hidden_dim,
            out_dim,
            layers: 2,
            act: Act::Elu,
            dropout: 0.2,
        }
    }

    /// Two-layer GCN.
    pub fn gcn(in_dim: usize, hidden_dim: usize, out_dim: usize) -> Self {
        Self { kind: EncoderKind::Gcn, ..Self::sage(in_dim, hidden_dim, out_dim) }
    }
}

pub(crate) enum Layer {
    Gcn(GcnLayer),
    Sage(SageLayer),
    Gat(GatLayer),
    Gin(GinLayer),
}

/// A stack of GNN layers with activation + dropout between them.
pub struct Encoder {
    pub(crate) layers: Vec<Layer>,
    pub(crate) act: Act,
    dropout: f32,
    out_dim: usize,
}

impl Encoder {
    /// Builds the encoder described by `cfg`.
    pub fn new<R: Rng>(store: &mut ParamStore, cfg: &EncoderConfig, rng: &mut R) -> Self {
        assert!(cfg.layers >= 1, "need at least one layer");
        let mut layers = Vec::with_capacity(cfg.layers);
        for i in 0..cfg.layers {
            let ind = if i == 0 { cfg.in_dim } else { cfg.hidden_dim };
            let outd = if i + 1 == cfg.layers { cfg.out_dim } else { cfg.hidden_dim };
            let layer = match cfg.kind {
                EncoderKind::Gcn => Layer::Gcn(GcnLayer::new(store, ind, outd, rng)),
                EncoderKind::Sage => Layer::Sage(SageLayer::new(store, ind, outd, rng)),
                EncoderKind::Gat { heads } => {
                    let concat = i + 1 != cfg.layers;
                    let heads = if concat { heads } else { 1 };
                    Layer::Gat(GatLayer::new(store, ind, outd, heads.max(1), concat, rng))
                }
                EncoderKind::Gin => Layer::Gin(GinLayer::new(store, ind, outd, rng)),
            };
            layers.push(layer);
        }
        Self { layers, act: cfg.act, dropout: cfg.dropout, out_dim: cfg.out_dim }
    }

    /// Applies the stack; activation and dropout are used between layers and
    /// after the last layer the output is returned raw.
    pub fn forward<R: Rng>(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        x: TensorId,
        ops: &GraphOps,
        training: bool,
        rng: &mut R,
    ) -> TensorId {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = dropout(sess, h, self.dropout, training, rng);
            h = match layer {
                Layer::Gcn(l) => l.forward(sess, store, h, ops),
                Layer::Sage(l) => l.forward(sess, store, h, ops),
                Layer::Gat(l) => l.forward(sess, store, h, ops),
                Layer::Gin(l) => l.forward(sess, store, h, ops),
            };
            if i != last {
                h = self.act.apply(sess, h);
            }
        }
        h
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Number of stacked layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::Graph;
    use gcmae_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(kind: EncoderKind, layers: usize) -> (usize, usize) {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let ops = GraphOps::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cfg = EncoderConfig {
            kind,
            in_dim: 4,
            hidden_dim: 8,
            out_dim: 5,
            layers,
            act: Act::Elu,
            dropout: 0.1,
        };
        let enc = Encoder::new(&mut store, &cfg, &mut rng);
        let mut sess = Session::new();
        let x = sess.tape.constant(Matrix::from_fn(6, 4, |r, c| (r * c) as f32 * 0.05));
        let h = enc.forward(&mut sess, &store, x, &ops, true, &mut rng);
        sess.tape.value(h).shape()
    }

    #[test]
    fn all_kinds_produce_expected_shapes() {
        for kind in [
            EncoderKind::Gcn,
            EncoderKind::Sage,
            EncoderKind::Gat { heads: 2 },
            EncoderKind::Gin,
        ] {
            assert_eq!(run(kind, 2), (6, 5), "{kind:?}");
        }
    }

    #[test]
    fn depth_is_configurable() {
        for layers in [1, 2, 4] {
            assert_eq!(run(EncoderKind::Gcn, layers), (6, 5), "{layers} layers");
        }
    }
}
