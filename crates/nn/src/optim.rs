//! Optimizers. The paper trains everything with Adam (lr 0.001, weight decay
//! 1e-4); a plain SGD is included for the linear probes.

use gcmae_tensor::Grads;

use crate::param::{ParamStore, Session};

/// Adam with decoupled weight decay (AdamW).
#[derive(Clone, Debug)]
pub struct Adam {
    /// lr.
    pub lr: f32,
    /// beta1.
    pub beta1: f32,
    /// beta2.
    pub beta2: f32,
    /// eps.
    pub eps: f32,
    /// weight decay.
    pub weight_decay: f32,
    t: u64,
}

impl Adam {
    /// Adam with the paper's defaults for the given learning rate.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay, t: 0 }
    }

    /// Applies one update using the gradients of the session's bound
    /// parameters. Parameters without gradients are left untouched.
    pub fn step(&mut self, store: &mut ParamStore, session: &Session, grads: &mut Grads) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for &(pid, tid) in session.binds() {
            let Some(g) = grads.take(tid) else { continue };
            let p = store.param_mut(pid);
            debug_assert_eq!(p.value.shape(), g.shape());
            let lr = self.lr;
            let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);
            let wd = self.weight_decay;
            for i in 0..p.value.len() {
                let gi = g.as_slice()[i];
                let m = &mut p.m.as_mut_slice()[i];
                *m = b1 * *m + (1.0 - b1) * gi;
                let v = &mut p.v.as_mut_slice()[i];
                *v = b2 * *v + (1.0 - b2) * gi * gi;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                let w = &mut p.value.as_mut_slice()[i];
                *w -= lr * (mhat / (vhat.sqrt() + eps) + wd * *w);
            }
        }
    }
}

/// Plain SGD (probes, SVM-style training loops).
#[derive(Clone, Debug)]
pub struct Sgd {
    /// lr.
    /// Learning rate.
    pub lr: f32,
    /// weight decay.
    pub weight_decay: f32,
}

impl Sgd {
    /// Plain SGD with the given learning rate and L2 weight decay.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self { lr, weight_decay }
    }

    /// Applies one update.
    pub fn step(&self, store: &mut ParamStore, session: &Session, grads: &mut Grads) {
        for &(pid, tid) in session.binds() {
            let Some(g) = grads.take(tid) else { continue };
            let p = store.param_mut(pid);
            for i in 0..p.value.len() {
                let w = &mut p.value.as_mut_slice()[i];
                *w -= self.lr * (g.as_slice()[i] + self.weight_decay * *w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_tensor::Matrix;

    /// Minimizes ‖w‖² for a few steps and checks monotone decrease.
    fn run_quadratic(optim: &mut dyn FnMut(&mut ParamStore, &Session, &mut Grads)) -> Vec<f32> {
        let mut store = ParamStore::new();
        let id = store.create(Matrix::from_vec(1, 2, vec![2.0, -3.0]));
        let mut history = vec![];
        for _ in 0..50 {
            let mut sess = Session::new();
            let w = sess.param(&store, id);
            let loss = sess.tape.frob_sq(w);
            history.push(sess.tape.value(loss).scalar_value());
            let mut grads = sess.tape.backward(loss);
            optim(&mut store, &sess, &mut grads);
        }
        history
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut adam = Adam::new(0.1, 0.0);
        let h = run_quadratic(&mut |s, sess, g| adam.step(s, sess, g));
        assert!(h.last().unwrap() < &0.5, "final loss {}", h.last().unwrap());
        assert!(h[0] > *h.last().unwrap());
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let sgd = Sgd::new(0.1, 0.0);
        let h = run_quadratic(&mut |s, sess, g| sgd.step(s, sess, g));
        assert!(h.last().unwrap() < &1e-3, "final loss {}", h.last().unwrap());
    }

    #[test]
    fn weight_decay_shrinks_unused_params() {
        let mut store = ParamStore::new();
        let used = store.create(Matrix::scalar(1.0));
        let unused = store.create(Matrix::scalar(5.0));
        let mut adam = Adam::new(0.01, 0.1);
        for _ in 0..10 {
            let mut sess = Session::new();
            let w = sess.param(&store, used);
            // bind but don't use the second param
            let _ = sess.param(&store, unused);
            let loss = sess.tape.frob_sq(w);
            let mut grads = sess.tape.backward(loss);
            adam.step(&mut store, &sess, &mut grads);
        }
        // unused param got no gradient → untouched (decay is tied to updates)
        assert_eq!(store.value(unused).scalar_value(), 5.0);
        assert!(store.value(used).scalar_value() < 1.0);
    }
}
