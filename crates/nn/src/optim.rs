//! Optimizers. The paper trains everything with Adam (lr 0.001, weight decay
//! 1e-4); a plain SGD is included for the linear probes.

use gcmae_tensor::Grads;

use crate::param::{ParamStore, Session};

/// Adam with decoupled weight decay (AdamW).
#[derive(Clone, Debug)]
pub struct Adam {
    /// lr.
    pub lr: f32,
    /// beta1.
    pub beta1: f32,
    /// beta2.
    pub beta2: f32,
    /// eps.
    pub eps: f32,
    /// weight decay.
    pub weight_decay: f32,
    t: u64,
}

impl Adam {
    /// Adam with the paper's defaults for the given learning rate.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
        }
    }

    /// Number of updates applied so far (drives bias correction).
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Overwrites the step count. Restoring a training checkpoint must set
    /// this together with the moment estimates, otherwise the bias
    /// correction after resume differs from the uninterrupted run.
    pub fn set_step_count(&mut self, t: u64) {
        self.t = t;
    }

    /// Applies one update using the gradients of the session's bound
    /// parameters. Parameters without gradients are left untouched.
    pub fn step(&mut self, store: &mut ParamStore, session: &Session, grads: &mut Grads) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for &(pid, tid) in session.binds() {
            let Some(g) = grads.take(tid) else { continue };
            let p = store.param_mut(pid);
            debug_assert_eq!(p.value.shape(), g.shape());
            let lr = self.lr;
            let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);
            let wd = self.weight_decay;
            for i in 0..p.value.len() {
                let gi = g.as_slice()[i];
                let m = &mut p.m.as_mut_slice()[i];
                *m = b1 * *m + (1.0 - b1) * gi;
                let v = &mut p.v.as_mut_slice()[i];
                *v = b2 * *v + (1.0 - b2) * gi * gi;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                let w = &mut p.value.as_mut_slice()[i];
                *w -= lr * (mhat / (vhat.sqrt() + eps) + wd * *w);
            }
            gcmae_tensor::arena::recycle_matrix(g);
        }
    }
}

/// Rescales all session-bound gradients in place so their *global* L2 norm
/// does not exceed `max_norm`, and returns the pre-clip norm.
///
/// The norm is accumulated serially in `f64`, so the result is bit-identical
/// at any thread count. A non-finite norm leaves the gradients untouched —
/// scaling by `max_norm / NaN` would only smear the poison around; the
/// trainer's divergence guard is the layer that handles that case.
pub fn clip_global_norm(session: &Session, grads: &mut Grads, max_norm: f32) -> f32 {
    let norm = global_grad_norm(session, grads);
    if norm.is_finite() && norm > max_norm {
        let scale = max_norm / norm;
        for &(_, tid) in session.binds() {
            if let Some(g) = grads.get_mut(tid) {
                g.scale_inplace(scale);
            }
        }
    }
    norm
}

/// Global L2 norm of all session-bound gradients, without modifying them.
///
/// Accumulated serially in `f64`, so the result is bit-identical at any
/// thread count — safe to report from telemetry on deterministic runs.
pub fn global_grad_norm(session: &Session, grads: &Grads) -> f32 {
    let mut sq = 0.0f64;
    for &(_, tid) in session.binds() {
        if let Some(g) = grads.get(tid) {
            sq += g
                .as_slice()
                .iter()
                .map(|&x| f64::from(x) * f64::from(x))
                .sum::<f64>();
        }
    }
    sq.sqrt() as f32
}

/// Plain SGD (probes, SVM-style training loops).
#[derive(Clone, Debug)]
pub struct Sgd {
    /// lr.
    /// Learning rate.
    pub lr: f32,
    /// weight decay.
    pub weight_decay: f32,
}

impl Sgd {
    /// Plain SGD with the given learning rate and L2 weight decay.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self { lr, weight_decay }
    }

    /// Applies one update.
    pub fn step(&self, store: &mut ParamStore, session: &Session, grads: &mut Grads) {
        for &(pid, tid) in session.binds() {
            let Some(g) = grads.take(tid) else { continue };
            let p = store.param_mut(pid);
            for i in 0..p.value.len() {
                let w = &mut p.value.as_mut_slice()[i];
                *w -= self.lr * (g.as_slice()[i] + self.weight_decay * *w);
            }
            gcmae_tensor::arena::recycle_matrix(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_tensor::Matrix;

    /// Minimizes ‖w‖² for a few steps and checks monotone decrease.
    fn run_quadratic(optim: &mut dyn FnMut(&mut ParamStore, &Session, &mut Grads)) -> Vec<f32> {
        let mut store = ParamStore::new();
        let id = store.create(Matrix::from_vec(1, 2, vec![2.0, -3.0]));
        let mut history = vec![];
        for _ in 0..50 {
            let mut sess = Session::new();
            let w = sess.param(&store, id);
            let loss = sess.tape.frob_sq(w);
            history.push(sess.tape.value(loss).scalar_value());
            let mut grads = sess.tape.backward(loss);
            optim(&mut store, &sess, &mut grads);
        }
        history
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut adam = Adam::new(0.1, 0.0);
        let h = run_quadratic(&mut |s, sess, g| adam.step(s, sess, g));
        assert!(h.last().unwrap() < &0.5, "final loss {}", h.last().unwrap());
        assert!(h[0] > *h.last().unwrap());
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let sgd = Sgd::new(0.1, 0.0);
        let h = run_quadratic(&mut |s, sess, g| sgd.step(s, sess, g));
        assert!(
            h.last().unwrap() < &1e-3,
            "final loss {}",
            h.last().unwrap()
        );
    }

    #[test]
    fn step_count_roundtrips() {
        let mut adam = Adam::new(0.1, 0.0);
        assert_eq!(adam.step_count(), 0);
        let _ = run_quadratic(&mut |s, sess, g| adam.step(s, sess, g));
        assert_eq!(adam.step_count(), 50);
        adam.set_step_count(7);
        assert_eq!(adam.step_count(), 7);
    }

    #[test]
    fn clip_rescales_only_above_threshold() {
        let mut store = ParamStore::new();
        let a = store.create(Matrix::from_vec(1, 2, vec![3.0, 0.0]));
        let b = store.create(Matrix::from_vec(1, 1, vec![-4.0]));
        let grads_for = |store: &ParamStore| {
            let mut sess = Session::new();
            let wa = sess.param(store, a);
            let wb = sess.param(store, b);
            // loss = ½‖a‖² + ½‖b‖² → grad = the values themselves
            let la = sess.tape.frob_sq(wa);
            let lb = sess.tape.frob_sq(wb);
            let loss = sess.tape.add(la, lb);
            let grads = sess.tape.backward(loss);
            (sess, grads)
        };

        // grad = 2·w → norm = 2·5 = 10; clip at 1.0
        let (sess, mut grads) = grads_for(&store);
        let norm = clip_global_norm(&sess, &mut grads, 1.0);
        assert!((norm - 10.0).abs() < 1e-5, "pre-clip norm {norm}");
        let tid = sess.binds()[0].1;
        let g = grads.get(tid).unwrap();
        assert!(
            (g.as_slice()[0] - 0.6).abs() < 1e-6,
            "scaled to 6/10 of unit norm"
        );

        // clip far above the norm → untouched
        let (sess, mut grads) = grads_for(&store);
        let norm = clip_global_norm(&sess, &mut grads, 100.0);
        assert!((norm - 10.0).abs() < 1e-5);
        let g = grads.get(sess.binds()[0].1).unwrap();
        assert_eq!(g.as_slice()[0], 6.0);
    }

    #[test]
    fn clip_leaves_non_finite_gradients_for_the_guard() {
        let mut store = ParamStore::new();
        let a = store.create(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let mut sess = Session::new();
        let wa = sess.param(&store, a);
        let loss = sess.tape.frob_sq(wa);
        let mut grads = sess.tape.backward(loss);
        grads.get_mut(sess.binds()[0].1).unwrap().as_mut_slice()[0] = f32::NAN;
        let norm = clip_global_norm(&sess, &mut grads, 1.0);
        assert!(norm.is_nan());
        // the finite entry was not rescaled
        assert_eq!(grads.get(sess.binds()[0].1).unwrap().as_slice()[1], 2.0);
    }

    #[test]
    fn weight_decay_shrinks_unused_params() {
        let mut store = ParamStore::new();
        let used = store.create(Matrix::scalar(1.0));
        let unused = store.create(Matrix::scalar(5.0));
        let mut adam = Adam::new(0.01, 0.1);
        for _ in 0..10 {
            let mut sess = Session::new();
            let w = sess.param(&store, used);
            // bind but don't use the second param
            let _ = sess.param(&store, unused);
            let loss = sess.tape.frob_sq(w);
            let mut grads = sess.tape.backward(loss);
            adam.step(&mut store, &sess, &mut grads);
        }
        // unused param got no gradient → untouched (decay is tied to updates)
        assert_eq!(store.value(unused).scalar_value(), 5.0);
        assert!(store.value(used).scalar_value() < 1.0);
    }
}
