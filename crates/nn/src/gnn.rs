//! Graph neural-network layers: GCN, GraphSAGE, GAT, GIN.

use gcmae_tensor::{init, TensorId};
use rand::Rng;

use crate::graph_ops::GraphOps;
use crate::layers::{Act, Linear, Mlp};
use crate::param::{ParamId, ParamStore, Session};

/// GCN layer: `σ(D̃^{-1/2}(A+I)D̃^{-1/2} · X · W + b)` (activation applied by
/// the encoder).
#[derive(Clone, Debug)]
pub struct GcnLayer {
    pub(crate) lin: Linear,
}

impl GcnLayer {
    /// Glorot-initialized layer mapping `in_dim` to `out_dim`.
    pub fn new<R: Rng>(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Self { lin: Linear::new(store, in_dim, out_dim, true, rng) }
    }

    /// Applies the layer to `x` using the view's sparse operators.
    pub fn forward(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        x: TensorId,
        ops: &GraphOps,
    ) -> TensorId {
        let xw = self.lin.forward(sess, store, x);
        let gcn = ops.gcn();
        sess.tape.spmm(gcn.clone(), gcn, xw)
    }
}

/// GraphSAGE (mean aggregator): `X·W_self + mean_N(X)·W_neigh + b`.
#[derive(Clone, Debug)]
pub struct SageLayer {
    pub(crate) w_self: Linear,
    pub(crate) w_neigh: Linear,
}

impl SageLayer {
    /// Glorot-initialized layer mapping `in_dim` to `out_dim`.
    pub fn new<R: Rng>(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Self {
            w_self: Linear::new(store, in_dim, out_dim, true, rng),
            w_neigh: Linear::new(store, in_dim, out_dim, false, rng),
        }
    }

    /// Applies the layer to `x` using the view's sparse operators.
    pub fn forward(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        x: TensorId,
        ops: &GraphOps,
    ) -> TensorId {
        let own = self.w_self.forward(sess, store, x);
        let agg = sess.tape.spmm(ops.mean_fwd(), ops.mean_bwd(), x);
        let neigh = self.w_neigh.forward(sess, store, agg);
        sess.tape.add(own, neigh)
    }
}

/// Multi-head GAT layer. Heads are concatenated for hidden layers and
/// averaged when `concat` is false (output layers).
#[derive(Clone, Debug)]
pub struct GatLayer {
    pub(crate) heads: Vec<GatHead>,
    pub(crate) concat: bool,
}

#[derive(Clone, Debug)]
pub(crate) struct GatHead {
    pub(crate) w: Linear,
    pub(crate) a_src: ParamId,
    pub(crate) a_dst: ParamId,
}

impl GatLayer {
    /// `out_dim` is the total output width; it must be divisible by `heads`
    /// when `concat` is true.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        in_dim: usize,
        out_dim: usize,
        heads: usize,
        concat: bool,
        rng: &mut R,
    ) -> Self {
        assert!(heads >= 1, "need at least one head");
        let head_dim = if concat {
            assert_eq!(out_dim % heads, 0, "out_dim must divide by heads");
            out_dim / heads
        } else {
            out_dim
        };
        let heads = (0..heads)
            .map(|_| GatHead {
                w: Linear::new(store, in_dim, head_dim, false, rng),
                a_src: store.create(init::glorot_uniform(1, head_dim, rng)),
                a_dst: store.create(init::glorot_uniform(1, head_dim, rng)),
            })
            .collect();
        Self { heads, concat }
    }

    /// Applies the layer to `x` using the view's sparse operators.
    pub fn forward(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        x: TensorId,
        ops: &GraphOps,
    ) -> TensorId {
        let outs: Vec<TensorId> = self
            .heads
            .iter()
            .map(|h| {
                let hw = h.w.forward(sess, store, x);
                let a_src = sess.param(store, h.a_src);
                let a_dst = sess.param(store, h.a_dst);
                sess.tape.gat(hw, a_src, a_dst, ops.loops(), 0.2)
            })
            .collect();
        if outs.len() == 1 {
            return outs[0];
        }
        if self.concat {
            sess.tape.concat_cols(&outs)
        } else {
            let mut acc = outs[0];
            for &o in &outs[1..] {
                acc = sess.tape.add(acc, o);
            }
            sess.tape.scale(acc, 1.0 / outs.len() as f32)
        }
    }
}

/// GIN layer: `MLP((1+ε)·x + Σ_{j∈N(i)} x_j)` with fixed ε.
#[derive(Clone, Debug)]
pub struct GinLayer {
    pub(crate) mlp: Mlp,
    pub(crate) eps: f32,
}

impl GinLayer {
    /// Glorot-initialized layer mapping `in_dim` to `out_dim`.
    pub fn new<R: Rng>(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Self { mlp: Mlp::new(store, &[in_dim, out_dim, out_dim], Act::Relu, rng), eps: 0.0 }
    }

    /// Applies the layer to `x` using the view's sparse operators.
    pub fn forward(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        x: TensorId,
        ops: &GraphOps,
    ) -> TensorId {
        // binary symmetric adjacency is its own transpose
        let adj = ops.adj();
        let agg = sess.tape.spmm(adj.clone(), adj, x);
        let own = sess.tape.scale(x, 1.0 + self.eps);
        let sum = sess.tape.add(own, agg);
        self.mlp.forward(sess, store, sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::Graph;
    use gcmae_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (GraphOps, Matrix) {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        (GraphOps::new(&g), Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.1))
    }

    #[test]
    fn gcn_layer_shapes_and_smoothing() {
        let (ops, x) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = GcnLayer::new(&mut store, 3, 5, &mut rng);
        let mut sess = Session::new();
        let xi = sess.tape.constant(x);
        let y = layer.forward(&mut sess, &store, xi, &ops);
        assert_eq!(sess.tape.value(y).shape(), (4, 5));
    }

    #[test]
    fn sage_layer_distinguishes_self_from_neighbors() {
        let (ops, _) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let layer = SageLayer::new(&mut store, 2, 2, &mut rng);
        // one-hot node 0 feature: outputs of node 0 and its neighbor differ
        let x = Matrix::from_fn(4, 2, |r, c| if r == 0 && c == 0 { 1.0 } else { 0.0 });
        let mut sess = Session::new();
        let xi = sess.tape.constant(x);
        let y = layer.forward(&mut sess, &store, xi, &ops);
        let v = sess.tape.value(y);
        assert!(v.row(0) != v.row(1));
        // node 2 is 2 hops away: no signal at all
        assert!(v.row(2).iter().all(|&t| t == 0.0));
    }

    #[test]
    fn gat_multi_head_concat_width() {
        let (ops, x) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let layer = GatLayer::new(&mut store, 3, 8, 4, true, &mut rng);
        let mut sess = Session::new();
        let xi = sess.tape.constant(x.clone());
        let y = layer.forward(&mut sess, &store, xi, &ops);
        assert_eq!(sess.tape.value(y).shape(), (4, 8));
        let avg = GatLayer::new(&mut store, 3, 8, 4, false, &mut rng);
        let xi2 = sess.tape.constant(x);
        let y2 = avg.forward(&mut sess, &store, xi2, &ops);
        assert_eq!(sess.tape.value(y2).shape(), (4, 8));
    }

    #[test]
    fn gin_layer_sums_neighbors() {
        let (ops, x) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let layer = GinLayer::new(&mut store, 3, 4, &mut rng);
        let mut sess = Session::new();
        let xi = sess.tape.constant(x);
        let y = layer.forward(&mut sess, &store, xi, &ops);
        assert_eq!(sess.tape.value(y).shape(), (4, 4));
        assert!(sess.tape.value(y).all_finite());
    }

    #[test]
    fn layers_are_trainable_end_to_end() {
        // one GCN layer should be able to overfit a 2-class node labeling
        let (ops, x) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let layer = GcnLayer::new(&mut store, 3, 2, &mut rng);
        let mut adam = crate::optim::Adam::new(0.05, 0.0);
        let mut first = None;
        let mut last = f32::MAX;
        for _ in 0..200 {
            let mut sess = Session::new();
            let xi = sess.tape.constant(x.clone());
            let y = layer.forward(&mut sess, &store, xi, &ops);
            let loss = sess.tape.softmax_ce(y, vec![0, 1, 2, 3], vec![0, 0, 1, 1]);
            last = sess.tape.value(loss).scalar_value();
            first.get_or_insert(last);
            let mut g = sess.tape.backward(loss);
            adam.step(&mut store, &sess, &mut g);
        }
        // A single GCN layer smooths across the 0|1 class boundary of the
        // cycle, so perfect separation is impossible; require substantial
        // optimization progress instead.
        let first = first.unwrap();
        assert!(last < first * 0.6, "GCN did not train: {first} -> {last}");
        assert!(last < 0.5, "GCN loss too high: {last}");
    }
}
