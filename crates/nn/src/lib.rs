// Indexed loops over parallel arrays are idiomatic in this numeric code.
#![allow(clippy::needless_range_loop)]

//! # gcmae-nn
//!
//! GNN building blocks on top of the [`gcmae_tensor`] tape: parameter
//! storage/binding, GCN/GraphSAGE/GAT/GIN layers, MLPs, dropout, and
//! Adam/SGD optimizers.
//!
//! ## Example
//!
//! ```
//! use gcmae_graph::Graph;
//! use gcmae_nn::{Encoder, EncoderConfig, GraphOps, ParamStore, Session};
//! use gcmae_tensor::Matrix;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let enc = Encoder::new(&mut store, &EncoderConfig::gcn(3, 8, 4), &mut rng);
//! let ops = GraphOps::new(&g);
//! let mut sess = Session::new();
//! let x = sess.tape.constant(Matrix::zeros(4, 3));
//! let h = enc.forward(&mut sess, &store, x, &ops, false, &mut rng);
//! assert_eq!(sess.tape.value(h).shape(), (4, 4));
//! ```

pub mod encoder;
pub mod gnn;
pub mod graph_ops;
pub mod infer;
pub mod layers;
pub mod optim;
pub mod param;
pub mod schedule;
pub mod serialize;

pub use encoder::{Encoder, EncoderConfig, EncoderKind};
pub use graph_ops::GraphOps;
pub use layers::{dropout, Act, Linear, Mlp};
pub use optim::{clip_global_norm, global_grad_norm, Adam, Sgd};
pub use param::{ParamId, ParamStore, Session};
pub use schedule::Schedule;
pub use serialize::{
    load_inference, load_params, load_train_state, save_inference, save_params, save_train_state,
    CheckpointError, TrainMeta,
};

// Checkpoints cross the crate boundary as `Bytes`; re-exported so callers
// (gcmae-core's checked trainer) don't need their own `bytes` dependency.
pub use bytes::Bytes;
