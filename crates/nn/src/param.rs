//! Parameter storage and per-step tape binding.
//!
//! Parameters outlive the per-step [`Tape`]: a [`ParamStore`] owns the values
//! (plus Adam moments), and a [`Session`] binds them as tape leaves for one
//! forward/backward pass. Binding the same parameter twice in a session
//! (e.g. the shared encoder running on two views) returns the same leaf so
//! the gradients accumulate.

use gcmae_tensor::{Matrix, Tape, TensorId};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamId {
    /// Reconstructs a handle from a creation-order index (checkpointing).
    pub fn from_index(i: usize) -> Self {
        Self(i)
    }

    /// Creation-order index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One trainable parameter with its Adam moment estimates.
#[derive(Clone, Debug)]
pub struct Param {
    /// value.
    pub value: Matrix,
    pub(crate) m: Matrix,
    pub(crate) v: Matrix,
}

/// Owns all parameters of a model.
#[derive(Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter initialized to `value`.
    pub fn create(&mut self, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(Param { value, m: Matrix::zeros(r, c), v: Matrix::zeros(r, c) });
        ParamId(self.params.len() - 1)
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable access (used by optimizers and tests).
    pub fn param_mut(&mut self, id: ParamId) -> &mut Param {
        &mut self.params[id.0]
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Adam moment estimates `(m, v)` of a parameter. Read-only: the
    /// optimizer owns the updates; this exists so training checkpoints can
    /// capture (and tests can verify) the full optimizer state.
    pub fn moments(&self, id: ParamId) -> (&Matrix, &Matrix) {
        let p = &self.params[id.0];
        (&p.m, &p.v)
    }
}

/// A single training step's tape plus the parameter bindings made on it.
pub struct Session {
    /// tape.
    pub tape: Tape,
    binds: Vec<(ParamId, TensorId)>,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// Fresh session with an empty tape.
    pub fn new() -> Self {
        Self { tape: Tape::new(), binds: vec![] }
    }

    /// Binds a parameter as a trainable tape leaf (idempotent per session).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> TensorId {
        if let Some(&(_, tid)) = self.binds.iter().find(|&&(pid, _)| pid == id) {
            return tid;
        }
        let tid = self.tape.leaf(store.value(id).clone());
        self.binds.push((id, tid));
        tid
    }

    /// All `(parameter, leaf)` bindings made this session.
    pub fn binds(&self) -> &[(ParamId, TensorId)] {
        &self.binds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_read() {
        let mut store = ParamStore::new();
        let id = store.create(Matrix::full(2, 3, 1.5));
        assert_eq!(store.value(id).shape(), (2, 3));
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 6);
    }

    #[test]
    fn binding_is_idempotent() {
        let mut store = ParamStore::new();
        let id = store.create(Matrix::scalar(2.0));
        let mut sess = Session::new();
        let a = sess.param(&store, id);
        let b = sess.param(&store, id);
        assert_eq!(a, b);
        assert_eq!(sess.binds().len(), 1);
    }

    #[test]
    fn rebinding_shares_gradient_accumulation() {
        // loss = p + p → dp = 2
        let mut store = ParamStore::new();
        let id = store.create(Matrix::scalar(3.0));
        let mut sess = Session::new();
        let p1 = sess.param(&store, id);
        let p2 = sess.param(&store, id);
        let s = sess.tape.add(p1, p2);
        let loss = sess.tape.sum_all(s);
        let grads = sess.tape.backward(loss);
        assert_eq!(grads.get(p1).unwrap().scalar_value(), 2.0);
    }
}
