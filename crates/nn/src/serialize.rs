//! Checkpointing: serialize parameter values to a compact binary format.
//!
//! Models in this workspace are reconstructed deterministically from
//! `(config, seed)`, so a checkpoint only needs the parameter *values* in
//! creation order. Adam moments are deliberately not stored — checkpoints
//! are for inference/embedding reuse, not for resuming optimization.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gcmae_tensor::Matrix;

use crate::param::ParamStore;

const MAGIC: u32 = 0x47434d41; // "GCMA"
const VERSION: u32 = 1;

/// Serialization errors.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Bad Magic.
    BadMagic,
    /// Bad Version.
    BadVersion(u32),
    /// Truncated.
    Truncated,
    /// Shape Mismatch.
    ShapeMismatch {
        /// Creation-order index of the offending parameter.
        index: usize,
    },
    /// Count Mismatch.
    CountMismatch {
        /// Parameters in the model.
        expected: usize,
        /// Parameters in the checkpoint.
        found: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a GCMAE checkpoint (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            Self::Truncated => write!(f, "checkpoint is truncated"),
            Self::ShapeMismatch { index } => {
                write!(f, "parameter {index} has a different shape than the model")
            }
            Self::CountMismatch { expected, found } => {
                write!(f, "model has {expected} parameters, checkpoint has {found}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes all parameter values of a store.
pub fn save_params(store: &ParamStore) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(store.len() as u64);
    for i in 0..store.len() {
        let m = store.value(crate::param::ParamId::from_index(i));
        buf.put_u32_le(m.rows() as u32);
        buf.put_u32_le(m.cols() as u32);
        for &v in m.as_slice() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Restores parameter values into a store built with the same architecture
/// (same creation order and shapes).
pub fn load_params(store: &mut ParamStore, mut data: Bytes) -> Result<(), CheckpointError> {
    if data.remaining() < 16 {
        return Err(CheckpointError::Truncated);
    }
    if data.get_u32_le() != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = data.get_u64_le() as usize;
    if count != store.len() {
        return Err(CheckpointError::CountMismatch { expected: store.len(), found: count });
    }
    for i in 0..count {
        if data.remaining() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let rows = data.get_u32_le() as usize;
        let cols = data.get_u32_le() as usize;
        let id = crate::param::ParamId::from_index(i);
        if store.value(id).shape() != (rows, cols) {
            return Err(CheckpointError::ShapeMismatch { index: i });
        }
        if data.remaining() < rows * cols * 4 {
            return Err(CheckpointError::Truncated);
        }
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = data.get_f32_le();
        }
        store.param_mut(id).value = m;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.create(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        s.create(Matrix::from_vec(1, 3, vec![-1.0, 0.5, 9.0]));
        s
    }

    #[test]
    fn roundtrip_preserves_values() {
        let store = sample_store();
        let bytes = save_params(&store);
        let mut fresh = sample_store();
        fresh.param_mut(crate::param::ParamId::from_index(0)).value.scale_inplace(0.0);
        load_params(&mut fresh, bytes).unwrap();
        for i in 0..store.len() {
            let id = crate::param::ParamId::from_index(i);
            assert_eq!(store.value(id).max_abs_diff(fresh.value(id)), 0.0);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut store = sample_store();
        let err = load_params(&mut store, Bytes::from_static(&[0u8; 32])).unwrap_err();
        assert_eq!(err, CheckpointError::BadMagic);
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let store = sample_store();
        let bytes = save_params(&store);
        let mut small = ParamStore::new();
        small.create(Matrix::zeros(2, 2));
        let err = load_params(&mut small, bytes).unwrap_err();
        assert_eq!(err, CheckpointError::CountMismatch { expected: 1, found: 2 });
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let store = sample_store();
        let bytes = save_params(&store);
        let mut other = ParamStore::new();
        other.create(Matrix::zeros(2, 2));
        other.create(Matrix::zeros(3, 1)); // transposed shape
        let err = load_params(&mut other, bytes).unwrap_err();
        assert_eq!(err, CheckpointError::ShapeMismatch { index: 1 });
    }

    #[test]
    fn truncated_data_is_rejected() {
        let store = sample_store();
        let bytes = save_params(&store);
        let cut = bytes.slice(0..bytes.len() - 4);
        let mut fresh = sample_store();
        assert_eq!(load_params(&mut fresh, cut).unwrap_err(), CheckpointError::Truncated);
    }
}
