//! Checkpointing: serialize parameter values to a compact binary format.
//!
//! Two formats share the magic number:
//!
//! * **v1** (inference): parameter values in creation order, nothing else.
//!   Models are reconstructed deterministically from `(config, seed)`, so
//!   this is all that embedding reuse needs.
//! * **v2** (training): a [`TrainMeta`] header (epoch, Adam step count,
//!   learning rate, RNG seed, recovery retries) followed by each parameter's
//!   value *and* its Adam first/second moments. Restoring v2 state resumes
//!   optimization bit-identically to an uninterrupted run.
//!
//! [`load_params`] reads both (skipping v2's extra state);
//! [`load_train_state`] requires v2.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gcmae_tensor::Matrix;

use crate::param::ParamStore;

const MAGIC: u32 = 0x47434d41; // "GCMA"
const VERSION: u32 = 1;
const VERSION_TRAIN: u32 = 2;
/// Bytes of [`TrainMeta`] in a v2 stream: epoch + adam_step + rng_seed as
/// u64, lr as f32, retries_used as u32.
const META_BYTES: usize = 8 + 8 + 8 + 4 + 4;

/// Serialization errors.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Bad Magic.
    BadMagic,
    /// Bad Version.
    BadVersion(u32),
    /// Truncated.
    Truncated,
    /// Shape Mismatch.
    ShapeMismatch {
        /// Creation-order index of the offending parameter.
        index: usize,
    },
    /// Count Mismatch.
    CountMismatch {
        /// Parameters in the model.
        expected: usize,
        /// Parameters in the checkpoint.
        found: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a GCMAE checkpoint (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            Self::Truncated => write!(f, "checkpoint is truncated"),
            Self::ShapeMismatch { index } => {
                write!(f, "parameter {index} has a different shape than the model")
            }
            Self::CountMismatch { expected, found } => {
                write!(f, "model has {expected} parameters, checkpoint has {found}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Training-loop state stored in a v2 checkpoint alongside the parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainMeta {
    /// Epochs completed; resume starts at this epoch index.
    pub epoch: u64,
    /// Adam step count (bias correction must continue where it left off).
    pub adam_step: u64,
    /// Learning rate in effect (divergence recovery may have backed it off).
    pub lr: f32,
    /// Base RNG seed; the trainer derives one stream per `(seed, epoch)`,
    /// so seed + epoch fully determine the RNG state at a resume point.
    pub rng_seed: u64,
    /// Divergence-recovery retries consumed so far.
    pub retries_used: u32,
}

fn read_matrix(data: &mut Bytes, rows: usize, cols: usize) -> Result<Matrix, CheckpointError> {
    if data.remaining() < rows.saturating_mul(cols).saturating_mul(4) {
        return Err(CheckpointError::Truncated);
    }
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = data.get_f32_le();
    }
    Ok(m)
}

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    for &v in m.as_slice() {
        buf.put_f32_le(v);
    }
}

/// Serializes all parameter values of a store.
pub fn save_params(store: &ParamStore) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(store.len() as u64);
    for i in 0..store.len() {
        let m = store.value(crate::param::ParamId::from_index(i));
        buf.put_u32_le(m.rows() as u32);
        buf.put_u32_le(m.cols() as u32);
        put_matrix(&mut buf, m);
    }
    buf.freeze()
}

/// Serializes the full training state: [`TrainMeta`] plus every parameter's
/// value and Adam moments (checkpoint format v2).
pub fn save_train_state(store: &ParamStore, meta: &TrainMeta) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION_TRAIN);
    buf.put_u64_le(meta.epoch);
    buf.put_u64_le(meta.adam_step);
    buf.put_u64_le(meta.rng_seed);
    buf.put_f32_le(meta.lr);
    buf.put_u32_le(meta.retries_used);
    buf.put_u64_le(store.len() as u64);
    for i in 0..store.len() {
        let id = crate::param::ParamId::from_index(i);
        let m = store.value(id);
        buf.put_u32_le(m.rows() as u32);
        buf.put_u32_le(m.cols() as u32);
        put_matrix(&mut buf, m);
        let (fst, snd) = store.moments(id);
        put_matrix(&mut buf, fst);
        put_matrix(&mut buf, snd);
    }
    buf.freeze()
}

/// Checks magic + version and returns the version. `accept` lists readable
/// versions for the caller.
fn read_header(data: &mut Bytes, accept: &[u32]) -> Result<u32, CheckpointError> {
    if data.remaining() < 8 {
        return Err(CheckpointError::Truncated);
    }
    if data.get_u32_le() != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = data.get_u32_le();
    if !accept.contains(&version) {
        return Err(CheckpointError::BadVersion(version));
    }
    Ok(version)
}

fn read_count(data: &mut Bytes, store: &ParamStore) -> Result<usize, CheckpointError> {
    if data.remaining() < 8 {
        return Err(CheckpointError::Truncated);
    }
    let count = data.get_u64_le() as usize;
    if count != store.len() {
        return Err(CheckpointError::CountMismatch { expected: store.len(), found: count });
    }
    Ok(count)
}

fn read_shape(
    data: &mut Bytes,
    store: &ParamStore,
    index: usize,
) -> Result<(usize, usize), CheckpointError> {
    if data.remaining() < 8 {
        return Err(CheckpointError::Truncated);
    }
    let rows = data.get_u32_le() as usize;
    let cols = data.get_u32_le() as usize;
    if store.value(crate::param::ParamId::from_index(index)).shape() != (rows, cols) {
        return Err(CheckpointError::ShapeMismatch { index });
    }
    Ok((rows, cols))
}

/// Restores parameter values into a store built with the same architecture
/// (same creation order and shapes). Reads v1 checkpoints and the parameter
/// values of v2 training checkpoints (the optimizer state is skipped — use
/// [`load_train_state`] to resume training).
pub fn load_params(store: &mut ParamStore, mut data: Bytes) -> Result<(), CheckpointError> {
    let version = read_header(&mut data, &[VERSION, VERSION_TRAIN])?;
    if version == VERSION_TRAIN {
        if data.remaining() < META_BYTES {
            return Err(CheckpointError::Truncated);
        }
        data.advance(META_BYTES);
    }
    let count = read_count(&mut data, store)?;
    for i in 0..count {
        let (rows, cols) = read_shape(&mut data, store, i)?;
        let m = read_matrix(&mut data, rows, cols)?;
        store.param_mut(crate::param::ParamId::from_index(i)).value = m;
        if version == VERSION_TRAIN {
            let moments = rows.saturating_mul(cols).saturating_mul(8);
            if data.remaining() < moments {
                return Err(CheckpointError::Truncated);
            }
            data.advance(moments);
        }
    }
    Ok(())
}

/// Transcodes a checkpoint into the smallest artifact that can serve
/// inference: a v1 stream holding only parameter values. v2 training
/// checkpoints are stripped of [`TrainMeta`] and both Adam moment matrices
/// per parameter (roughly a 3× size reduction); v1 input is returned as-is.
///
/// The transcode is a pure byte-stream pass — no [`ParamStore`] is needed —
/// so a serving host can shrink artifacts it cannot even instantiate.
pub fn save_inference(data: &Bytes) -> Result<Bytes, CheckpointError> {
    let mut src = data.clone();
    let version = read_header(&mut src, &[VERSION, VERSION_TRAIN])?;
    if version == VERSION {
        return Ok(data.clone());
    }
    if src.remaining() < META_BYTES + 8 {
        return Err(CheckpointError::Truncated);
    }
    src.advance(META_BYTES);
    let count = src.get_u64_le();
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(count);
    for _ in 0..count {
        if src.remaining() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let rows = src.get_u32_le() as usize;
        let cols = src.get_u32_le() as usize;
        let value_bytes = rows.saturating_mul(cols).saturating_mul(4);
        if src.remaining() < value_bytes.saturating_mul(3) {
            return Err(CheckpointError::Truncated);
        }
        buf.put_u32_le(rows as u32);
        buf.put_u32_le(cols as u32);
        // f32 LE round-trip is a pure byte copy, so values stay bit-exact.
        for _ in 0..rows * cols {
            buf.put_f32_le(src.get_f32_le());
        }
        src.advance(value_bytes * 2); // skip the Adam m and v matrices
    }
    Ok(buf.freeze())
}

/// Serving-side loader: restores parameter values from a v1 or v2 checkpoint
/// into a store with matching architecture. Alias of [`load_params`], named
/// to pair with [`save_inference`] at serving call sites.
pub fn load_inference(store: &mut ParamStore, data: Bytes) -> Result<(), CheckpointError> {
    load_params(store, data)
}

/// Restores the full training state saved by [`save_train_state`] and
/// returns its [`TrainMeta`]. Rejects v1 checkpoints: they carry no
/// optimizer state, so resuming from one would silently change the
/// trajectory.
pub fn load_train_state(
    store: &mut ParamStore,
    mut data: Bytes,
) -> Result<TrainMeta, CheckpointError> {
    read_header(&mut data, &[VERSION_TRAIN])?;
    if data.remaining() < META_BYTES {
        return Err(CheckpointError::Truncated);
    }
    let meta = TrainMeta {
        epoch: data.get_u64_le(),
        adam_step: data.get_u64_le(),
        rng_seed: data.get_u64_le(),
        lr: data.get_f32_le(),
        retries_used: data.get_u32_le(),
    };
    let count = read_count(&mut data, store)?;
    for i in 0..count {
        let (rows, cols) = read_shape(&mut data, store, i)?;
        let value = read_matrix(&mut data, rows, cols)?;
        let fst = read_matrix(&mut data, rows, cols)?;
        let snd = read_matrix(&mut data, rows, cols)?;
        let p = store.param_mut(crate::param::ParamId::from_index(i));
        p.value = value;
        p.m = fst;
        p.v = snd;
    }
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.create(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        s.create(Matrix::from_vec(1, 3, vec![-1.0, 0.5, 9.0]));
        s
    }

    #[test]
    fn roundtrip_preserves_values() {
        let store = sample_store();
        let bytes = save_params(&store);
        let mut fresh = sample_store();
        fresh.param_mut(crate::param::ParamId::from_index(0)).value.scale_inplace(0.0);
        load_params(&mut fresh, bytes).unwrap();
        for i in 0..store.len() {
            let id = crate::param::ParamId::from_index(i);
            assert_eq!(store.value(id).max_abs_diff(fresh.value(id)), 0.0);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut store = sample_store();
        let err = load_params(&mut store, Bytes::from_static(&[0u8; 32])).unwrap_err();
        assert_eq!(err, CheckpointError::BadMagic);
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let store = sample_store();
        let bytes = save_params(&store);
        let mut small = ParamStore::new();
        small.create(Matrix::zeros(2, 2));
        let err = load_params(&mut small, bytes).unwrap_err();
        assert_eq!(err, CheckpointError::CountMismatch { expected: 1, found: 2 });
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let store = sample_store();
        let bytes = save_params(&store);
        let mut other = ParamStore::new();
        other.create(Matrix::zeros(2, 2));
        other.create(Matrix::zeros(3, 1)); // transposed shape
        let err = load_params(&mut other, bytes).unwrap_err();
        assert_eq!(err, CheckpointError::ShapeMismatch { index: 1 });
    }

    #[test]
    fn truncated_data_is_rejected() {
        let store = sample_store();
        let bytes = save_params(&store);
        let cut = bytes.slice(0..bytes.len() - 4);
        let mut fresh = sample_store();
        assert_eq!(load_params(&mut fresh, cut).unwrap_err(), CheckpointError::Truncated);
    }

    /// A store with distinct, non-zero values AND moments for every slot,
    /// as if mid-optimization.
    fn trained_store() -> ParamStore {
        let mut s = sample_store();
        for i in 0..s.len() {
            let p = s.param_mut(crate::param::ParamId::from_index(i));
            for (j, m) in p.m.as_mut_slice().iter_mut().enumerate() {
                *m = 0.25 + i as f32 + j as f32;
            }
            for (j, v) in p.v.as_mut_slice().iter_mut().enumerate() {
                *v = 0.5 + (i * 10 + j) as f32;
            }
        }
        s
    }

    fn meta() -> TrainMeta {
        TrainMeta { epoch: 17, adam_step: 1700, lr: 1.25e-4, rng_seed: 42, retries_used: 2 }
    }

    #[test]
    fn train_state_roundtrips_values_moments_and_meta() {
        let store = trained_store();
        let bytes = save_train_state(&store, &meta());
        let mut fresh = sample_store();
        let restored = load_train_state(&mut fresh, bytes).unwrap();
        assert_eq!(restored, meta());
        for i in 0..store.len() {
            let id = crate::param::ParamId::from_index(i);
            assert_eq!(store.value(id).max_abs_diff(fresh.value(id)), 0.0);
            let (m0, v0) = store.moments(id);
            let (m1, v1) = fresh.moments(id);
            assert_eq!(m0.max_abs_diff(m1), 0.0);
            assert_eq!(v0.max_abs_diff(v1), 0.0);
        }
    }

    #[test]
    fn load_params_reads_v2_values_and_skips_optimizer_state() {
        let store = trained_store();
        let bytes = save_train_state(&store, &meta());
        let mut fresh = sample_store();
        load_params(&mut fresh, bytes).unwrap();
        for i in 0..store.len() {
            let id = crate::param::ParamId::from_index(i);
            assert_eq!(store.value(id).max_abs_diff(fresh.value(id)), 0.0);
            // inference load must not touch the moments
            let (m1, v1) = fresh.moments(id);
            assert!(m1.as_slice().iter().chain(v1.as_slice()).all(|&x| x == 0.0));
        }
    }

    #[test]
    fn save_inference_strips_v2_to_v1_roundtrip() {
        let store = trained_store();
        let v2 = save_train_state(&store, &meta());
        let stripped = save_inference(&v2).unwrap();
        // Strictly smaller than v2 and identical to a direct v1 save.
        assert!(stripped.len() < v2.len(), "{} !< {}", stripped.len(), v2.len());
        let direct = save_params(&store);
        assert_eq!(stripped.len(), direct.len());
        // Round trip restores values bit-exactly without touching moments.
        let mut fresh = sample_store();
        load_inference(&mut fresh, stripped).unwrap();
        for i in 0..store.len() {
            let id = crate::param::ParamId::from_index(i);
            assert_eq!(store.value(id).max_abs_diff(fresh.value(id)), 0.0);
            let (m1, v1) = fresh.moments(id);
            assert!(m1.as_slice().iter().chain(v1.as_slice()).all(|&x| x == 0.0));
        }
    }

    #[test]
    fn save_inference_passes_v1_through() {
        let store = sample_store();
        let v1 = save_params(&store);
        let out = save_inference(&v1).unwrap();
        assert_eq!(out.len(), v1.len());
        let mut fresh = sample_store();
        load_inference(&mut fresh, out).unwrap();
        let id = crate::param::ParamId::from_index(0);
        assert_eq!(store.value(id), fresh.value(id));
    }

    #[test]
    fn save_inference_rejects_truncated_and_garbage() {
        let store = trained_store();
        let v2 = save_train_state(&store, &meta());
        for cut_at in [4usize, 20, v2.len() - 3] {
            let cut = v2.slice(0..cut_at);
            assert_eq!(save_inference(&cut).unwrap_err(), CheckpointError::Truncated, "{cut_at}");
        }
        assert_eq!(
            save_inference(&Bytes::from_static(&[1u8; 32])).unwrap_err(),
            CheckpointError::BadMagic
        );
    }

    #[test]
    fn train_state_rejects_v1_checkpoints() {
        let store = sample_store();
        let v1 = save_params(&store);
        let mut fresh = sample_store();
        let err = load_train_state(&mut fresh, v1).unwrap_err();
        assert_eq!(err, CheckpointError::BadVersion(1));
    }

    #[test]
    fn truncated_train_state_is_rejected_everywhere() {
        let store = trained_store();
        let bytes = save_train_state(&store, &meta());
        // cut inside the meta header, inside a value, and inside the moments
        for cut_at in [9, bytes.len() - 5, bytes.len() - 4 * 4] {
            let cut = bytes.slice(0..cut_at);
            let mut fresh = sample_store();
            assert_eq!(
                load_train_state(&mut fresh, cut).unwrap_err(),
                CheckpointError::Truncated,
                "cut at {cut_at}"
            );
        }
    }
}
