//! Tape-free eval-mode inference: a full-graph `encode` and the
//! neighborhood-restricted `encode_rows` that powers the serving subsystem.
//!
//! Both entry points reuse the exact kernels the tape ops call
//! ([`gcmae_tensor::dense::matmul`], the CSR spmm row kernel, the fused GAT
//! row kernel) and replicate every elementwise step with the tape's
//! arithmetic, so their outputs are bit-identical to an eval-mode
//! [`Encoder::forward`]. Eval-mode dropout is the identity and draws no
//! randomness, which makes the whole forward RNG-free — the property the
//! serving cache relies on: a row computed today equals the same row computed
//! tomorrow, bit for bit.
//!
//! `encode_rows` exploits that every GNN layer here reads at most the closed
//! 1-hop neighborhood of each output row (all operator supports — GCN
//! normalization, mean normalization, self-loop adjacency, raw adjacency —
//! are subsets of `A + I`). Working backwards from the requested target rows,
//! each layer's needed input rows are the closed 1-hop expansion of the
//! needed output rows; only those rows are computed per layer, scattered into
//! full-height scratch matrices so the sparse operators keep indexing nodes
//! by their original ids.

use gcmae_tensor::{dense, ops::gat, CsrMatrix, Matrix};

use crate::encoder::{Encoder, Layer};
use crate::graph_ops::GraphOps;
use crate::layers::{Act, Linear, Mlp};
use crate::param::ParamStore;

impl Encoder {
    /// Eval-mode forward without a tape. Bit-identical to
    /// `forward(..., training = false, ..)` and RNG-free.
    pub fn encode(&self, store: &ParamStore, x: &Matrix, ops: &GraphOps) -> Matrix {
        let all: Vec<usize> = (0..ops.num_nodes).collect();
        self.encode_rows(store, x, ops, &all)
    }

    /// Eval-mode forward restricted to `targets`: returns a
    /// `targets.len() × out_dim` matrix whose row `i` is bit-identical to row
    /// `targets[i]` of [`Encoder::encode`]. Duplicate targets are allowed
    /// (each occurrence gets a copy of the same row).
    ///
    /// Per-query cost scales with the size of the targets' `L`-hop
    /// neighborhood (`L` = number of layers), not with the graph.
    ///
    /// # Panics
    /// Panics if a target id is out of range or `x` has the wrong height.
    pub fn encode_rows(
        &self,
        store: &ParamStore,
        x: &Matrix,
        ops: &GraphOps,
        targets: &[usize],
    ) -> Matrix {
        let n = ops.num_nodes;
        assert_eq!(x.rows(), n, "feature rows must match the graph");
        assert!(targets.iter().all(|&t| t < n), "target id out of range");
        if targets.is_empty() {
            return Matrix::zeros(0, self.out_dim());
        }
        let num_layers = self.layers.len();
        // needed[l] = rows of layer l's input that must hold valid data,
        // built backwards from the targets by closed 1-hop expansion.
        let mut needed: Vec<Vec<usize>> = Vec::with_capacity(num_layers + 1);
        let mut top = targets.to_vec();
        top.sort_unstable();
        top.dedup();
        needed.push(top);
        let adj = ops.adj();
        for _ in 0..num_layers {
            let prev = needed.last().expect("non-empty");
            needed.push(closed_one_hop(&adj, prev));
        }
        needed.reverse();

        let mut h = x.clone();
        let last = num_layers - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut out = layer.encode_rows(store, &h, ops, &needed[i], &needed[i + 1]);
            if i != last {
                apply_act_rows(self.act, &mut out, &needed[i + 1]);
            }
            h = out;
        }
        h.gather_rows(targets)
    }
}

/// Seeds plus all their neighbors, sorted ascending.
fn closed_one_hop(adj: &CsrMatrix, seeds: &[usize]) -> Vec<usize> {
    let n = adj.rows();
    let mut mark = vec![false; n];
    for &s in seeds {
        mark[s] = true;
        for &v in adj.row(s).0 {
            mark[v as usize] = true;
        }
    }
    (0..n).filter(|&v| mark[v]).collect()
}

/// `x·W (+ b)` over the listed rows, scattered into an `n`-row matrix.
/// The dense matmul kernel is per-output-row, so the compact product rows
/// are bit-identical to the corresponding rows of a full-height product.
fn linear_rows(store: &ParamStore, lin: &Linear, h: &Matrix, rows: &[usize], n: usize) -> Matrix {
    let compact = h.gather_rows(rows);
    let mut y = dense::matmul(&compact, store.value(lin.w));
    if let Some(b) = lin.b {
        add_bias_all(&mut y, store.value(b));
    }
    let mut full = Matrix::zeros(n, y.cols());
    full.scatter_rows(rows, &y);
    full
}

/// MLP forward over the listed rows (activation between layers, none after
/// the last — mirroring `Mlp::forward`), scattered into an `n`-row matrix.
fn mlp_rows(store: &ParamStore, mlp: &Mlp, h: &Matrix, rows: &[usize], n: usize) -> Matrix {
    let mut compact = h.gather_rows(rows);
    let last = mlp.layers.len() - 1;
    for (i, lin) in mlp.layers.iter().enumerate() {
        let mut y = dense::matmul(&compact, store.value(lin.w));
        if let Some(b) = lin.b {
            add_bias_all(&mut y, store.value(b));
        }
        if i != last {
            if let Some(f) = act_fn(mlp.act) {
                y.map_inplace(f);
            }
        }
        compact = y;
    }
    let mut full = Matrix::zeros(n, compact.cols());
    full.scatter_rows(rows, &compact);
    full
}

/// `y += 1·b` broadcast over rows — the tape's `add_bias` arithmetic.
fn add_bias_all(y: &mut Matrix, b: &Matrix) {
    let br = b.row(0);
    for r in 0..y.rows() {
        for (o, &bb) in y.row_mut(r).iter_mut().zip(br) {
            *o += bb;
        }
    }
}

/// The elementwise function each [`Act`] applies on the tape, with the same
/// constants (`Elu` α = 1, `Leaky` slope = 0.2).
fn act_fn(act: Act) -> Option<fn(f32) -> f32> {
    match act {
        Act::None => None,
        Act::Relu => Some(|x| x.max(0.0)),
        Act::Elu => Some(|x| if x > 0.0 { x } else { x.exp() - 1.0 }),
        Act::Tanh => Some(f32::tanh),
        Act::Leaky => Some(|x| if x > 0.0 { x } else { 0.2 * x }),
    }
}

/// Applies the activation to the listed rows only (other rows hold scratch).
fn apply_act_rows(act: Act, m: &mut Matrix, rows: &[usize]) {
    let Some(f) = act_fn(act) else { return };
    for &r in rows {
        for v in m.row_mut(r) {
            *v = f(*v);
        }
    }
}

impl Layer {
    /// Eval forward producing valid data in `rows_out` of a full-height
    /// output; reads only `rows_in` (⊇ closed 1-hop of `rows_out`) of `h`.
    fn encode_rows(
        &self,
        store: &ParamStore,
        h: &Matrix,
        ops: &GraphOps,
        rows_in: &[usize],
        rows_out: &[usize],
    ) -> Matrix {
        let n = ops.num_nodes;
        match self {
            Layer::Gcn(l) => {
                let xw = linear_rows(store, &l.lin, h, rows_in, n);
                let mut out = Matrix::zeros(n, l.lin.out_dim);
                ops.gcn().matmul_dense_rows(&xw, rows_out, &mut out);
                out
            }
            Layer::Sage(l) => {
                // own + neigh, accumulated in the tape's `add` order.
                let mut out = linear_rows(store, &l.w_self, h, rows_out, n);
                let mut agg = Matrix::zeros(n, h.cols());
                ops.mean_fwd().matmul_dense_rows(h, rows_out, &mut agg);
                let neigh = linear_rows(store, &l.w_neigh, &agg, rows_out, n);
                for &r in rows_out {
                    for (o, &v) in out.row_mut(r).iter_mut().zip(neigh.row(r)) {
                        *o += v;
                    }
                }
                out
            }
            Layer::Gat(l) => {
                let loops = ops.loops();
                let head_outs: Vec<Matrix> = l
                    .heads
                    .iter()
                    .map(|head| {
                        let hw = linear_rows(store, &head.w, h, rows_in, n);
                        let mut out = Matrix::zeros(n, head.w.out_dim);
                        gat::forward_rows(
                            &hw,
                            store.value(head.a_src),
                            store.value(head.a_dst),
                            &loops,
                            0.2,
                            rows_out,
                            &mut out,
                        );
                        out
                    })
                    .collect();
                combine_heads(head_outs, l.concat, rows_out, n)
            }
            Layer::Gin(l) => {
                let mut agg = Matrix::zeros(n, h.cols());
                ops.adj().matmul_dense_rows(h, rows_out, &mut agg);
                // (1+ε)·x + agg, in the tape's scale-then-add order.
                let c = 1.0 + l.eps;
                let mut sum = Matrix::zeros(n, h.cols());
                for &r in rows_out {
                    let (sr, hr, ar) = (sum.row_mut(r), h.row(r), agg.row(r));
                    for ((s, &hv), &av) in sr.iter_mut().zip(hr).zip(ar) {
                        *s = hv * c + av;
                    }
                }
                mlp_rows(store, &l.mlp, &sum, rows_out, n)
            }
        }
    }
}

/// Multi-head combination mirroring `GatLayer::forward`: single head passes
/// through, `concat` copies columns side by side, otherwise heads are summed
/// in order and scaled by `1/heads`.
fn combine_heads(head_outs: Vec<Matrix>, concat: bool, rows_out: &[usize], n: usize) -> Matrix {
    if head_outs.len() == 1 {
        return head_outs.into_iter().next().expect("one head");
    }
    if concat {
        let total: usize = head_outs.iter().map(Matrix::cols).sum();
        let mut out = Matrix::zeros(n, total);
        for &r in rows_out {
            let mut off = 0;
            for hm in &head_outs {
                let w = hm.cols();
                out.row_mut(r)[off..off + w].copy_from_slice(hm.row(r));
                off += w;
            }
        }
        out
    } else {
        let k = head_outs.len();
        let mut it = head_outs.into_iter();
        let mut acc = it.next().expect("at least one head");
        for hm in it {
            for &r in rows_out {
                for (o, &v) in acc.row_mut(r).iter_mut().zip(hm.row(r)) {
                    *o += v;
                }
            }
        }
        let c = 1.0 / k as f32;
        for &r in rows_out {
            for v in acc.row_mut(r) {
                *v *= c;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncoderConfig, EncoderKind};
    use crate::param::Session;
    use gcmae_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture(kind: EncoderKind, layers: usize) -> (Encoder, ParamStore, GraphOps, Matrix) {
        let g = Graph::from_edges(
            9,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 0), (1, 4)],
        );
        let ops = GraphOps::new(&g);
        let mut rng = StdRng::seed_from_u64(17);
        let mut store = ParamStore::new();
        let cfg = EncoderConfig {
            kind,
            in_dim: 4,
            hidden_dim: 6,
            out_dim: 5,
            layers,
            act: Act::Elu,
            dropout: 0.3,
        };
        let enc = Encoder::new(&mut store, &cfg, &mut rng);
        let x = Matrix::from_fn(9, 4, |r, c| ((r * 4 + c) as f32 * 0.37).sin());
        (enc, store, ops, x)
    }

    fn tape_eval(enc: &Encoder, store: &ParamStore, ops: &GraphOps, x: &Matrix) -> Matrix {
        let mut rng = StdRng::seed_from_u64(99);
        let mut sess = Session::new();
        let xi = sess.tape.constant(x.clone());
        let h = enc.forward(&mut sess, store, xi, ops, false, &mut rng);
        sess.tape.value(h).clone()
    }

    #[test]
    fn encode_matches_tape_eval_bitwise_all_kinds() {
        for kind in [
            EncoderKind::Gcn,
            EncoderKind::Sage,
            EncoderKind::Gat { heads: 2 },
            EncoderKind::Gin,
        ] {
            let (enc, store, ops, x) = fixture(kind, 2);
            let full = tape_eval(&enc, &store, &ops, &x);
            let fast = enc.encode(&store, &x, &ops);
            assert_eq!(fast.as_slice(), full.as_slice(), "{kind:?}");
        }
    }

    #[test]
    fn encode_rows_matches_full_encode_bitwise() {
        for kind in [
            EncoderKind::Gcn,
            EncoderKind::Sage,
            EncoderKind::Gat { heads: 2 },
            EncoderKind::Gin,
        ] {
            for layers in [1usize, 2, 3] {
                let (enc, store, ops, x) = fixture(kind, layers);
                let full = enc.encode(&store, &x, &ops);
                // unsorted, duplicated targets
                let targets = [7usize, 0, 3, 7];
                let got = enc.encode_rows(&store, &x, &ops, &targets);
                assert_eq!(got.rows(), targets.len());
                for (i, &t) in targets.iter().enumerate() {
                    assert_eq!(got.row(i), full.row(t), "{kind:?} L{layers} target {t}");
                }
            }
        }
    }

    #[test]
    fn encode_rows_empty_targets() {
        let (enc, store, ops, x) = fixture(EncoderKind::Gcn, 2);
        let got = enc.encode_rows(&store, &x, &ops, &[]);
        assert_eq!(got.shape(), (0, 5));
    }

    #[test]
    fn encode_is_thread_count_invariant() {
        let (enc, store, ops, x) = fixture(EncoderKind::Sage, 2);
        let base = enc.encode(&store, &x, &ops);
        // Safe to flip the global thread count: every kernel is bit-identical
        // at any thread count, so concurrent tests cannot be perturbed.
        for t in [1usize, 8] {
            gcmae_tensor::parallel::set_num_threads(t);
            let got = enc.encode(&store, &x, &ops);
            assert_eq!(got.as_slice(), base.as_slice(), "{t} threads");
        }
        gcmae_tensor::parallel::set_num_threads(0);
    }
}
