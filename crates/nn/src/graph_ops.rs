//! Lazily-computed sparse operators for one graph view.
//!
//! Every augmented view used in a training step gets its own [`GraphOps`],
//! shared (via `Arc`) into the tape ops that need it. Operators are built on
//! first use and cached: a GCN encoder never pays for the SAGE normalization
//! (or its CSR transpose), a SAGE encoder never pays for the GCN one, and so
//! on — which matters because contrastive methods construct fresh views (and
//! therefore fresh `GraphOps`) on every step.

use std::sync::OnceLock;

use gcmae_graph::Graph;
use gcmae_tensor::SharedCsr;

/// The sparse operators a GNN encoder may need for one graph view, each
/// computed on first access.
#[derive(Clone)]
pub struct GraphOps {
    graph: Graph,
    gcn: OnceLock<SharedCsr>,
    mean: OnceLock<(SharedCsr, SharedCsr)>,
    loops: OnceLock<SharedCsr>,
    /// Number of nodes.
    pub num_nodes: usize,
}

impl GraphOps {
    /// Wraps a graph; no operator is computed yet.
    pub fn new(g: &Graph) -> Self {
        Self {
            graph: g.clone(),
            gcn: OnceLock::new(),
            mean: OnceLock::new(),
            loops: OnceLock::new(),
            num_nodes: g.num_nodes(),
        }
    }

    /// Operators whose message-passing matrix is replaced by a custom
    /// operator (MVGRL's PPR diffusion view): `op` serves as both the GCN
    /// and SAGE-forward operator, `op_t` as the SAGE-backward transpose.
    /// GAT/GIN supports still come lazily from the graph itself.
    pub fn with_message_operator(g: &Graph, op: SharedCsr, op_t: SharedCsr) -> Self {
        let ops = Self::new(g);
        let _ = ops.gcn.set(op.clone());
        let _ = ops.mean.set((op, op_t));
        ops
    }

    /// Symmetric GCN normalization `D̃^{-1/2}(A+I)D̃^{-1/2}` (its own
    /// transpose, so the same handle serves forward and backward).
    pub fn gcn(&self) -> SharedCsr {
        self.gcn.get_or_init(|| self.graph.gcn_norm()).clone()
    }

    /// Row-stochastic mean normalization `D̃^{-1}(A+I)` (GraphSAGE forward).
    pub fn mean_fwd(&self) -> SharedCsr {
        self.mean.get_or_init(|| self.graph.mean_norm()).0.clone()
    }

    /// Transpose of [`Self::mean_fwd`] for the backward sparse product.
    pub fn mean_bwd(&self) -> SharedCsr {
        self.mean.get_or_init(|| self.graph.mean_norm()).1.clone()
    }

    /// Binary adjacency with self loops (GAT attention support).
    pub fn loops(&self) -> SharedCsr {
        self.loops.get_or_init(|| self.graph.adjacency_with_self_loops()).clone()
    }

    /// Raw binary adjacency without self loops (GIN sum aggregation;
    /// symmetric, so it is its own transpose). Always cheap: the graph
    /// already stores it.
    pub fn adj(&self) -> SharedCsr {
        self.graph.adjacency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_share_node_count() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let ops = GraphOps::new(&g);
        assert_eq!(ops.num_nodes, 5);
        for m in [ops.gcn(), ops.mean_fwd(), ops.loops(), ops.adj()] {
            assert_eq!(m.rows(), 5);
            assert_eq!(m.cols(), 5);
        }
        assert_eq!(ops.adj().nnz(), 8);
        assert_eq!(ops.loops().nnz(), 13);
    }

    #[test]
    fn operators_are_cached_per_view() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let ops = GraphOps::new(&g);
        // Two accesses hand out the same shared allocation.
        assert!(std::sync::Arc::ptr_eq(&ops.gcn(), &ops.gcn()));
        assert!(std::sync::Arc::ptr_eq(&ops.mean_fwd(), &ops.mean_fwd()));
    }

    #[test]
    fn message_operator_override_replaces_gcn_and_mean() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let custom = GraphOps::new(&g).loops(); // any CSR stands in
        let ops = GraphOps::with_message_operator(&g, custom.clone(), custom.clone());
        assert!(std::sync::Arc::ptr_eq(&ops.gcn(), &custom));
        assert!(std::sync::Arc::ptr_eq(&ops.mean_fwd(), &custom));
        assert!(std::sync::Arc::ptr_eq(&ops.mean_bwd(), &custom));
        // GAT/GIN supports still come from the graph.
        assert_eq!(ops.adj().nnz(), 4);
    }
}
