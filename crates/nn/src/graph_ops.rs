//! Precomputed sparse operators for one graph view.
//!
//! Every augmented view used in a training step gets its own [`GraphOps`],
//! computed once per step and shared (via `Arc`) into the tape ops that
//! need them.

use gcmae_graph::Graph;
use gcmae_tensor::SharedCsr;

/// The sparse operators a GNN encoder may need for one graph view.
#[derive(Clone)]
pub struct GraphOps {
    /// Symmetric GCN normalization `D̃^{-1/2}(A+I)D̃^{-1/2}`.
    pub gcn: SharedCsr,
    /// Row-stochastic mean normalization `D̃^{-1}(A+I)` (GraphSAGE).
    pub mean_fwd: SharedCsr,
    /// Transpose of `mean_fwd` for the backward pass.
    pub mean_bwd: SharedCsr,
    /// Binary adjacency with self loops (GAT attention support).
    pub loops: SharedCsr,
    /// Raw binary adjacency without self loops (GIN sum aggregation;
    /// symmetric, so it is its own transpose).
    pub adj: SharedCsr,
    /// Number of nodes.
    pub num_nodes: usize,
}

impl GraphOps {
    /// Computes all operators for a graph.
    pub fn new(g: &Graph) -> Self {
        let (mean_fwd, mean_bwd) = g.mean_norm();
        Self {
            gcn: g.gcn_norm(),
            mean_fwd,
            mean_bwd,
            loops: g.adjacency_with_self_loops(),
            adj: g.adjacency(),
            num_nodes: g.num_nodes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_share_node_count() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let ops = GraphOps::new(&g);
        assert_eq!(ops.num_nodes, 5);
        for m in [&ops.gcn, &ops.mean_fwd, &ops.loops, &ops.adj] {
            assert_eq!(m.rows(), 5);
            assert_eq!(m.cols(), 5);
        }
        assert_eq!(ops.adj.nnz(), 8);
        assert_eq!(ops.loops.nnz(), 13);
    }
}
