//! Learning-rate schedules: linear warmup followed by cosine decay, the
//! schedule GraphMAE-family implementations ship with. Optional — the
//! paper's main results use a constant rate, so trainers default to
//! [`Schedule::Constant`].

/// A learning-rate schedule over a fixed number of steps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Schedule {
    /// Constant rate.
    Constant,
    /// Linear warmup over `warmup` steps, then cosine decay to
    /// `floor × base` at `total` steps.
    WarmupCosine {
        /// Warmup steps.
        warmup: usize,
        /// Total steps (≥ warmup).
        total: usize,
        /// Final rate as a fraction of the base rate.
        floor: f32,
    },
}

impl Schedule {
    /// Multiplier applied to the base learning rate at `step`.
    pub fn factor(&self, step: usize) -> f32 {
        match *self {
            Schedule::Constant => 1.0,
            Schedule::WarmupCosine { warmup, total, floor } => {
                if warmup > 0 && step < warmup {
                    (step + 1) as f32 / warmup as f32
                } else if step >= total {
                    floor
                } else {
                    let span = (total - warmup).max(1) as f32;
                    let t = (step - warmup) as f32 / span;
                    let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                    floor + (1.0 - floor) * cos
                }
            }
        }
    }

    /// Absolute learning rate at `step` for the given base rate.
    pub fn lr(&self, base: f32, step: usize) -> f32 {
        base * self.factor(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let s = Schedule::Constant;
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(1000), 1.0);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = Schedule::WarmupCosine { warmup: 10, total: 100, floor: 0.0 };
        assert!((s.factor(0) - 0.1).abs() < 1e-6);
        assert!((s.factor(4) - 0.5).abs() < 1e-6);
        assert!((s.factor(9) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_decays_to_floor() {
        let s = Schedule::WarmupCosine { warmup: 0, total: 100, floor: 0.1 };
        assert!((s.factor(0) - 1.0).abs() < 1e-5);
        let mid = s.factor(50);
        assert!(mid > 0.1 && mid < 1.0);
        assert!((s.factor(100) - 0.1).abs() < 1e-6);
        assert!((s.factor(500) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn factor_is_monotone_after_warmup() {
        let s = Schedule::WarmupCosine { warmup: 5, total: 50, floor: 0.0 };
        let mut prev = f32::MAX;
        for step in 5..50 {
            let f = s.factor(step);
            assert!(f <= prev + 1e-6, "not monotone at {step}");
            prev = f;
        }
    }

    #[test]
    fn lr_scales_base() {
        let s = Schedule::WarmupCosine { warmup: 0, total: 10, floor: 0.5 };
        assert!((s.lr(0.002, 10) - 0.001).abs() < 1e-9);
    }
}
