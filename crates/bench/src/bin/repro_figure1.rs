//! Regenerates Figure 1: node-clustering quality of GCMAE vs GraphMAE vs
//! CCA-SSG on Cora — NMI scores plus 2-D PCA coordinates (the t-SNE
//! substitute, see DESIGN.md).

use gcmae_bench::figures::{run_figure1, write_series, Series};
use gcmae_bench::Scale;

fn main() {
    let (scale, _) = Scale::from_args();
    eprintln!("[repro_figure1] scale {scale:?}");
    let results = run_figure1(scale, 0);
    println!("== Figure 1: node clustering on Cora (NMI, higher = better) ==");
    let mut series = vec![];
    for (name, nmi, pts) in &results {
        println!("{name:10} NMI = {:.4}", nmi);
        series.push(Series {
            name: name.clone(),
            points: pts.iter().map(|&(x, y, c)| (x as f64, y as f64, c as f64)).collect(),
        });
    }
    // expected ordering per the paper: GCMAE > GraphMAE > CCA-SSG
    let get = |n: &str| results.iter().find(|(m, _, _)| m == n).map(|(_, s, _)| *s).unwrap();
    println!(
        "ordering GCMAE > GraphMAE: {}; GraphMAE > CCA-SSG: {}",
        get("GCMAE") > get("GraphMAE"),
        get("GraphMAE") > get("CCA-SSG"),
    );
    match write_series("figure1_scatter", &series) {
        Ok(p) => println!("[csv] {} (columns: series,x,y,label)", p.display()),
        Err(e) => eprintln!("[csv] failed: {e}"),
    }
}
