//! Regenerates Table 9: end-to-end training time.

use gcmae_bench::runners::run_training_time;
use gcmae_bench::{emit, Scale};

fn main() {
    let (scale, _) = Scale::from_args();
    eprintln!("[repro_table9] scale {scale:?} (timing: single run per cell)");
    let table = run_training_time(scale);
    emit(&table, "table9");
}
