//! Kernel microbenchmarks: matmul, spmm, adj_recon forward, infonce forward
//! at n ∈ {512, 2048, 8192} for 1 thread vs. all available threads, plus
//! single-thread engine-comparison rows (blocked vs. naive matmul, cached vs.
//! uncached loss pipelines). Writes median wall-clock nanoseconds and
//! achieved GFLOP/s to `BENCH_kernels.json` (same schema as the committed
//! file) so the CI kernels job can assert multi-core *and* single-core
//! speedups.
//!
//! Every row is tagged with the kernel backend that produced it. When the
//! host supports AVX2+FMA, each `matmul` row is immediately followed by the
//! same measurement under the Simd backend — the two rows run back-to-back
//! in one process so the CI Simd-speedup gate compares a ratio that cancels
//! host noise (turbo, steal time) instead of two separate runs.
//!
//! An [`ArenaGuard`] is held across each size's rows and matmul outputs are
//! recycled per rep, exactly as a training step behaves. Without it, every
//! rep fresh-mmaps the (up to 256 MB) output and the measurement is
//! dominated by soft page faults rather than the kernel — that artifact is
//! what previously read as a large-n GFLOP/s falloff.
//!
//! ```sh
//! cargo run --release -p gcmae-bench --bin bench_kernels -- [out.json] [--obs]
//! ```
//!
//! `--obs` installs a global [`gcmae_obs::Registry`] before timing, so the
//! measured numbers include live per-kernel telemetry (timers + flop
//! counters). CI's `obs-overhead` job runs the bench both ways and asserts
//! the enabled run stays within budget of the disabled one. The `gflops`
//! column is always derived from the obs flop counters: one untimed call per
//! row runs under a temporary registry to count flops, regardless of `--obs`.

use std::sync::Arc;
use std::time::Instant;

use gcmae_tensor::ops::{adj_recon, infonce};
use gcmae_tensor::parallel::{num_threads, set_num_threads};
use gcmae_tensor::{CsrMatrix, GramCache, Matrix, SharedCsr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 32;
const AVG_DEG: usize = 16;

fn random_graph(n: usize, avg_deg: usize, rng: &mut StdRng) -> SharedCsr {
    let mut t = Vec::new();
    for i in 0..n {
        let j = (i + 1) % n;
        t.push((i, j, 1.0));
        t.push((j, i, 1.0));
    }
    for _ in 0..n * avg_deg / 2 {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            t.push((i, j, 1.0));
            t.push((j, i, 1.0));
        }
    }
    let adj = CsrMatrix::from_triplets(n, n, &t);
    let values = vec![1.0; adj.nnz()];
    Arc::new(CsrMatrix::new(
        n,
        n,
        adj.indptr().to_vec(),
        adj.indices().to_vec(),
        values,
    ))
}

/// Median over `reps` timed calls, after one untimed warm-up call (the first
/// call ever pays allocator growth and page faults).
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    f();
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Flops of one `f()` call, read from the kernel flop counters via a
/// temporary global registry (the previous observer, if any, is restored).
fn flops_of(f: impl FnOnce()) -> u64 {
    let prev = gcmae_obs::installed();
    let tmp = Arc::new(gcmae_obs::Registry::new());
    gcmae_obs::install(tmp.clone());
    f();
    match prev {
        Some(p) => gcmae_obs::install(p),
        None => gcmae_obs::uninstall(),
    }
    tmp.snapshot()
        .counters
        .iter()
        .filter(|(k, _)| k.ends_with(".flops"))
        .map(|(_, v)| *v)
        .sum()
}

/// Times one kernel row (flop-counted untimed call, then `reps` timed calls)
/// and appends its JSON entry.
fn bench_row(
    entries: &mut Vec<String>,
    kernel: &str,
    n: usize,
    threads: usize,
    reps: usize,
    mut f: impl FnMut(),
) {
    let backend = gcmae_tensor::backend::active_backend().name();
    let flops = flops_of(&mut f);
    let ns = median_ns(reps, f);
    // flops/ns ≡ GFLOP/s (1e9 flops over 1e9 ns).
    let gflops = flops as f64 / ns.max(1) as f64;
    println!(
        "n={n} threads={threads} backend={backend} {kernel}: {:.3} ms  ({gflops:.3} GFLOP/s)",
        ns as f64 / 1e6
    );
    entries.push(format!(
        "    {{\"kernel\": \"{kernel}\", \"n\": {n}, \"dim\": {DIM}, \"threads\": {threads}, \"backend\": \"{backend}\", \"median_ns\": {ns}, \"reps\": {reps}, \"gflops\": {gflops:.3}}}"
    ));
}

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    set_num_threads(threads);
    let out = f();
    set_num_threads(0);
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let with_obs = args.iter().any(|a| a == "--obs");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".into());
    let registry = Arc::new(gcmae_obs::Registry::new());
    if with_obs {
        gcmae_obs::install(registry.clone());
        println!("telemetry: global registry installed (--obs)");
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let max_threads = num_threads();
    let mut thread_counts = vec![1usize];
    if max_threads > 1 {
        thread_counts.push(max_threads);
    }
    let mut rng = StdRng::seed_from_u64(1234);
    let mut entries = Vec::new();

    for &n in &[512usize, 2048, 8192] {
        let reps = if n >= 8192 {
            1
        } else if n >= 2048 {
            3
        } else {
            5
        };
        let a = Matrix::uniform(n, DIM, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(DIM, n, -1.0, 1.0, &mut rng);
        let adj = random_graph(n, AVG_DEG, &mut rng);
        let z = Matrix::uniform(n, DIM, -0.5, 0.5, &mut rng);
        let v = Matrix::uniform(n, DIM, -0.5, 0.5, &mut rng);
        // Hold the arena across this size's rows and recycle matmul outputs
        // per rep (see module docs): steady-state reps then reuse one hot
        // buffer instead of paying a fresh mmap + page-fault sweep per call.
        let _arena = gcmae_tensor::ArenaGuard::new();
        let matmul_rep = |a: &Matrix, b: &Matrix| {
            let c = gcmae_tensor::dense::matmul(a, b);
            std::hint::black_box(&c);
            gcmae_tensor::arena::recycle_matrix(c);
        };
        // The Simd-speedup gate rides on the matmul rows; give them extra
        // reps so the gated ratio is a median over enough samples to shrug
        // off scheduler noise even at the sizes where other kernels get 1.
        let mm_reps = reps.max(5);
        for &t in &thread_counts {
            with_threads(t, || {
                bench_row(&mut entries, "matmul", n, t, mm_reps, || matmul_rep(&a, &b));
                // Same measurement again under the Simd backend, back to
                // back in this process, so ratio-based gates see the same
                // host conditions for both rows.
                if gcmae_tensor::backend::simd_supported()
                    && gcmae_tensor::backend::active_backend()
                        != gcmae_tensor::Backend::Simd
                {
                    gcmae_tensor::backend::set_backend(gcmae_tensor::Backend::Simd);
                    bench_row(&mut entries, "matmul", n, t, mm_reps, || matmul_rep(&a, &b));
                    gcmae_tensor::backend::reset_backend();
                }
                bench_row(&mut entries, "spmm", n, t, reps, || {
                    std::hint::black_box(adj.matmul_dense(&z));
                });
                bench_row(&mut entries, "adj_recon_forward", n, t, reps, || {
                    std::hint::black_box(adj_recon::forward(&z, adj.clone(), Default::default()));
                });
                bench_row(&mut entries, "infonce_forward", n, t, reps, || {
                    std::hint::black_box(infonce::forward(&z, &v, 0.5));
                });
            });
        }

        // Single-thread engine comparisons: blocked vs. the textbook naive
        // triple loop and vs. the pre-blocking rowstream kernel on the same
        // operands; at n=2048 also the full O(N²) loss pipeline (forward +
        // backward of adj_recon and infonce), reference kernels vs. the
        // shared-GramCache + arena production path.
        with_threads(1, || {
            if n <= 2048 {
                bench_row(&mut entries, "matmul_naive", n, 1, reps, || {
                    std::hint::black_box(gcmae_tensor::dense::matmul_naive(&a, &b));
                });
                bench_row(&mut entries, "matmul_rowstream", n, 1, reps, || {
                    std::hint::black_box(gcmae_tensor::dense::matmul_rowstream(&a, &b));
                });
            } else {
                println!("n={n}: skipping matmul_naive/rowstream rows (too slow at this size)");
            }
            if n == 2048 {
                bench_row(&mut entries, "losses_fwd_bwd_uncached", n, 1, reps, || {
                    let (_, _, s) =
                        adj_recon::forward_reference(&z, adj.clone(), Default::default());
                    std::hint::black_box(adj_recon::backward_reference(&s, &z, 1.0));
                    let (_, si) = infonce::forward_reference(&z, &v, 0.5);
                    std::hint::black_box(infonce::backward_reference(&si, 1.0));
                });
                // Arena held across reps, as in training: steps after the
                // first recycle every buffer.
                let _arena = gcmae_tensor::ArenaGuard::new();
                bench_row(&mut entries, "losses_fwd_bwd_cached", n, 1, reps, || {
                    let mut cache = GramCache::new();
                    let (_, _, s) =
                        adj_recon::forward_with(&z, adj.clone(), Default::default(), &mut cache);
                    let (_, si) = infonce::forward_with(&z, &v, 0.5, &mut cache);
                    std::hint::black_box(adj_recon::backward(&s, &z, 1.0));
                    std::hint::black_box(infonce::backward(&si, 1.0));
                });
            }
        });
    }

    let json = format!(
        "{{\n  \"note\": \"median wall-clock ns per call (one warm-up call excluded); gflops = obs-counted flops / median ns\",\n  \"host_cores\": {host_cores},\n  \"avg_degree\": {AVG_DEG},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
    if with_obs {
        gcmae_obs::uninstall();
        let snap = registry.snapshot();
        println!("--- telemetry snapshot (--obs) ---");
        print!("{}", snap.to_prometheus());
        let calls: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.ends_with(".calls"))
            .map(|(_, v)| *v)
            .sum();
        assert!(calls > 0, "--obs run must record kernel calls");
    }
}
