//! Kernel microbenchmarks: matmul, spmm, adj_recon forward, infonce forward
//! at n ∈ {512, 2048, 8192} for 1 thread vs. all available threads. Writes
//! median wall-clock nanoseconds to `BENCH_kernels.json` (same schema as the
//! committed file) so the CI kernels job can assert multi-core speedups.
//!
//! ```sh
//! cargo run --release -p gcmae-bench --bin bench_kernels -- [out.json] [--obs]
//! ```
//!
//! `--obs` installs a global [`gcmae_obs::Registry`] before timing, so the
//! measured numbers include live per-kernel telemetry (timers + flop
//! counters). CI's `obs-overhead` job runs the bench both ways and asserts
//! the enabled run stays within budget of the disabled one.

use std::sync::Arc;
use std::time::Instant;

use gcmae_tensor::ops::{adj_recon, infonce};
use gcmae_tensor::parallel::{num_threads, set_num_threads};
use gcmae_tensor::{CsrMatrix, Matrix, SharedCsr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 32;
const AVG_DEG: usize = 16;

fn random_graph(n: usize, avg_deg: usize, rng: &mut StdRng) -> SharedCsr {
    let mut t = Vec::new();
    for i in 0..n {
        let j = (i + 1) % n;
        t.push((i, j, 1.0));
        t.push((j, i, 1.0));
    }
    for _ in 0..n * avg_deg / 2 {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            t.push((i, j, 1.0));
            t.push((j, i, 1.0));
        }
    }
    let adj = CsrMatrix::from_triplets(n, n, &t);
    let values = vec![1.0; adj.nnz()];
    Arc::new(CsrMatrix::new(
        n,
        n,
        adj.indptr().to_vec(),
        adj.indices().to_vec(),
        values,
    ))
}

/// Median over `reps` timed calls, after one untimed warm-up call (the first
/// call ever pays allocator growth and page faults).
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    f();
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    set_num_threads(threads);
    let out = f();
    set_num_threads(0);
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let with_obs = args.iter().any(|a| a == "--obs");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".into());
    let registry = Arc::new(gcmae_obs::Registry::new());
    if with_obs {
        gcmae_obs::install(registry.clone());
        println!("telemetry: global registry installed (--obs)");
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let max_threads = num_threads();
    let mut thread_counts = vec![1usize];
    if max_threads > 1 {
        thread_counts.push(max_threads);
    }
    let mut rng = StdRng::seed_from_u64(1234);
    let mut entries = Vec::new();

    for &n in &[512usize, 2048, 8192] {
        let reps = if n >= 8192 {
            1
        } else if n >= 2048 {
            3
        } else {
            5
        };
        let a = Matrix::uniform(n, DIM, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(DIM, n, -1.0, 1.0, &mut rng);
        let adj = random_graph(n, AVG_DEG, &mut rng);
        let z = Matrix::uniform(n, DIM, -0.5, 0.5, &mut rng);
        let v = Matrix::uniform(n, DIM, -0.5, 0.5, &mut rng);
        for &t in &thread_counts {
            let timings = with_threads(t, || {
                [
                    (
                        "matmul",
                        median_ns(reps, || {
                            std::hint::black_box(gcmae_tensor::dense::matmul(&a, &b));
                        }),
                    ),
                    (
                        "spmm",
                        median_ns(reps, || {
                            std::hint::black_box(adj.matmul_dense(&z));
                        }),
                    ),
                    (
                        "adj_recon_forward",
                        median_ns(reps, || {
                            std::hint::black_box(adj_recon::forward(
                                &z,
                                adj.clone(),
                                Default::default(),
                            ));
                        }),
                    ),
                    (
                        "infonce_forward",
                        median_ns(reps, || {
                            std::hint::black_box(infonce::forward(&z, &v, 0.5));
                        }),
                    ),
                ]
            });
            for (kernel, ns) in timings {
                println!("n={n} threads={t} {kernel}: {:.3} ms", ns as f64 / 1e6);
                entries.push(format!(
                    "    {{\"kernel\": \"{kernel}\", \"n\": {n}, \"dim\": {DIM}, \"threads\": {t}, \"median_ns\": {ns}, \"reps\": {reps}}}"
                ));
            }
        }
    }

    let json = format!(
        "{{\n  \"note\": \"median wall-clock ns per call (one warm-up call excluded)\",\n  \"host_cores\": {host_cores},\n  \"avg_degree\": {AVG_DEG},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
    if with_obs {
        gcmae_obs::uninstall();
        let snap = registry.snapshot();
        println!("--- telemetry snapshot (--obs) ---");
        print!("{}", snap.to_prometheus());
        let calls: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.ends_with(".calls"))
            .map(|(_, v)| *v)
            .sum();
        assert!(calls > 0, "--obs run must record kernel calls");
    }
}
