//! Regenerates Table 4: node classification.

use gcmae_bench::runners::run_node_classification;
use gcmae_bench::{emit, Scale};

fn main() {
    let (scale, seeds) = Scale::from_args();
    eprintln!("[repro_table4] scale {scale:?}, {seeds} seeds");
    let table = run_node_classification(scale, seeds);
    emit(&table, "table4");
}
