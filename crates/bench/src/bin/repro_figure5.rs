//! Regenerates Figure 5: F1 surface over the feature mask rate `p_mask`
//! and node drop rate `p_drop` on Cora, Citeseer, and PubMed.

use gcmae_bench::figures::{run_figure5, write_series};
use gcmae_bench::Scale;

fn main() {
    let (scale, _) = Scale::from_args();
    eprintln!("[repro_figure5] scale {scale:?}");
    let grid: Vec<f32> = match scale {
        Scale::Smoke => vec![0.2, 0.5, 0.8],
        Scale::Fast => vec![0.2, 0.5, 0.8],
        Scale::Paper => vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
    };
    let mut all = vec![];
    for name in ["Cora", "Citeseer", "PubMed"] {
        let s = run_figure5(name, scale, 0, &grid);
        println!("== Figure 5 ({name}): F1 over p_mask x p_drop ==");
        print!("{:>7}", "pm\\pd");
        for &pd in &grid {
            print!(" {pd:>6.1}");
        }
        println!();
        for (i, &pm) in grid.iter().enumerate() {
            print!("{pm:>7.1}");
            for j in 0..grid.len() {
                let (_, _, f1) = s.points[i * grid.len() + j];
                print!(" {f1:>6.1}");
            }
            println!();
        }
        all.push(s);
    }
    match write_series("figure5", &all) {
        Ok(p) => println!("[csv] {} (columns: series,p_mask,p_drop,f1)", p.display()),
        Err(e) => eprintln!("[csv] failed: {e}"),
    }
}
