//! Regenerates Table 1: GCMAE's improvement over the best-performing
//! baseline of each category, per task. Aggregates the Table 4-7 runners.

use gcmae_bench::runners::{
    run_graph_classification, run_link_prediction, run_node_classification, run_node_clustering,
};
use gcmae_bench::summary::{categories, improvement_over};
use gcmae_bench::Scale;

fn fmt(v: Option<f64>) -> String {
    v.map_or("-".to_string(), |x| format!("{x:+.1}%"))
}

fn main() {
    let (scale, seeds) = Scale::from_args();
    eprintln!("[repro_table1] scale {scale:?}, {seeds} seeds (runs tables 4-7 internally)");

    let t4 = run_node_classification(scale, seeds);
    let t5 = run_link_prediction(scale, seeds);
    let t6 = run_node_clustering(scale, seeds);
    let t7 = run_graph_classification(scale, seeds);

    println!("== Table 1: GCMAE improvement over best baseline per category ==");
    println!("{:22} | {:>12} | {:>8} | {:>8}", "Graph Task", "vs. Contrast", "vs. MAE", "Others");
    println!("{}", "-".repeat(60));
    println!(
        "{:22} | {:>12} | {:>8} | {:>8}",
        "Node classification",
        fmt(improvement_over(&t4, "GCMAE", &categories::CONTRASTIVE)),
        fmt(improvement_over(&t4, "GCMAE", &categories::MAE)),
        fmt(improvement_over(&t4, "GCMAE", &categories::SUPERVISED)),
    );
    println!(
        "{:22} | {:>12} | {:>8} | {:>8}",
        "Link prediction",
        fmt(improvement_over(&t5, "GCMAE", &categories::CONTRASTIVE)),
        fmt(improvement_over(&t5, "GCMAE", &categories::MAE)),
        "-",
    );
    println!(
        "{:22} | {:>12} | {:>8} | {:>8}",
        "Node clustering",
        fmt(improvement_over(&t6, "GCMAE", &categories::CONTRASTIVE)),
        fmt(improvement_over(&t6, "GCMAE", &categories::MAE)),
        fmt(improvement_over(&t6, "GCMAE", &categories::CLUSTERING)),
    );
    println!(
        "{:22} | {:>12} | {:>8} | {:>8}",
        "Graph classification",
        fmt(improvement_over(&t7, "GCMAE", &categories::GRAPH_CONTRASTIVE)),
        fmt(improvement_over(&t7, "GCMAE", &categories::GRAPH_MAE)),
        "-",
    );
}
