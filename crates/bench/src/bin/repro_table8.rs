//! Regenerates Table 8: encoder ablation.

use gcmae_bench::runners::run_encoder_ablation;
use gcmae_bench::{emit, Scale};

fn main() {
    let (scale, seeds) = Scale::from_args();
    eprintln!("[repro_table8] scale {scale:?}, {seeds} seeds");
    let table = run_encoder_ablation(scale, seeds);
    emit(&table, "table8");
}
