//! Quick calibration: runs a representative method subset on one dataset
//! and prints node-classification accuracy, so generator/hyper-parameter
//! changes can be sanity-checked against the paper's ordering
//! (supervised < contrastive < MAE < GCMAE) in a couple of minutes.
//!
//! ```sh
//! cargo run --release -p gcmae-bench --bin calibrate -- --scale fast Cora
//! ```

use gcmae_baselines::supervised::{self, SupervisedConfig};
use gcmae_bench::methods::NodeMethod;
use gcmae_bench::runners::{classification_split, probe_accuracy, DATA_SEED};
use gcmae_bench::scale::{gcmae_config, node_dataset, ssl_config, Scale};

fn main() {
    let (scale, seeds) = Scale::from_args();
    let name = std::env::args()
        .skip(1)
        .find(|a| ["Cora", "Citeseer", "PubMed", "Reddit"].contains(&a.as_str()))
        .unwrap_or_else(|| "Cora".into());
    let ds = node_dataset(&name, scale, DATA_SEED);
    let split = classification_split(&ds);
    println!(
        "{name} @ {scale:?}: {} nodes, {} edges, {} feats, {} classes, {} train nodes",
        ds.num_nodes(),
        ds.graph.num_edges(),
        ds.feature_dim(),
        ds.num_classes,
        split.train.len()
    );
    let ssl = ssl_config(scale, ds.num_nodes());
    let mut gc = gcmae_config(scale, ds.num_nodes());
    // optional loss-weight overrides: --alpha X --lambda Y --mu Z
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<f32> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let alpha = flag("--alpha").unwrap_or(0.3);
    let lambda = flag("--lambda").unwrap_or(0.1);
    let mu = flag("--mu").unwrap_or(0.2);
    let obj = gc.objective().with_weights(alpha, lambda, mu);
    gc = gc.with_objective(obj);
    let mut ssl = ssl;
    if let Some(v) = flag("--epochs") {
        gc.epochs = v as usize;
        ssl.epochs = v as usize;
    }
    if let Some(v) = flag("--proj") {
        gc.proj_dim = v as usize;
    }
    if let Some(v) = flag("--tau") {
        gc.tau = v;
        let obj = gc.objective().with_tau(v);
        gc = gc.with_objective(obj);
    }
    let only_gcmae = args.iter().any(|a| a == "--only-gcmae");
    eprintln!(
        "weights: alpha={alpha} lambda={lambda} mu={mu}"
    );

    let sup_cfg = SupervisedConfig {
        epochs: scale.epochs(),
        hidden_dim: scale.hidden_dim().min(64),
        ..SupervisedConfig::gcn()
    };
    if !only_gcmae {
        let mut accs = vec![];
        for s in 0..seeds as u64 {
            accs.push(supervised::train(&ds, &split, &sup_cfg, s) * 100.0);
        }
        println!(
            "{:10} {:6.2}",
            "GCN(sup)",
            accs.iter().sum::<f64>() / accs.len() as f64
        );
    }

    if args.iter().any(|a| a == "--ablate") {
        let variants: Vec<(&str, gcmae_core::GcmaeConfig)> = vec![
            ("full", gc.clone()),
            ("wo_con", gc.clone().without_contrastive()),
            ("wo_stru", gc.clone().without_struct_recon()),
            ("wo_disc", gc.clone().without_discrimination()),
            (
                "only_con",
                gc.clone().without_struct_recon().without_discrimination(),
            ),
            (
                "mae_only",
                gc.clone()
                    .without_contrastive()
                    .without_struct_recon()
                    .without_discrimination(),
            ),
        ];
        for (label, cfg) in variants {
            let mut accs = vec![];
            for s in 0..seeds as u64 {
                let out = gcmae_core::TrainSession::new(&cfg)
                    .seed(s)
                    .run(&ds)
                    .expect("unguarded session cannot fail");
                accs.push(probe_accuracy(&out.embeddings, &ds, &split, s));
            }
            println!(
                "{label:10} {:6.2}",
                accs.iter().sum::<f64>() / accs.len() as f64
            );
        }
        return;
    }
    let methods: Vec<NodeMethod> = if only_gcmae {
        vec![NodeMethod::GraphMae, NodeMethod::Gcmae]
    } else {
        vec![
            NodeMethod::Grace,
            NodeMethod::CcaSsg,
            NodeMethod::GraphMae,
            NodeMethod::MaskGae,
            NodeMethod::Gcmae,
        ]
    };
    for method in methods {
        let mut accs = vec![];
        for s in 0..seeds as u64 {
            if let Some(emb) = method.train_embeddings(&ds, &ssl, &gc, s) {
                accs.push(probe_accuracy(&emb, &ds, &split, s));
            }
        }
        let mean = accs.iter().sum::<f64>() / accs.len().max(1) as f64;
        println!("{:10} {mean:6.2}", method.name());
    }
}
