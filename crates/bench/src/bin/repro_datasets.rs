//! Regenerates Tables 2 and 3: dataset statistics.

use gcmae_bench::scale::{graph_collections, node_datasets, Scale};
use gcmae_graph::stats::{CollectionStats, DatasetStats};

fn main() {
    let (scale, _) = Scale::from_args();
    println!("== Table 2: node-task datasets (scale {scale:?}) ==");
    println!("{:10} | {:>8} | {:>10} | {:>9} | {:>8}", "Dataset", "Nodes", "Edges", "Features", "Classes");
    for ds in node_datasets(scale, gcmae_bench::runners::DATA_SEED) {
        let s = DatasetStats::of(&ds);
        println!(
            "{:10} | {:>8} | {:>10} | {:>9} | {:>8}",
            ds.name, s.nodes, s.edges, s.features, s.classes
        );
    }
    println!();
    println!("== Table 3: graph-task datasets (scale {scale:?}) ==");
    println!("{:10} | {:>8} | {:>8} | {:>12}", "Dataset", "Graphs", "Classes", "Avg. Nodes");
    for c in graph_collections(scale, gcmae_bench::runners::DATA_SEED) {
        let s = CollectionStats::of(&c);
        println!("{:10} | {:>8} | {:>8} | {:>12.1}", c.name, s.graphs, s.classes, s.avg_nodes);
    }
    println!();
    println!(
        "note: paper-scale statistics are encoded in the generator specs; run with \
         `--scale paper` to generate at those sizes (Reddit/PubMed stay subsampled per DESIGN.md)."
    );
}
