//! Regenerates Figure 4: embedding similarity between anchor nodes and
//! their 5-hop neighbours across training epochs, GCMAE vs GraphMAE, on
//! Cora (a) and Citeseer (b).

use gcmae_bench::figures::{run_figure4, write_series};
use gcmae_bench::Scale;

fn main() {
    let (scale, _) = Scale::from_args();
    eprintln!("[repro_figure4] scale {scale:?}");
    let stride = match scale {
        Scale::Smoke => 2,
        _ => 20,
    };
    let mut all = vec![];
    for name in ["Cora", "Citeseer"] {
        let series = run_figure4(name, scale, 0, stride);
        println!("== Figure 4 ({name}): 5-hop similarity vs epoch ==");
        for s in &series {
            print!("{:18}", s.name);
            for &(x, y, _) in &s.points {
                print!(" ({x:.0},{y:.3})");
            }
            println!();
        }
        // the paper's claim: GCMAE's long-range similarity grows above
        // GraphMAE's, which stays low
        let last = |n: &str| {
            series
                .iter()
                .find(|s| s.name.starts_with(n))
                .and_then(|s| s.points.last())
                .map(|p| p.1)
                .unwrap_or(0.0)
        };
        println!(
            "final: GCMAE {:.3} vs GraphMAE {:.3} (GCMAE higher: {})",
            last("GCMAE"),
            last("GraphMAE"),
            last("GCMAE") > last("GraphMAE")
        );
        all.extend(series);
    }
    match write_series("figure4", &all) {
        Ok(p) => println!("[csv] {}", p.display()),
        Err(e) => eprintln!("[csv] failed: {e}"),
    }
}
