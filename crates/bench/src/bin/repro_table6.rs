//! Regenerates Table 6: node clustering.

use gcmae_bench::runners::run_node_clustering;
use gcmae_bench::{emit, Scale};

fn main() {
    let (scale, seeds) = Scale::from_args();
    eprintln!("[repro_table6] scale {scale:?}, {seeds} seeds");
    let table = run_node_clustering(scale, seeds);
    emit(&table, "table6");
}
