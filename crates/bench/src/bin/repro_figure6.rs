//! Regenerates Figure 6: accuracy vs hidden width {64..2048} and vs depth
//! {2,4,8} on Cora, Citeseer, and PubMed.

use gcmae_bench::figures::{run_figure6, write_series};
use gcmae_bench::Scale;

fn main() {
    let (scale, _) = Scale::from_args();
    eprintln!("[repro_figure6] scale {scale:?}");
    let (widths, depths): (Vec<usize>, Vec<usize>) = match scale {
        Scale::Smoke => (vec![16, 64], vec![2, 4]),
        Scale::Fast => (vec![16, 64, 256], vec![2, 4, 8]),
        Scale::Paper => (vec![64, 128, 256, 512, 1024, 2048], vec![2, 4, 8]),
    };
    let mut all = vec![];
    for name in ["Cora", "Citeseer", "PubMed"] {
        let (w, d) = run_figure6(name, scale, 0, &widths, &depths);
        println!("== Figure 6 ({name}) ==");
        print!("width :");
        for &(x, y, _) in &w.points {
            print!(" ({x:.0} -> {y:.1})");
        }
        println!();
        print!("depth :");
        for &(x, y, _) in &d.points {
            print!(" ({x:.0} -> {y:.1})");
        }
        println!();
        all.push(w);
        all.push(d);
    }
    match write_series("figure6", &all) {
        Ok(p) => println!("[csv] {}", p.display()),
        Err(e) => eprintln!("[csv] failed: {e}"),
    }
}
