//! Training-scale benchmark: wall-clock per full-graph training step under
//! the dense O(N²) objective vs the sampled O(N·k) objective, plus a
//! million-node scaling sweep with sampled losses. Writes
//! `BENCH_training_scale.json` (same shape as the committed file); the CI
//! `training-scale` job asserts the sampled-vs-dense per-step speedup at
//! n = 8192 and zero guard trips.
//!
//! Every row is tagged with the `objective` that produced it (the
//! `Objective::describe()` string), the way the kernel rows are tagged with
//! `backend`.
//!
//! ```sh
//! cargo run --release -p gcmae-bench --bin bench_training_scale -- [out.json] [--max-n N]
//! ```
//!
//! `--max-n` caps the scaling sweep (CI uses a laptop-feasible cap; the
//! committed file is measured with the full 1M-node row).

use std::time::Instant;

use gcmae_core::model::seeded_rng;
use gcmae_core::{Gcmae, GcmaeConfig, Objective, SamplerDist, StepGuard};
use gcmae_graph::generators::citation::{generate, CitationSpec};
use gcmae_graph::Dataset;
use gcmae_nn::Adam;

/// Step timing for one config: builds a fresh model, runs one untimed
/// warm-up step, then `reps` timed steps with finiteness guards enabled.
/// Returns (median ns, guard trips).
fn time_steps(ds: &Dataset, cfg: &GcmaeConfig, reps: usize) -> (u128, u64) {
    let _arena = gcmae_tensor::ArenaGuard::new();
    let mut rng = seeded_rng(7);
    let mut model = Gcmae::new(cfg, ds.feature_dim(), &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let guard = StepGuard { check_finite: true, ..StepGuard::off() };
    let mut trips = 0u64;
    let mut run = |trips: &mut u64| {
        if model
            .step(&ds.graph, &ds.features, &mut adam, &mut rng, &guard)
            .is_err()
        {
            *trips += 1;
        }
    };
    run(&mut trips); // warm-up: first step pays allocator growth
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            run(&mut trips);
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    (samples[samples.len() / 2], trips)
}

/// Times one row and appends its JSON entry.
#[allow(clippy::too_many_arguments)]
fn bench_row(
    entries: &mut Vec<String>,
    bench: &str,
    ds: &Dataset,
    cfg: &GcmaeConfig,
    objective: &str,
    reps: usize,
    total_trips: &mut u64,
) {
    let spec = cfg.objective().describe();
    let (ns, trips) = time_steps(ds, cfg, reps);
    *total_trips += trips;
    println!(
        "{bench} n={} edges={} objective={objective}: {:.1} ms/step ({trips} guard trips)",
        ds.num_nodes(),
        ds.graph.num_edges(),
        ns as f64 / 1e6
    );
    entries.push(format!(
        "    {{\"bench\": \"{bench}\", \"n\": {}, \"edges\": {}, \"feature_dim\": {}, \
         \"hidden_dim\": {}, \"objective\": \"{objective}\", \"objective_spec\": \"{spec}\", \
         \"median_ns\": {ns}, \"reps\": {reps}, \"guard_trips\": {trips}}}",
        ds.num_nodes(),
        ds.graph.num_edges(),
        ds.feature_dim(),
        cfg.hidden_dim,
    ))
}

/// Bench config: full-graph GCN training sized for single-host measurement;
/// only the objective differs between rows.
fn bench_config() -> GcmaeConfig {
    GcmaeConfig {
        encoder: gcmae_core::EncoderChoice::Gcn,
        hidden_dim: 64,
        proj_dim: 32,
        epochs: 1,
        ..GcmaeConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_training_scale.json".to_string());
    let max_n: usize = args
        .iter()
        .position(|a| a == "--max-n")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX);

    let mut entries: Vec<String> = Vec::new();
    let mut total_trips = 0u64;
    let base = CitationSpec::web_scale();

    // --- sampled vs dense at n = 8192 (the CI speedup gate) --------------
    {
        let n = 8192.min(max_n);
        let ds = generate(&base.clone().scaled(n as f64 / base.nodes as f64), 42);
        let dense = bench_config().with_objective(
            // dense = every pairwise term over all N anchors (sample cap 0)
            Objective::paper().with_dense_caps(0, ds.num_nodes()),
        );
        bench_row(&mut entries, "train_step", &ds, &dense, "dense", 3, &mut total_trips);
        let sampled = bench_config()
            .with_objective(Objective::paper().sampled(8, SamplerDist::Uniform));
        bench_row(&mut entries, "train_step", &ds, &sampled, "sampled_k8_uniform", 5, &mut total_trips);
        let degree = bench_config()
            .with_objective(Objective::paper().sampled(8, SamplerDist::Degree));
        bench_row(&mut entries, "train_step", &ds, &degree, "sampled_k8_degree", 5, &mut total_trips);
    }

    // --- sampled scaling sweep up to 1M nodes ----------------------------
    for n in [65_536usize, 262_144, 1_000_000] {
        if n > max_n {
            println!("skipping n={n} (over --max-n {max_n})");
            continue;
        }
        let t = Instant::now();
        let ds = generate(&base.clone().scaled(n as f64 / base.nodes as f64), 42);
        println!(
            "generated {} nodes / {} edges in {:.1}s",
            ds.num_nodes(),
            ds.graph.num_edges(),
            t.elapsed().as_secs_f64()
        );
        let cfg = bench_config()
            .with_objective(Objective::paper().sampled(8, SamplerDist::Uniform));
        let reps = if n >= 1_000_000 { 1 } else { 2 };
        bench_row(&mut entries, "train_step", &ds, &cfg, "sampled_k8_uniform", reps, &mut total_trips);
    }

    let json = format!(
        "{{\n  \"note\": \"median wall-clock ns per full-graph training step \
         (one warm-up step excluded); dense = all-anchor O(N^2) objective, \
         sampled = per-anchor k-negative O(N*k) objective\",\n  \
         \"host_cores\": {},\n  \"guard_trips\": {total_trips},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |c| c.get()),
        entries.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write bench output");
    println!("wrote {out_path} ({total_trips} total guard trips)");
}
