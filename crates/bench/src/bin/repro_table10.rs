//! Regenerates Table 10: loss-component ablation.

use gcmae_bench::runners::run_component_ablation;
use gcmae_bench::{emit, Scale};

fn main() {
    let (scale, seeds) = Scale::from_args();
    eprintln!("[repro_table10] scale {scale:?}, {seeds} seeds");
    let table = run_component_ablation(scale, seeds);
    emit(&table, "table10");
}
