//! Regenerates Table 7: graph classification.

use gcmae_bench::runners::run_graph_classification;
use gcmae_bench::{emit, Scale};

fn main() {
    let (scale, seeds) = Scale::from_args();
    eprintln!("[repro_table7] scale {scale:?}, {seeds} seeds");
    let table = run_graph_classification(scale, seeds);
    emit(&table, "table7");
}
