//! Regenerates Table 5: link prediction.

use gcmae_bench::runners::run_link_prediction;
use gcmae_bench::{emit, Scale};

fn main() {
    let (scale, seeds) = Scale::from_args();
    eprintln!("[repro_table5] scale {scale:?}, {seeds} seeds");
    let table = run_link_prediction(scale, seeds);
    emit(&table, "table5");
}
