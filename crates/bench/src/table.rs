//! Result tables: mean ± std cells, aligned text output matching the
//! paper's row/column layout, and CSV dumps under `target/repro/`.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Mean ± standard deviation over seeds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeanStd {
    /// mean.
    pub mean: f64,
    /// std.
    pub std: f64,
}

impl MeanStd {
    /// Aggregates raw values.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "no values to aggregate");
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        Self { mean, std: var.sqrt() }
    }
}

impl fmt::Display for MeanStd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}±{:.2}", self.mean, self.std)
    }
}

/// A results table: one row per method, one column per dataset/metric.
#[derive(Clone, Debug)]
pub struct Table {
    /// title.
    pub title: String,
    /// columns.
    pub columns: Vec<String>,
    /// rows.
    pub rows: Vec<(String, Vec<Option<MeanStd>>)>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self { title: title.into(), columns, rows: vec![] }
    }

    /// Appends a row; `None` cells print as `-` (e.g. OOM/NA entries).
    pub fn push_row(&mut self, method: impl Into<String>, cells: Vec<Option<MeanStd>>) {
        assert_eq!(cells.len(), self.columns.len(), "cell count mismatch");
        self.rows.push((method.into(), cells));
    }

    /// Best (max-mean) row index per column.
    pub fn best_per_column(&self) -> Vec<Option<usize>> {
        (0..self.columns.len())
            .map(|c| {
                self.rows
                    .iter()
                    .enumerate()
                    .filter_map(|(i, (_, cells))| cells[c].map(|m| (i, m.mean)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .map(|(i, _)| i)
            })
            .collect()
    }

    /// Renders aligned text, starring the best entry per column.
    pub fn render(&self) -> String {
        let best = self.best_per_column();
        let name_w = self
            .rows
            .iter()
            .map(|(m, _)| m.len())
            .chain([6])
            .max()
            .unwrap_or(6)
            .max("Method".len());
        let cell_w = 13usize;
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("{:name_w$}", "Method"));
        for c in &self.columns {
            out.push_str(&format!(" | {c:>cell_w$}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(name_w + (cell_w + 3) * self.columns.len()));
        out.push('\n');
        for (i, (m, cells)) in self.rows.iter().enumerate() {
            out.push_str(&format!("{m:name_w$}"));
            for (c, cell) in cells.iter().enumerate() {
                let s = match cell {
                    Some(v) => {
                        let star = if best[c] == Some(i) { "*" } else { " " };
                        format!("{v}{star}")
                    }
                    None => "-".to_string(),
                };
                out.push_str(&format!(" | {s:>cell_w$}"));
            }
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV to `target/repro/<slug>.csv`.
    pub fn write_csv(&self, slug: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/repro");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{slug}.csv"));
        let mut f = fs::File::create(&path)?;
        write!(f, "method")?;
        for c in &self.columns {
            write!(f, ",{c}_mean,{c}_std")?;
        }
        writeln!(f)?;
        for (m, cells) in &self.rows {
            write!(f, "{m}")?;
            for cell in cells {
                match cell {
                    Some(v) => write!(f, ",{:.4},{:.4}", v.mean, v.std)?,
                    None => write!(f, ",,")?,
                }
            }
            writeln!(f)?;
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_aggregation() {
        let m = MeanStd::from_values(&[1.0, 2.0, 3.0]);
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn render_marks_best_and_missing() {
        let mut t = Table::new("T", vec!["A".into(), "B".into()]);
        t.push_row("m1", vec![Some(MeanStd { mean: 1.0, std: 0.1 }), None]);
        t.push_row("m2", vec![Some(MeanStd { mean: 2.0, std: 0.1 }), Some(MeanStd::default())]);
        let s = t.render();
        assert!(s.contains("2.00±0.10*"));
        assert!(s.contains('-'));
        assert_eq!(t.best_per_column()[0], Some(1));
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn wrong_cell_count_panics() {
        let mut t = Table::new("T", vec!["A".into()]);
        t.push_row("m", vec![]);
    }
}
