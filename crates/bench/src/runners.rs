//! Experiment runners — one per table of the paper's evaluation.

use std::time::Instant;

use gcmae_baselines::supervised::{self, SupervisedConfig};
use gcmae_core::{train_variant, EncoderVariant, GcmaeConfig};
use gcmae_eval::metrics::clustering::{ari, nmi};
use gcmae_eval::{cross_validate, finetuned_eval, kmeans, linear_probe, ProbeConfig, SvmConfig};
use gcmae_graph::splits::{link_split, planetoid_split};
use gcmae_graph::{Dataset, NodeSplit};
use gcmae_nn::EncoderKind;
use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::methods::{GraphMethod, NodeMethod};
use crate::scale::{
    gcmae_config, graph_collections, node_dataset, node_datasets, ssl_config, Scale,
};
use crate::table::{MeanStd, Table};

/// Fixed generator seed so every method sees the same data.
pub const DATA_SEED: u64 = 42;
/// Fixed split seed.
pub const SPLIT_SEED: u64 = 7;

/// Standard classification split for a dataset (planetoid-style).
pub fn classification_split(ds: &Dataset) -> NodeSplit {
    let mut rng = StdRng::seed_from_u64(SPLIT_SEED);
    let n = ds.num_nodes();
    // keep the paper's label budget *proportion* (Cora: 140/2708 ≈ 5%)
    let per_class = (n / (ds.num_classes * 20)).clamp(3, 20);
    let num_val = (n / 8).clamp(10, 500);
    planetoid_split(&ds.labels, ds.num_classes, per_class, num_val, &mut rng)
}

/// Probe accuracy (%) of embeddings on a dataset split.
pub fn probe_accuracy(emb: &Matrix, ds: &Dataset, split: &NodeSplit, seed: u64) -> f64 {
    linear_probe(
        emb,
        &ds.labels,
        ds.num_classes,
        split,
        &ProbeConfig::default(),
        seed,
    )
    .accuracy
        * 100.0
}

/// Probe macro-F1 (%) — used by the Figure 5 sweep.
pub fn probe_f1(emb: &Matrix, ds: &Dataset, split: &NodeSplit, seed: u64) -> f64 {
    linear_probe(
        emb,
        &ds.labels,
        ds.num_classes,
        split,
        &ProbeConfig::default(),
        seed,
    )
    .macro_f1
        * 100.0
}

/// Table 4: node classification accuracy, supervised + SSL methods.
pub fn run_node_classification(scale: Scale, seeds: usize) -> Table {
    let datasets = node_datasets(scale, DATA_SEED);
    let columns: Vec<String> = datasets.iter().map(|d| d.name.clone()).collect();
    let mut table = Table::new("Table 4: node classification accuracy (%)", columns);

    // supervised rows
    for (label, kind) in [
        ("GCN", EncoderKind::Gcn),
        ("GAT", EncoderKind::Gat { heads: 4 }),
    ] {
        let mut cells = vec![];
        for ds in &datasets {
            let split = classification_split(ds);
            let cfg = SupervisedConfig {
                kind,
                epochs: scale.epochs(),
                hidden_dim: scale.hidden_dim().min(64),
                ..SupervisedConfig::gcn()
            };
            let vals: Vec<f64> = (0..seeds)
                .map(|s| supervised::train(ds, &split, &cfg, s as u64) * 100.0)
                .collect();
            cells.push(Some(MeanStd::from_values(&vals)));
        }
        table.push_row(label, cells);
    }

    // SSL rows
    for method in NodeMethod::STANDARD {
        let mut cells = vec![];
        for ds in &datasets {
            eprintln!("[table4] {} / {}", method.name(), ds.name);
            let split = classification_split(ds);
            let ssl = ssl_config(scale, ds.num_nodes());
            let gc = gcmae_config(scale, ds.num_nodes());
            let mut vals = vec![];
            for s in 0..seeds {
                match method.train_embeddings(ds, &ssl, &gc, s as u64) {
                    Some(emb) => vals.push(probe_accuracy(&emb, ds, &split, s as u64)),
                    None => break,
                }
            }
            cells.push(if vals.is_empty() {
                None
            } else {
                Some(MeanStd::from_values(&vals))
            });
        }
        table.push_row(method.name(), cells);
    }
    table
}

/// Table 5: link prediction AUC/AP per dataset.
pub fn run_link_prediction(scale: Scale, seeds: usize) -> Table {
    let datasets = node_datasets(scale, DATA_SEED);
    let mut columns = vec![];
    for d in &datasets {
        columns.push(format!("{} AUC", d.name));
        columns.push(format!("{} AP", d.name));
    }
    let mut table = Table::new("Table 5: link prediction (%)", columns);
    for method in NodeMethod::STANDARD {
        let mut cells = vec![];
        for ds in &datasets {
            eprintln!("[table5] {} / {}", method.name(), ds.name);
            let mut rng = StdRng::seed_from_u64(SPLIT_SEED);
            let split = link_split(&ds.graph, 0.05, 0.10, &mut rng);
            // train on the graph with held-out edges removed
            let train_ds = Dataset {
                graph: split.train_graph.clone(),
                ..ds.clone()
            };
            let ssl = ssl_config(scale, ds.num_nodes());
            let gc = gcmae_config(scale, ds.num_nodes());
            let mut aucs = vec![];
            let mut aps = vec![];
            for s in 0..seeds {
                match method.train_embeddings(&train_ds, &ssl, &gc, s as u64) {
                    Some(emb) => {
                        let (auc, ap) = finetuned_eval(&emb, &split, s as u64);
                        aucs.push(auc * 100.0);
                        aps.push(ap * 100.0);
                    }
                    None => break,
                }
            }
            if aucs.is_empty() {
                cells.push(None);
                cells.push(None);
            } else {
                cells.push(Some(MeanStd::from_values(&aucs)));
                cells.push(Some(MeanStd::from_values(&aps)));
            }
        }
        table.push_row(method.name(), cells);
    }
    table
}

/// Table 6: node clustering NMI/ARI per dataset (SSL + clustering
/// specialists).
pub fn run_node_clustering(scale: Scale, seeds: usize) -> Table {
    let datasets = node_datasets(scale, DATA_SEED);
    let mut columns = vec![];
    for d in &datasets {
        columns.push(format!("{} NMI", d.name));
        columns.push(format!("{} ARI", d.name));
    }
    let mut table = Table::new("Table 6: node clustering (%)", columns);
    let methods: Vec<NodeMethod> = NodeMethod::STANDARD
        .into_iter()
        .filter(|m| *m != NodeMethod::SeeGera) // paper's Table 6 omits SeeGera
        .chain(NodeMethod::CLUSTERING)
        .collect();
    // move GCMAE last to match the paper's row order
    let mut methods: Vec<NodeMethod> = methods
        .iter()
        .copied()
        .filter(|m| *m != NodeMethod::Gcmae)
        .collect();
    methods.push(NodeMethod::Gcmae);
    for method in methods {
        let mut cells = vec![];
        for ds in &datasets {
            eprintln!("[table6] {} / {}", method.name(), ds.name);
            let ssl = ssl_config(scale, ds.num_nodes());
            let gc = gcmae_config(scale, ds.num_nodes());
            let mut nmis = vec![];
            let mut aris = vec![];
            for s in 0..seeds {
                match method.train_embeddings(ds, &ssl, &gc, s as u64) {
                    Some(emb) => {
                        let km = kmeans(&emb, ds.num_classes, 100, s as u64);
                        nmis.push(nmi(&km.assignments, &ds.labels) * 100.0);
                        aris.push(ari(&km.assignments, &ds.labels) * 100.0);
                    }
                    None => break,
                }
            }
            if nmis.is_empty() {
                cells.push(None);
                cells.push(None);
            } else {
                cells.push(Some(MeanStd::from_values(&nmis)));
                cells.push(Some(MeanStd::from_values(&aris)));
            }
        }
        table.push_row(method.name(), cells);
    }
    table
}

/// Table 7: graph classification accuracy.
pub fn run_graph_classification(scale: Scale, seeds: usize) -> Table {
    let collections = graph_collections(scale, DATA_SEED);
    let columns: Vec<String> = collections.iter().map(|c| c.name.clone()).collect();
    let mut table = Table::new("Table 7: graph classification accuracy (%)", columns);
    let batch = 32;
    for method in GraphMethod::ALL {
        let mut cells = vec![];
        for c in &collections {
            eprintln!("[table7] {} / {}", method.name(), c.name);
            let ssl = ssl_config(scale, (c.avg_nodes() as usize).max(1) * batch);
            let gc = gcmae_config(scale, (c.avg_nodes() as usize).max(1) * batch);
            let mut vals = vec![];
            for s in 0..seeds {
                match method.train_embeddings(c, &ssl, &gc, batch, s as u64) {
                    Some(emb) => {
                        let (acc, _) = cross_validate(
                            &emb,
                            &c.labels,
                            c.num_classes,
                            5,
                            &SvmConfig::default(),
                            s as u64,
                        );
                        vals.push(acc * 100.0);
                    }
                    None => break,
                }
            }
            cells.push(if vals.is_empty() {
                None
            } else {
                Some(MeanStd::from_values(&vals))
            });
        }
        table.push_row(method.name(), cells);
    }
    table
}

/// Table 8: encoder-sharing ablation on Cora/Citeseer/PubMed.
pub fn run_encoder_ablation(scale: Scale, seeds: usize) -> Table {
    let names = ["Cora", "Citeseer", "PubMed"];
    let mut table = Table::new(
        "Table 8: node classification accuracy per encoder design (%)",
        names.iter().map(|s| s.to_string()).collect(),
    );
    let datasets: Vec<Dataset> = names
        .iter()
        .map(|n| node_dataset(n, scale, DATA_SEED))
        .collect();
    for variant in EncoderVariant::ALL {
        let mut cells = vec![];
        for ds in &datasets {
            let split = classification_split(ds);
            let cfg = gcmae_config(scale, ds.num_nodes());
            let vals: Vec<f64> = (0..seeds)
                .map(|s| {
                    let emb = train_variant(ds, &cfg, variant, s as u64);
                    probe_accuracy(&emb, ds, &split, s as u64)
                })
                .collect();
            cells.push(Some(MeanStd::from_values(&vals)));
        }
        table.push_row(variant.label(), cells);
    }
    table
}

/// Table 9: end-to-end training time (pre-train + probe) in seconds.
pub fn run_training_time(scale: Scale) -> Table {
    let datasets = node_datasets(scale, DATA_SEED);
    let columns: Vec<String> = datasets.iter().map(|d| d.name.clone()).collect();
    let mut table = Table::new("Table 9: end-to-end training time (s)", columns);
    let methods = [
        NodeMethod::CcaSsg,
        NodeMethod::GraphMae,
        NodeMethod::MaskGae,
        NodeMethod::Gcmae,
    ];
    for method in methods {
        let mut cells = vec![];
        for ds in &datasets {
            let split = classification_split(ds);
            let mut ssl = ssl_config(scale, ds.num_nodes());
            let gc = gcmae_config(scale, ds.num_nodes());
            if method == NodeMethod::GraphMae {
                // the paper's GraphMAE uses a GAT encoder, the main source
                // of its slowness in Table 9
                ssl.encoder = EncoderKind::Gat { heads: 2 };
            }
            let start = Instant::now();
            let emb = method
                .train_embeddings(ds, &ssl, &gc, 0)
                .expect("timing methods run everywhere");
            let _ = probe_accuracy(&emb, ds, &split, 0);
            let secs = start.elapsed().as_secs_f64();
            cells.push(Some(MeanStd {
                mean: secs,
                std: 0.0,
            }));
        }
        table.push_row(method.name(), cells);
    }
    table
}

/// Table 10: loss-component ablation on Cora/Citeseer/PubMed.
pub fn run_component_ablation(scale: Scale, seeds: usize) -> Table {
    let names = ["Cora", "Citeseer", "PubMed"];
    let mut table = Table::new(
        "Table 10: node classification accuracy per component (%)",
        names.iter().map(|s| s.to_string()).collect(),
    );
    let datasets: Vec<Dataset> = names
        .iter()
        .map(|n| node_dataset(n, scale, DATA_SEED))
        .collect();
    type Variant = (&'static str, Box<dyn Fn(GcmaeConfig) -> GcmaeConfig>);
    let variants: Vec<Variant> = vec![
        ("GCMAE", Box::new(|c: GcmaeConfig| c)),
        (
            "w/o Con.",
            Box::new(|c: GcmaeConfig| c.without_contrastive()),
        ),
        (
            "w/o Stru. Rec.",
            Box::new(|c: GcmaeConfig| c.without_struct_recon()),
        ),
        (
            "w/o Disc.",
            Box::new(|c: GcmaeConfig| c.without_discrimination()),
        ),
        (
            "GraphMAE",
            Box::new(|c: GcmaeConfig| {
                c.without_contrastive()
                    .without_struct_recon()
                    .without_discrimination()
            }),
        ),
    ];
    for (label, make) in variants {
        let mut cells = vec![];
        for ds in &datasets {
            let split = classification_split(ds);
            let cfg = make(gcmae_config(scale, ds.num_nodes()));
            let vals: Vec<f64> = (0..seeds)
                .map(|s| {
                    let out = gcmae_core::TrainSession::new(&cfg)
                        .seed(s as u64)
                        .run(ds)
                        .expect("unguarded session cannot fail");
                    probe_accuracy(&out.embeddings, ds, &split, s as u64)
                })
                .collect();
            cells.push(Some(MeanStd::from_values(&vals)));
        }
        table.push_row(label, cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_deterministic_and_balanced() {
        let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
        let a = classification_split(&ds);
        let b = classification_split(&ds);
        assert_eq!(a.train, b.train);
        assert!(!a.train.is_empty() && !a.test.is_empty());
    }

    #[test]
    fn component_ablation_runs_at_smoke_scale() {
        let t = run_component_ablation(Scale::Smoke, 1);
        assert_eq!(t.rows.len(), 5);
        assert!(t
            .rows
            .iter()
            .all(|(_, cells)| cells.iter().all(Option::is_some)));
    }
}
