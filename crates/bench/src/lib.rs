// Indexed loops over parallel arrays are idiomatic in this numeric code.
#![allow(clippy::needless_range_loop)]

//! # gcmae-bench
//!
//! Experiment harness that regenerates every table and figure of the GCMAE
//! paper's evaluation (§5). Each `repro_*` binary prints the same rows or
//! series the paper reports and writes CSV under `target/repro/`.
//!
//! Run e.g. `cargo run --release -p gcmae-bench --bin repro_table4 --
//! --scale fast --seeds 2`. Criterion benches in `benches/` exercise the
//! same code paths at smoke scale with wall-clock measurement.

pub mod figures;
pub mod methods;
pub mod runners;
pub mod scale;
pub mod summary;
pub mod table;

pub use scale::Scale;
pub use table::{MeanStd, Table};

/// Prints a table, writes its CSV, and reports where it went.
pub fn emit(table: &table::Table, slug: &str) {
    println!("{}", table.render());
    match table.write_csv(slug) {
        Ok(p) => println!("[csv] {}", p.display()),
        Err(e) => eprintln!("[csv] failed to write {slug}: {e}"),
    }
}
