//! Experiment runners for the paper's figures.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use gcmae_baselines::cca_ssg;
use gcmae_core::TrainSession;
use gcmae_eval::metrics::clustering::nmi;
use gcmae_eval::{kmeans, pca, tsne, TsneConfig};
use gcmae_graph::sampling::sample_nodes;
use gcmae_graph::Dataset;
use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::runners::{classification_split, probe_accuracy, probe_f1, DATA_SEED};
use crate::scale::{gcmae_config, node_dataset, ssl_config, Scale};

/// One (x, y[, z]) series for a figure, dumped as CSV.
#[derive(Clone, Debug)]
pub struct Series {
    /// name.
    pub name: String,
    /// points.
    pub points: Vec<(f64, f64, f64)>,
}

/// Writes named series to `target/repro/<slug>.csv`.
pub fn write_series(slug: &str, series: &[Series]) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target/repro");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{slug}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "series,x,y,z")?;
    for s in series {
        for &(x, y, z) in &s.points {
            writeln!(f, "{},{x},{y},{z}", s.name)?;
        }
    }
    Ok(path)
}

/// One Figure 1 result: `(method, NMI, 2-D coordinates with class labels)`.
pub type Figure1Entry = (String, f64, Vec<(f32, f32, usize)>);

/// Figure 1: clustering quality of GCMAE vs GraphMAE vs CCA-SSG on Cora.
/// Returns one [`Figure1Entry`] per method; the coordinates substitute the
/// paper's t-SNE scatter (DESIGN.md).
pub fn run_figure1(scale: Scale, seed: u64) -> Vec<Figure1Entry> {
    let ds = node_dataset("Cora", scale, DATA_SEED);
    let gc = gcmae_config(scale, ds.num_nodes());
    let ssl = ssl_config(scale, ds.num_nodes());
    let mae_cfg = gc
        .clone()
        .without_contrastive()
        .without_struct_recon()
        .without_discrimination();
    let train = |cfg: &gcmae_core::GcmaeConfig| {
        TrainSession::new(cfg)
            .seed(seed)
            .run(&ds)
            .expect("unguarded session cannot fail")
    };
    let runs: Vec<(String, Matrix)> = vec![
        ("GCMAE".into(), train(&gc).embeddings),
        ("GraphMAE".into(), train(&mae_cfg).embeddings),
        ("CCA-SSG".into(), cca_ssg::train(&ds, &ssl, seed)),
    ];
    runs.into_iter()
        .map(|(name, emb)| {
            let km = kmeans(&emb, ds.num_classes, 100, seed);
            let score = nmi(&km.assignments, &ds.labels);
            // t-SNE on PCA-reduced embeddings (standard pipeline); exact
            // t-SNE is O(n²) so cap the point count at fast scale
            let coords = if ds.num_nodes() <= 1200 {
                let reduced = pca(&emb, 2.max(emb.cols().min(16)), seed);
                tsne(&reduced, &TsneConfig::default(), seed)
            } else {
                pca(&emb, 2, seed)
            };
            let pts: Vec<(f32, f32, usize)> = (0..ds.num_nodes())
                .map(|v| (coords[(v, 0)], coords[(v, 1)], ds.labels[v]))
                .collect();
            (name, score, pts)
        })
        .collect()
}

/// Mean cosine similarity between sampled anchor nodes and their 5-hop
/// rings.
pub fn five_hop_similarity(ds: &Dataset, emb: &Matrix, anchors: &[usize]) -> f64 {
    let mut total = 0.0f64;
    let mut count = 0usize;
    for &a in anchors {
        let ring = ds.graph.k_hop_ring(a, 5);
        if ring.is_empty() {
            continue;
        }
        let na = norm(emb.row(a));
        for &b in ring.iter().take(16) {
            let nb = norm(emb.row(b));
            if na > 1e-8 && nb > 1e-8 {
                total += (dot(emb.row(a), emb.row(b)) / (na * nb)) as f64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Figure 4: 5-hop similarity vs training epoch, GCMAE vs GraphMAE, on the
/// given dataset. Returns one series per method.
pub fn run_figure4(name: &str, scale: Scale, seed: u64, stride: usize) -> Vec<Series> {
    let ds = node_dataset(name, scale, DATA_SEED);
    let mut anchor_rng = StdRng::seed_from_u64(1234);
    let anchors = sample_nodes(ds.num_nodes(), 32.min(ds.num_nodes()), &mut anchor_rng);
    let gc = gcmae_config(scale, ds.num_nodes());
    let mae_cfg = gc
        .clone()
        .without_contrastive()
        .without_struct_recon()
        .without_discrimination();
    let mut out = vec![];
    for (label, cfg) in [("GCMAE", gc), ("GraphMAE", mae_cfg)] {
        let mut points = vec![];
        let _ = TrainSession::new(&cfg)
            .seed(seed)
            .on_epoch(|epoch, view| {
                if epoch % stride == 0 {
                    let emb = view.model.encode_dataset(&ds);
                    points.push((epoch as f64, five_hop_similarity(&ds, &emb, &anchors), 0.0));
                }
            })
            .run(&ds)
            .expect("unguarded session cannot fail");
        out.push(Series {
            name: format!("{label}/{name}"),
            points,
        });
    }
    out
}

/// Figure 5: accuracy surface over `p_mask` × `p_drop` for one dataset.
/// Returns one series with `(p_mask, p_drop, F1)` points.
pub fn run_figure5(name: &str, scale: Scale, seed: u64, grid: &[f32]) -> Series {
    let ds = node_dataset(name, scale, DATA_SEED);
    let split = classification_split(&ds);
    let base = gcmae_config(scale, ds.num_nodes());
    let mut points = vec![];
    for &pm in grid {
        for &pd in grid {
            let cfg = gcmae_core::GcmaeConfig {
                p_mask: pm,
                p_drop: pd,
                ..base.clone()
            };
            let out = TrainSession::new(&cfg)
                .seed(seed)
                .run(&ds)
                .expect("unguarded session cannot fail");
            let f1 = probe_f1(&out.embeddings, &ds, &split, seed);
            points.push((pm as f64, pd as f64, f1));
        }
    }
    Series {
        name: name.to_string(),
        points,
    }
}

/// Figure 6: accuracy vs hidden width and vs depth for one dataset.
/// Returns two series: `(width, acc, _)` and `(depth, acc, _)`.
pub fn run_figure6(
    name: &str,
    scale: Scale,
    seed: u64,
    widths: &[usize],
    depths: &[usize],
) -> (Series, Series) {
    let ds = node_dataset(name, scale, DATA_SEED);
    let split = classification_split(&ds);
    let base = gcmae_config(scale, ds.num_nodes());
    let width_pts: Vec<(f64, f64, f64)> = widths
        .iter()
        .map(|&w| {
            let cfg = gcmae_core::GcmaeConfig {
                hidden_dim: w,
                proj_dim: (w / 4).max(8),
                ..base.clone()
            };
            let out = TrainSession::new(&cfg)
                .seed(seed)
                .run(&ds)
                .expect("unguarded session cannot fail");
            (
                w as f64,
                probe_accuracy(&out.embeddings, &ds, &split, seed),
                0.0,
            )
        })
        .collect();
    let depth_pts: Vec<(f64, f64, f64)> = depths
        .iter()
        .map(|&l| {
            let cfg = gcmae_core::GcmaeConfig {
                layers: l,
                ..base.clone()
            };
            let out = TrainSession::new(&cfg)
                .seed(seed)
                .run(&ds)
                .expect("unguarded session cannot fail");
            (
                l as f64,
                probe_accuracy(&out.embeddings, &ds, &split, seed),
                0.0,
            )
        })
        .collect();
    (
        Series {
            name: format!("{name}/width"),
            points: width_pts,
        },
        Series {
            name: format!("{name}/depth"),
            points: depth_pts,
        },
    )
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_hop_similarity_is_bounded() {
        let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
        let mut rng = StdRng::seed_from_u64(1);
        let emb = Matrix::uniform(ds.num_nodes(), 8, -1.0, 1.0, &mut rng);
        let anchors: Vec<usize> = (0..20).collect();
        let s = five_hop_similarity(&ds, &emb, &anchors);
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn figure4_produces_two_series() {
        let series = run_figure4("Cora", Scale::Smoke, 1, 5);
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|s| !s.points.is_empty()));
    }

    #[test]
    fn write_series_creates_csv() {
        let s = Series {
            name: "t".into(),
            points: vec![(1.0, 2.0, 0.0)],
        };
        let p = write_series("test_series", &[s]).unwrap();
        let content = std::fs::read_to_string(p).unwrap();
        assert!(content.contains("t,1,2,0"));
    }
}
