//! Method registries: every row of Tables 4–7 maps to one variant here.

use gcmae_baselines::{clustering, graph_level, SslConfig};
use gcmae_core::GcmaeConfig;
use gcmae_graph::{Dataset, GraphCollection};
use gcmae_tensor::Matrix;

/// Node-level self-supervised methods (rows of Tables 4–6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeMethod {
    /// Dgi.
    Dgi,
    /// Mvgrl.
    Mvgrl,
    /// Grace.
    Grace,
    /// Cca Ssg.
    CcaSsg,
    /// Graph Mae.
    GraphMae,
    /// See Gera.
    SeeGera,
    /// S2gae.
    S2gae,
    /// Mask Gae.
    MaskGae,
    /// Gcmae.
    Gcmae,
    // clustering-only specialists (Table 6)
    /// Gc Vge.
    GcVge,
    /// Scgc.
    Scgc,
    /// Gcc.
    Gcc,
}

impl NodeMethod {
    /// The SSL methods compared on all node-level tasks, in the paper's
    /// row order.
    pub const STANDARD: [NodeMethod; 9] = [
        Self::Dgi,
        Self::Mvgrl,
        Self::Grace,
        Self::CcaSsg,
        Self::GraphMae,
        Self::SeeGera,
        Self::S2gae,
        Self::MaskGae,
        Self::Gcmae,
    ];

    /// The deep-clustering specialists added in Table 6.
    pub const CLUSTERING: [NodeMethod; 3] = [Self::GcVge, Self::Scgc, Self::Gcc];

    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            Self::Dgi => "DGI",
            Self::Mvgrl => "MVGRL",
            Self::Grace => "GRACE",
            Self::CcaSsg => "CCA-SSG",
            Self::GraphMae => "GraphMAE",
            Self::SeeGera => "SeeGera",
            Self::S2gae => "S2GAE",
            Self::MaskGae => "MaskGAE",
            Self::Gcmae => "GCMAE",
            Self::GcVge => "GC-VGE",
            Self::Scgc => "SCGC",
            Self::Gcc => "GCC",
        }
    }

    /// Category label as grouped in the paper's tables.
    pub fn category(self) -> &'static str {
        match self {
            Self::Dgi | Self::Mvgrl | Self::Grace | Self::CcaSsg => "Contrastive",
            Self::GraphMae | Self::SeeGera | Self::S2gae | Self::MaskGae => "MAE",
            Self::Gcmae => "ConMAE",
            Self::GcVge | Self::Scgc | Self::Gcc => "Clustering",
        }
    }

    /// Trains the method and returns frozen node embeddings, or `None` when
    /// the method is marked OOM/NA on this dataset in the paper (MVGRL on
    /// Reddit-scale graphs; SCGC on large graphs).
    pub fn train_embeddings(
        self,
        ds: &Dataset,
        ssl: &SslConfig,
        gcmae: &GcmaeConfig,
        seed: u64,
    ) -> Option<Matrix> {
        let n = ds.num_nodes();
        match self {
            Self::Dgi => Some(gcmae_baselines::dgi::train(ds, ssl, seed)),
            Self::Mvgrl => {
                if n > 12_000 {
                    None // paper: OOM on Reddit
                } else {
                    Some(gcmae_baselines::mvgrl::train(ds, ssl, seed))
                }
            }
            Self::Grace => Some(gcmae_baselines::grace::train(ds, ssl, seed)),
            Self::CcaSsg => Some(gcmae_baselines::cca_ssg::train(ds, ssl, seed)),
            Self::GraphMae => Some(gcmae_baselines::graphmae::train(ds, ssl, seed)),
            Self::SeeGera => Some(gcmae_baselines::seegera::train(ds, ssl, seed)),
            Self::S2gae => Some(gcmae_baselines::s2gae::train(ds, ssl, seed)),
            Self::MaskGae => Some(gcmae_baselines::maskgae::train(ds, ssl, seed)),
            Self::Gcmae => Some(
                gcmae_core::TrainSession::new(gcmae)
                    .seed(seed)
                    .run(ds)
                    .expect("unguarded session cannot fail")
                    .embeddings,
            ),
            Self::GcVge => Some(clustering::gc_vge::train(ds, ssl, seed)),
            Self::Scgc => {
                if n > 25_000 {
                    None // paper: NA on Reddit / PubMed rows
                } else {
                    Some(clustering::scgc::train(ds, ssl, seed))
                }
            }
            Self::Gcc => {
                Some(clustering::gcc::train(ds, ds.num_classes, ssl.hidden_dim, 2, seed).embeddings)
            }
        }
    }
}

/// Graph-level methods (rows of Table 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphMethod {
    /// Infograph.
    Infograph,
    /// Graph Cl.
    GraphCl,
    /// Joao.
    Joao,
    /// Mvgrl.
    Mvgrl,
    /// Info Gcl.
    InfoGcl,
    /// Graph Mae.
    GraphMae,
    /// S2gae.
    S2gae,
    /// Gcmae.
    Gcmae,
}

impl GraphMethod {
    /// Table 7 row order.
    pub const ALL: [GraphMethod; 8] = [
        Self::Infograph,
        Self::GraphCl,
        Self::Joao,
        Self::Mvgrl,
        Self::InfoGcl,
        Self::GraphMae,
        Self::S2gae,
        Self::Gcmae,
    ];

    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            Self::Infograph => "Infograph",
            Self::GraphCl => "GraphCL",
            Self::Joao => "JOAO",
            Self::Mvgrl => "MVGRL",
            Self::InfoGcl => "InfoGCL",
            Self::GraphMae => "GraphMAE",
            Self::S2gae => "S2GAE",
            Self::Gcmae => "GCMAE",
        }
    }

    /// Category as grouped in Table 7.
    pub fn category(self) -> &'static str {
        match self {
            Self::Infograph | Self::GraphCl | Self::Joao | Self::Mvgrl | Self::InfoGcl => {
                "Contrastive"
            }
            Self::GraphMae | Self::S2gae => "MAE",
            Self::Gcmae => "ConMAE",
        }
    }

    /// Trains and returns one embedding per graph, or `None` for the
    /// paper's OOM entries (MVGRL on COLLAB/NCI1, InfoGCL on REDDIT-B).
    pub fn train_embeddings(
        self,
        c: &GraphCollection,
        ssl: &SslConfig,
        gcmae: &GcmaeConfig,
        batch: usize,
        seed: u64,
    ) -> Option<Matrix> {
        let oom = |names: &[&str]| names.contains(&c.name.as_str());
        match self {
            Self::Infograph => Some(graph_level::infograph::train(c, ssl, batch, seed)),
            Self::GraphCl => Some(graph_level::graphcl::train(c, ssl, batch, seed)),
            Self::Joao => Some(graph_level::joao::train(c, ssl, batch, seed)),
            Self::Mvgrl => {
                if oom(&["COLLAB", "NCI1"]) {
                    None
                } else {
                    Some(graph_level::mvgrl_g::train(c, ssl, batch, seed))
                }
            }
            Self::InfoGcl => {
                if oom(&["REDDIT-B"]) {
                    None
                } else {
                    Some(graph_level::infogcl::train(c, ssl, batch, seed))
                }
            }
            Self::GraphMae => {
                // MAE-only GCMAE degenerates to GraphMAE (§ Table 8)
                let cfg = gcmae
                    .clone()
                    .without_contrastive()
                    .without_struct_recon()
                    .without_discrimination();
                Some(gcmae_core::train_graph_level(c, &cfg, batch, seed))
            }
            Self::S2gae => Some(graph_level::s2gae_g::train(c, ssl, batch, seed)),
            Self::Gcmae => Some(gcmae_core::train_graph_level(c, gcmae, batch, seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_orders_match_paper() {
        let names: Vec<&str> = NodeMethod::STANDARD.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            [
                "DGI", "MVGRL", "GRACE", "CCA-SSG", "GraphMAE", "SeeGera", "S2GAE", "MaskGAE",
                "GCMAE"
            ]
        );
        assert_eq!(GraphMethod::ALL.len(), 8);
    }

    #[test]
    fn categories_are_consistent() {
        assert_eq!(NodeMethod::Gcmae.category(), "ConMAE");
        assert_eq!(NodeMethod::Dgi.category(), "Contrastive");
        assert_eq!(NodeMethod::MaskGae.category(), "MAE");
        assert_eq!(GraphMethod::GraphMae.category(), "MAE");
    }
}
