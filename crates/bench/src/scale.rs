//! Experiment scale presets.
//!
//! The paper's testbed is a GPU; this reproduction runs on CPU, so every
//! `repro_*` binary takes a `--scale` flag:
//!
//! * `smoke` — seconds; used by tests and Criterion benches,
//! * `fast`  — minutes; the default, preserves method *ranking*,
//! * `paper` — paper-sized graphs (Reddit scaled per DESIGN.md), hours.

use gcmae_baselines::SslConfig;
use gcmae_core::GcmaeConfig;
use gcmae_graph::generators::citation::{self, CitationSpec};
use gcmae_graph::generators::collection::{self, CollectionSpec};
use gcmae_graph::{Dataset, GraphCollection};

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Smoke.
    Smoke,
    /// Fast.
    Fast,
    /// Paper.
    Paper,
}

impl Scale {
    /// Parses `--scale <v>` and `--seeds <n>` from CLI args; defaults to
    /// `fast` with the scale's default seed count.
    pub fn from_args() -> (Scale, usize) {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = Scale::Fast;
        let mut seeds = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    scale = match it.next().map(String::as_str) {
                        Some("smoke") => Scale::Smoke,
                        Some("fast") | None => Scale::Fast,
                        Some("paper") => Scale::Paper,
                        Some(other) => panic!("unknown scale {other}"),
                    }
                }
                "--seeds" => {
                    seeds = it.next().and_then(|s| s.parse().ok());
                }
                _ => {}
            }
        }
        let seeds = seeds.unwrap_or(match scale {
            Scale::Smoke => 1,
            Scale::Fast => 2,
            Scale::Paper => 5,
        });
        (scale, seeds)
    }

    /// Graph-size factor per dataset family.
    fn citation_factor(self, spec: &CitationSpec) -> f64 {
        let base = match self {
            Scale::Smoke => 0.04,
            Scale::Fast => 0.25,
            Scale::Paper => 1.0,
        };
        // Reddit is 100× Cora: always subsample it (DESIGN.md substitution)
        match (spec.name, self) {
            ("Reddit", Scale::Smoke) => 0.002,
            ("Reddit", Scale::Fast) => 0.005,
            ("Reddit", Scale::Paper) => 0.05,
            ("PubMed", Scale::Smoke) => 0.01,
            ("PubMed", Scale::Fast) => 0.04,
            _ => base,
        }
    }

    /// Number of pre-training epochs.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Fast => 100,
            Scale::Paper => 300,
        }
    }

    /// Encoder hidden width.
    pub fn hidden_dim(self) -> usize {
        match self {
            Scale::Smoke => 32,
            Scale::Fast => 64,
            Scale::Paper => 256,
        }
    }
}

/// The four node-level datasets (Table 2), generated at this scale.
pub fn node_datasets(scale: Scale, seed: u64) -> Vec<Dataset> {
    [
        CitationSpec::cora(),
        CitationSpec::citeseer(),
        CitationSpec::pubmed(),
        CitationSpec::reddit(),
    ]
    .into_iter()
    .map(|spec| {
        let f = scale.citation_factor(&spec);
        citation::generate(&spec.scaled(f), seed)
    })
    .collect()
}

/// A single node-level dataset by name.
pub fn node_dataset(name: &str, scale: Scale, seed: u64) -> Dataset {
    let spec = match name {
        "Cora" => CitationSpec::cora(),
        "Citeseer" => CitationSpec::citeseer(),
        "PubMed" => CitationSpec::pubmed(),
        "Reddit" => CitationSpec::reddit(),
        other => panic!("unknown dataset {other}"),
    };
    let f = scale.citation_factor(&spec);
    citation::generate(&spec.scaled(f), seed)
}

/// The six graph-level collections (Table 3), generated at this scale.
pub fn graph_collections(scale: Scale, seed: u64) -> Vec<GraphCollection> {
    let f = match scale {
        Scale::Smoke => 0.04,
        Scale::Fast => 0.12,
        Scale::Paper => 0.5,
    };
    [
        CollectionSpec::imdb_b(),
        CollectionSpec::imdb_m(),
        CollectionSpec::collab(),
        CollectionSpec::mutag(),
        CollectionSpec::reddit_b(),
        CollectionSpec::nci1(),
    ]
    .into_iter()
    .map(|spec| collection::generate(&spec.scaled(f), seed))
    .collect()
}

/// Baseline SSL configuration at this scale.
pub fn ssl_config(scale: Scale, num_nodes: usize) -> SslConfig {
    SslConfig {
        hidden_dim: scale.hidden_dim(),
        proj_dim: scale.hidden_dim() / 2,
        epochs: scale.epochs(),
        contrast_sample: contrast_sample(num_nodes),
        ..SslConfig::default()
    }
}

/// GCMAE configuration at this scale, adapted to the graph size
/// (subgraph-sampled training on large graphs, §4.4).
pub fn gcmae_config(scale: Scale, num_nodes: usize) -> GcmaeConfig {
    let batched = num_nodes > 6000;
    GcmaeConfig {
        // GraphSAGE enables subgraph mini-batching on large graphs (§5.4);
        // on full-graph datasets GCN matches the baselines' encoder
        encoder: if batched {
            gcmae_core::EncoderChoice::Sage
        } else {
            gcmae_core::EncoderChoice::Gcn
        },
        hidden_dim: scale.hidden_dim(),
        proj_dim: scale.hidden_dim() / 2,
        epochs: scale.epochs(),
        batch_nodes: if batched { 2048 } else { 0 },
        ..GcmaeConfig::default()
    }
    .with_objective(
        gcmae_core::Objective::paper()
            .with_weights(0.3, 0.1, 0.2)
            // §4.4: adjacency reconstruction on sampled subgraphs; the
            // sample size is the main cost knob because the decoder output
            // has the input feature dimensionality
            .with_dense_caps(
                contrast_sample(num_nodes),
                match scale {
                    Scale::Smoke => 64,
                    Scale::Fast => 192,
                    Scale::Paper => 512,
                }
                .min(num_nodes),
            ),
    )
}

fn contrast_sample(num_nodes: usize) -> usize {
    if num_nodes <= 1024 {
        0 // all nodes
    } else {
        1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_datasets_are_small() {
        let ds = node_datasets(Scale::Smoke, 1);
        assert_eq!(ds.len(), 4);
        assert!(ds.iter().all(|d| d.num_nodes() < 1500), "sizes: {:?}",
            ds.iter().map(|d| d.num_nodes()).collect::<Vec<_>>());
        let names: Vec<&str> = ds.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["Cora", "Citeseer", "PubMed", "Reddit"]);
    }

    #[test]
    fn configs_adapt_to_graph_size() {
        use gcmae_core::{LossTerm, Negatives};
        let contrast_cap = |c: &GcmaeConfig| {
            c.objective()
                .terms
                .iter()
                .find_map(|t| match t {
                    LossTerm::InfoNce {
                        negatives: Negatives::Dense { sample },
                        ..
                    } => Some(*sample),
                    _ => None,
                })
                .expect("bench configs keep a dense InfoNCE term")
        };
        let small = gcmae_config(Scale::Fast, 500);
        assert_eq!(small.batch_nodes, 0);
        assert_eq!(contrast_cap(&small), 0);
        let big = gcmae_config(Scale::Fast, 20_000);
        assert_eq!(big.batch_nodes, 2048);
        assert_eq!(contrast_cap(&big), 1024);
    }

    #[test]
    fn collections_cover_table3() {
        let cs = graph_collections(Scale::Smoke, 1);
        assert_eq!(cs.len(), 6);
        assert_eq!(cs[3].name, "MUTAG");
    }
}
