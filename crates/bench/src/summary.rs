//! Table 1 aggregation: GCMAE's relative improvement over the best baseline
//! of each category.

use crate::table::Table;

/// Relative improvement (%) of `our_row` over the best row among `members`,
/// averaged over the columns where both sides have values. `None` when no
/// comparison is possible.
pub fn improvement_over(table: &Table, our_row: &str, members: &[&str]) -> Option<f64> {
    let ours = table.rows.iter().find(|(m, _)| m == our_row)?;
    let mut rel = vec![];
    for c in 0..table.columns.len() {
        let Some(our_cell) = ours.1[c] else { continue };
        let best = table
            .rows
            .iter()
            .filter(|(m, _)| members.contains(&m.as_str()))
            .filter_map(|(_, cells)| cells[c].map(|v| v.mean))
            .fold(f64::NEG_INFINITY, f64::max);
        if best.is_finite() && best > 0.0 {
            rel.push((our_cell.mean - best) / best * 100.0);
        }
    }
    if rel.is_empty() {
        None
    } else {
        Some(rel.iter().sum::<f64>() / rel.len() as f64)
    }
}

/// Category membership used by Table 1.
pub mod categories {
    /// Node-level contrastive methods.
    pub const CONTRASTIVE: [&str; 4] = ["DGI", "MVGRL", "GRACE", "CCA-SSG"];
    /// Node-level MAE methods.
    pub const MAE: [&str; 4] = ["GraphMAE", "SeeGera", "S2GAE", "MaskGAE"];
    /// Supervised classifiers (Table 4's "Others").
    pub const SUPERVISED: [&str; 2] = ["GCN", "GAT"];
    /// Deep clustering specialists (Table 6's "Others").
    pub const CLUSTERING: [&str; 3] = ["GC-VGE", "SCGC", "GCC"];
    /// Graph-level contrastive methods.
    pub const GRAPH_CONTRASTIVE: [&str; 5] =
        ["Infograph", "GraphCL", "JOAO", "MVGRL", "InfoGCL"];
    /// Graph-level MAE methods.
    pub const GRAPH_MAE: [&str; 2] = ["GraphMAE", "S2GAE"];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{MeanStd, Table};

    fn table() -> Table {
        let mut t = Table::new("t", vec!["A".into(), "B".into()]);
        let cell = |m: f64| Some(MeanStd { mean: m, std: 0.0 });
        t.push_row("base1", vec![cell(80.0), cell(60.0)]);
        t.push_row("base2", vec![cell(85.0), None]);
        t.push_row("GCMAE", vec![cell(90.0), cell(66.0)]);
        t
    }

    #[test]
    fn improvement_uses_best_baseline_per_column() {
        let t = table();
        // column A best = 85 → +5.88%; column B best = 60 → +10%
        let imp = improvement_over(&t, "GCMAE", &["base1", "base2"]).unwrap();
        assert!((imp - (5.882_352_94 + 10.0) / 2.0).abs() < 1e-6, "imp = {imp}");
    }

    #[test]
    fn missing_rows_give_none() {
        let t = table();
        assert!(improvement_over(&t, "nope", &["base1"]).is_none());
        assert!(improvement_over(&t, "GCMAE", &["nope"]).is_none());
    }

    #[test]
    fn oom_cells_are_skipped() {
        let t = table();
        // base2 has no B value: comparison against base2 alone only uses A
        let imp = improvement_over(&t, "GCMAE", &["base2"]).unwrap();
        assert!((imp - 5.882_352_94).abs() < 1e-6);
    }
}
