//! Criterion bench for the Table 5 pipeline: edge split + pre-train +
//! fine-tuned link scoring, GCMAE vs MaskGAE (the strongest MAE baseline).

use criterion::{criterion_group, criterion_main, Criterion};
use gcmae_bench::runners::DATA_SEED;
use gcmae_bench::scale::{gcmae_config, node_dataset, ssl_config, Scale};
use gcmae_eval::finetuned_eval;
use gcmae_graph::splits::link_split;
use gcmae_graph::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
    let mut rng = StdRng::seed_from_u64(7);
    let split = link_split(&ds.graph, 0.05, 0.10, &mut rng);
    let train_ds = Dataset {
        graph: split.train_graph.clone(),
        ..ds.clone()
    };
    let gc = gcmae_config(Scale::Smoke, ds.num_nodes());
    let ssl = ssl_config(Scale::Smoke, ds.num_nodes());

    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    g.bench_function("gcmae_link_prediction", |b| {
        b.iter(|| {
            let out = gcmae_core::TrainSession::new(&gc)
                .seed(0)
                .run(&train_ds)
                .expect("train");
            std::hint::black_box(finetuned_eval(&out.embeddings, &split, 0))
        })
    });
    g.bench_function("maskgae_link_prediction", |b| {
        b.iter(|| {
            let emb = gcmae_baselines::maskgae::train(&train_ds, &ssl, 0);
            std::hint::black_box(finetuned_eval(&emb, &split, 0))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
