//! Substrate ablation benches (DESIGN.md): dense matmul (serial vs
//! parallel), CSR spmm, the individual GCMAE loss kernels, and full-graph vs
//! subgraph-sampled training steps (§4.4's mitigation).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use gcmae_bench::runners::DATA_SEED;
use gcmae_bench::scale::{gcmae_config, node_dataset, Scale};
use gcmae_core::GcmaeConfig;
use gcmae_tensor::ops::{adj_recon, infonce, sce, variance};
use gcmae_tensor::parallel::set_num_threads;
use gcmae_tensor::{dense, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Matrix::uniform(512, 256, -1.0, 1.0, &mut rng);
    let b = Matrix::uniform(256, 256, -1.0, 1.0, &mut rng);

    let mut g = c.benchmark_group("substrate_matmul");
    g.bench_function("matmul_512x256x256_parallel", |bch| {
        set_num_threads(0);
        bch.iter(|| std::hint::black_box(dense::matmul(&a, &b)))
    });
    g.bench_function("matmul_512x256x256_serial", |bch| {
        set_num_threads(1);
        bch.iter(|| std::hint::black_box(dense::matmul(&a, &b)));
        set_num_threads(0);
    });
    g.finish();

    let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
    let norm = ds.graph.gcn_norm();
    let x = Matrix::uniform(ds.num_nodes(), 64, -1.0, 1.0, &mut rng);
    let mut g = c.benchmark_group("substrate_spmm");
    g.bench_function("gcn_norm_spmm", |bch| {
        bch.iter(|| std::hint::black_box(norm.matmul_dense(&x)))
    });
    g.finish();
}

fn bench_losses(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 256;
    let d = 64;
    let z = Matrix::uniform(n, d, -1.0, 1.0, &mut rng);
    let target = Arc::new(Matrix::uniform(n, d, 0.0, 1.0, &mut rng));
    let rows: Vec<usize> = (0..n / 2).collect();
    let u = Matrix::uniform(n, d, -1.0, 1.0, &mut rng);
    let v = Matrix::uniform(n, d, -1.0, 1.0, &mut rng);
    let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
    let sub: Vec<usize> = (0..n.min(ds.num_nodes())).collect();
    let adj = ds.graph.induced_subgraph(&sub).adjacency();
    let zs = Matrix::uniform(sub.len(), d, -1.0, 1.0, &mut rng);

    let mut g = c.benchmark_group("substrate_losses");
    g.bench_function("sce_forward_backward", |b| {
        b.iter(|| {
            let (_, saved) = sce::forward(&z, target.clone(), rows.clone(), 2.0);
            std::hint::black_box(sce::backward(&saved, &z, 1.0))
        })
    });
    g.bench_function("infonce_forward_backward", |b| {
        b.iter(|| {
            let (_, saved) = infonce::forward(&u, &v, 0.5);
            std::hint::black_box(infonce::backward(&saved, 1.0))
        })
    });
    g.bench_function("adj_recon_forward_backward", |b| {
        b.iter(|| {
            let (_, _, saved) = adj_recon::forward(&zs, adj.clone(), Default::default());
            std::hint::black_box(adj_recon::backward(&saved, &zs, 1.0))
        })
    });
    g.bench_function("variance_forward_backward", |b| {
        b.iter(|| {
            let (_, saved) = variance::forward(&z, 1e-4);
            std::hint::black_box(variance::backward(&saved, &z, 1.0))
        })
    });
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let ds = node_dataset("PubMed", Scale::Smoke, DATA_SEED);
    let full = gcmae_config(Scale::Smoke, ds.num_nodes());
    let full = GcmaeConfig {
        epochs: 2,
        batch_nodes: 0,
        ..full
    };
    let batched = GcmaeConfig {
        batch_nodes: 96,
        ..full.clone()
    };
    let mut g = c.benchmark_group("substrate_sampling");
    g.sample_size(10);
    g.bench_function("full_graph_2_epochs", |b| {
        b.iter(|| {
            std::hint::black_box(
                gcmae_core::TrainSession::new(&full)
                    .seed(0)
                    .run(&ds)
                    .expect("train"),
            )
        })
    });
    g.bench_function("subgraph_batched_2_epochs", |b| {
        b.iter(|| {
            std::hint::black_box(
                gcmae_core::TrainSession::new(&batched)
                    .seed(0)
                    .run(&ds)
                    .expect("train"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_losses, bench_sampling);
criterion_main!(benches);
