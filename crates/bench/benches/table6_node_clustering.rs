//! Criterion bench for the Table 6 pipeline: pre-train + k-means + NMI/ARI.

use criterion::{criterion_group, criterion_main, Criterion};
use gcmae_bench::runners::DATA_SEED;
use gcmae_bench::scale::{gcmae_config, node_dataset, ssl_config, Scale};
use gcmae_eval::kmeans;
use gcmae_eval::metrics::clustering::{ari, nmi};

fn bench(c: &mut Criterion) {
    let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
    let gc = gcmae_config(Scale::Smoke, ds.num_nodes());
    let ssl = ssl_config(Scale::Smoke, ds.num_nodes());
    // embeddings computed once: the clustering stage is what Table 6 adds
    let emb = gcmae_core::TrainSession::new(&gc)
        .seed(0)
        .run(&ds)
        .expect("train")
        .embeddings;

    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    g.bench_function("kmeans_nmi_ari", |b| {
        b.iter(|| {
            let km = kmeans(&emb, ds.num_classes, 100, 0);
            std::hint::black_box((
                nmi(&km.assignments, &ds.labels),
                ari(&km.assignments, &ds.labels),
            ))
        })
    });
    g.bench_function("gcc_specialist_end_to_end", |b| {
        b.iter(|| {
            std::hint::black_box(gcmae_baselines::clustering::gcc::train(
                &ds,
                ds.num_classes,
                ssl.hidden_dim,
                2,
                0,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
