//! Criterion bench for the Table 8 ablation: one pre-training run per
//! encoder design (MAE-only / contrastive-only / fusion / shared).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcmae_bench::runners::DATA_SEED;
use gcmae_bench::scale::{gcmae_config, node_dataset, Scale};
use gcmae_core::{train_variant, EncoderVariant};

fn bench(c: &mut Criterion) {
    let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
    let cfg = gcmae_config(Scale::Smoke, ds.num_nodes());
    let mut g = c.benchmark_group("table8");
    g.sample_size(10);
    for variant in EncoderVariant::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(variant.label()), &variant, |b, &v| {
            b.iter(|| std::hint::black_box(train_variant(&ds, &cfg, v, 0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
