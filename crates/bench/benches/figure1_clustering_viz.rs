//! Criterion bench for the Figure 1 pipeline: k-means + NMI + 2-D PCA
//! projection of frozen embeddings.

use criterion::{criterion_group, criterion_main, Criterion};
use gcmae_bench::runners::DATA_SEED;
use gcmae_bench::scale::{gcmae_config, node_dataset, Scale};
use gcmae_eval::metrics::clustering::nmi;
use gcmae_eval::{kmeans, pca};

fn bench(c: &mut Criterion) {
    let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
    let cfg = gcmae_config(Scale::Smoke, ds.num_nodes());
    let emb = gcmae_core::TrainSession::new(&cfg)
        .seed(0)
        .run(&ds)
        .expect("train")
        .embeddings;

    let mut g = c.benchmark_group("figure1");
    g.sample_size(10);
    g.bench_function("kmeans_nmi", |b| {
        b.iter(|| {
            let km = kmeans(&emb, ds.num_classes, 100, 0);
            std::hint::black_box(nmi(&km.assignments, &ds.labels))
        })
    });
    g.bench_function("pca_2d_projection", |b| {
        b.iter(|| std::hint::black_box(pca(&emb, 2, 0)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
