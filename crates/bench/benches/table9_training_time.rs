//! Criterion bench mirroring Table 9: end-to-end pre-training wall time of
//! the four methods the paper times (CCA-SSG, GraphMAE, MaskGAE, GCMAE) on
//! the same smoke-scale Cora, so the *ratios* can be compared with the
//! paper's (CCA-SSG fastest; GraphMAE slowest due to its GAT encoder;
//! GCMAE ≈ MaskGAE).

use criterion::{criterion_group, criterion_main, Criterion};
use gcmae_bench::runners::DATA_SEED;
use gcmae_bench::scale::{gcmae_config, node_dataset, ssl_config, Scale};
use gcmae_nn::EncoderKind;

fn bench(c: &mut Criterion) {
    let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
    let gc = gcmae_config(Scale::Smoke, ds.num_nodes());
    let ssl = ssl_config(Scale::Smoke, ds.num_nodes());
    let mut gat_ssl = ssl.clone();
    gat_ssl.encoder = EncoderKind::Gat { heads: 2 };

    let mut g = c.benchmark_group("table9");
    g.sample_size(10);
    g.bench_function("cca_ssg", |b| {
        b.iter(|| std::hint::black_box(gcmae_baselines::cca_ssg::train(&ds, &ssl, 0)))
    });
    g.bench_function("graphmae_gat", |b| {
        b.iter(|| std::hint::black_box(gcmae_baselines::graphmae::train(&ds, &gat_ssl, 0)))
    });
    g.bench_function("maskgae", |b| {
        b.iter(|| std::hint::black_box(gcmae_baselines::maskgae::train(&ds, &ssl, 0)))
    });
    g.bench_function("gcmae", |b| {
        b.iter(|| {
            std::hint::black_box(
                gcmae_core::TrainSession::new(&gc)
                    .seed(0)
                    .run(&ds)
                    .expect("train"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
