//! Criterion bench for the Table 7 pipeline: graph-level pre-training +
//! SVM 5-fold cross-validation, GCMAE vs GraphCL.

use criterion::{criterion_group, criterion_main, Criterion};
use gcmae_bench::runners::DATA_SEED;
use gcmae_bench::scale::{gcmae_config, ssl_config, Scale};
use gcmae_eval::{cross_validate, SvmConfig};
use gcmae_graph::generators::collection::{generate, CollectionSpec};

fn bench(c: &mut Criterion) {
    let coll = generate(&CollectionSpec::mutag().scaled(0.25), DATA_SEED);
    let gc = gcmae_config(Scale::Smoke, 512);
    let ssl = ssl_config(Scale::Smoke, 512);

    let mut g = c.benchmark_group("table7");
    g.sample_size(10);
    g.bench_function("gcmae_graph_level", |b| {
        b.iter(|| {
            let emb = gcmae_core::train_graph_level(&coll, &gc, 16, 0);
            std::hint::black_box(cross_validate(
                &emb,
                &coll.labels,
                coll.num_classes,
                5,
                &SvmConfig::default(),
                0,
            ))
        })
    });
    g.bench_function("graphcl_graph_level", |b| {
        b.iter(|| {
            let emb = gcmae_baselines::graph_level::graphcl::train(&coll, &ssl, 16, 0);
            std::hint::black_box(cross_validate(
                &emb,
                &coll.labels,
                coll.num_classes,
                5,
                &SvmConfig::default(),
                0,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
