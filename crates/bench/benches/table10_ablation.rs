//! Criterion bench for the Table 10 ablation: per-loss-component training
//! cost (full objective vs each component removed). This doubles as the
//! DESIGN.md ablation bench quantifying §4.4's claim that adjacency
//! reconstruction dominates GCMAE's overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcmae_bench::runners::DATA_SEED;
use gcmae_bench::scale::{gcmae_config, node_dataset, Scale};
use gcmae_core::GcmaeConfig;

fn bench(c: &mut Criterion) {
    let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
    let base = gcmae_config(Scale::Smoke, ds.num_nodes());
    let variants: Vec<(&str, GcmaeConfig)> = vec![
        ("full", base.clone()),
        ("wo_contrastive", base.clone().without_contrastive()),
        ("wo_struct_recon", base.clone().without_struct_recon()),
        ("wo_discrimination", base.clone().without_discrimination()),
        (
            "graphmae_equiv",
            base.clone()
                .without_contrastive()
                .without_struct_recon()
                .without_discrimination(),
        ),
    ];
    let mut g = c.benchmark_group("table10");
    g.sample_size(10);
    for (name, cfg) in variants {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                std::hint::black_box(
                    gcmae_core::TrainSession::new(cfg)
                        .seed(0)
                        .run(&ds)
                        .expect("train"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
