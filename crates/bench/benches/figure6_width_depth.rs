//! Criterion bench for the Figure 6 sweep: training cost vs encoder width
//! and depth (the sweep's own scaling behaviour).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcmae_bench::runners::DATA_SEED;
use gcmae_bench::scale::{gcmae_config, node_dataset, Scale};
use gcmae_core::GcmaeConfig;

fn bench(c: &mut Criterion) {
    let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
    let base = gcmae_config(Scale::Smoke, ds.num_nodes());
    let mut g = c.benchmark_group("figure6");
    g.sample_size(10);
    for width in [16usize, 64] {
        let cfg = GcmaeConfig {
            hidden_dim: width,
            proj_dim: width / 2,
            ..base.clone()
        };
        g.bench_with_input(BenchmarkId::new("width", width), &cfg, |b, cfg| {
            b.iter(|| {
                std::hint::black_box(
                    gcmae_core::TrainSession::new(cfg)
                        .seed(0)
                        .run(&ds)
                        .expect("train"),
                )
            })
        });
    }
    for layers in [2usize, 4] {
        let cfg = GcmaeConfig {
            layers,
            ..base.clone()
        };
        g.bench_with_input(BenchmarkId::new("depth", layers), &cfg, |b, cfg| {
            b.iter(|| {
                std::hint::black_box(
                    gcmae_core::TrainSession::new(cfg)
                        .seed(0)
                        .run(&ds)
                        .expect("train"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
