//! Criterion bench for the Table 4 pipeline: GCMAE pre-training + linear
//! probe vs the GraphMAE and GRACE baselines, at smoke scale.

use criterion::{criterion_group, criterion_main, Criterion};
use gcmae_bench::runners::{classification_split, probe_accuracy, DATA_SEED};
use gcmae_bench::scale::{gcmae_config, node_dataset, ssl_config, Scale};

fn bench(c: &mut Criterion) {
    let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
    let split = classification_split(&ds);
    let gc = gcmae_config(Scale::Smoke, ds.num_nodes());
    let ssl = ssl_config(Scale::Smoke, ds.num_nodes());

    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("gcmae_pretrain_probe", |b| {
        b.iter(|| {
            let out = gcmae_core::TrainSession::new(&gc)
                .seed(0)
                .run(&ds)
                .expect("train");
            std::hint::black_box(probe_accuracy(&out.embeddings, &ds, &split, 0))
        })
    });
    g.bench_function("graphmae_pretrain_probe", |b| {
        b.iter(|| {
            let emb = gcmae_baselines::graphmae::train(&ds, &ssl, 0);
            std::hint::black_box(probe_accuracy(&emb, &ds, &split, 0))
        })
    });
    g.bench_function("grace_pretrain_probe", |b| {
        b.iter(|| {
            let emb = gcmae_baselines::grace::train(&ds, &ssl, 0);
            std::hint::black_box(probe_accuracy(&emb, &ds, &split, 0))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
