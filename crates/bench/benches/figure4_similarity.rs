//! Criterion bench for the Figure 4 pipeline: the per-epoch 5-hop
//! similarity measurement (k-hop BFS rings + cosine similarities).

use criterion::{criterion_group, criterion_main, Criterion};
use gcmae_bench::figures::five_hop_similarity;
use gcmae_bench::runners::DATA_SEED;
use gcmae_bench::scale::{gcmae_config, node_dataset, Scale};
use gcmae_graph::sampling::sample_nodes;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
    let cfg = gcmae_config(Scale::Smoke, ds.num_nodes());
    let emb = gcmae_core::TrainSession::new(&cfg)
        .seed(0)
        .run(&ds)
        .expect("train")
        .embeddings;
    let mut rng = StdRng::seed_from_u64(1);
    let anchors = sample_nodes(ds.num_nodes(), 32, &mut rng);

    let mut g = c.benchmark_group("figure4");
    g.sample_size(20);
    g.bench_function("five_hop_similarity", |b| {
        b.iter(|| std::hint::black_box(five_hop_similarity(&ds, &emb, &anchors)))
    });
    g.bench_function("k_hop_ring_bfs", |b| {
        b.iter(|| std::hint::black_box(ds.graph.k_hop_ring(anchors[0], 5)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
