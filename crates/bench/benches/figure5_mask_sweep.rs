//! Criterion bench for the Figure 5 sweep: one grid cell (train with a
//! given `p_mask`/`p_drop`) at low and high mask rates, showing that the
//! sweep cost is mask-rate independent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcmae_bench::runners::DATA_SEED;
use gcmae_bench::scale::{gcmae_config, node_dataset, Scale};
use gcmae_core::GcmaeConfig;

fn bench(c: &mut Criterion) {
    let ds = node_dataset("Cora", Scale::Smoke, DATA_SEED);
    let base = gcmae_config(Scale::Smoke, ds.num_nodes());
    let mut g = c.benchmark_group("figure5");
    g.sample_size(10);
    for (pm, pd) in [(0.2f32, 0.2f32), (0.8, 0.8)] {
        let cfg = GcmaeConfig {
            p_mask: pm,
            p_drop: pd,
            ..base.clone()
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("pm{pm}_pd{pd}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    std::hint::black_box(
                        gcmae_core::TrainSession::new(cfg)
                            .seed(0)
                            .run(&ds)
                            .expect("train"),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
