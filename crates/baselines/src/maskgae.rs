//! MaskGAE (Li et al., 2022): masked graph autoencoding with edge masking,
//! an edge decoder over masked edges + sampled negatives, and a degree
//! regression head.

use std::sync::Arc;

use gcmae_graph::sampling::sample_non_edges;
use gcmae_graph::{Dataset, Graph};
use gcmae_nn::{Act, Adam, Encoder, GraphOps, Mlp, ParamStore, Session};
use gcmae_tensor::Matrix;
use rand::Rng;

use crate::common::{edge_logits, edge_targets, eval_embed, method_rng, SslConfig};

/// Weight of the degree-regression auxiliary loss.
const DEGREE_WEIGHT: f32 = 1e-3;

/// Trains MaskGAE and returns eval-mode node embeddings.
pub fn train(ds: &Dataset, cfg: &SslConfig, seed: u64) -> Matrix {
    let mut rng = method_rng(seed, 0x3a5c9ae);
    let mut store = ParamStore::new();
    let encoder = Encoder::new(&mut store, &cfg.encoder_config(ds.feature_dim()), &mut rng);
    let deg_head = Mlp::new(&mut store, &[cfg.hidden_dim, cfg.hidden_dim / 2, 1], Act::Relu, &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let all_edges: Vec<(usize, usize)> = ds.graph.undirected_edges().collect();
    // normalized degree targets (log scale keeps power-law degrees tame)
    let deg_target = Arc::new(Matrix::from_fn(ds.num_nodes(), 1, |r, _| {
        (ds.graph.degree(r) as f32 + 1.0).ln()
    }));
    for _ in 0..cfg.epochs {
        let mut sess = Session::new();
        // mask a fraction of edges: encode on the visible graph, decode the
        // masked (held-out) edges
        let mut visible = Vec::with_capacity(all_edges.len());
        let mut masked = vec![];
        for &e in &all_edges {
            if rng.gen::<f32>() < cfg.p_edge_mask {
                masked.push(e);
            } else {
                visible.push(e);
            }
        }
        if masked.is_empty() || visible.is_empty() {
            continue;
        }
        let vis_graph = Graph::from_edges(ds.num_nodes(), &visible);
        let ops = GraphOps::new(&vis_graph);
        let x = sess.tape.constant(ds.features.clone());
        let h = encoder.forward(&mut sess, &store, x, &ops, true, &mut rng);
        // edge decoder: masked positives + equally many negatives
        let negs = sample_non_edges(&ds.graph, masked.len(), &mut rng);
        let mut pairs = masked.clone();
        pairs.extend(&negs);
        let logits = edge_logits(&mut sess, h, &pairs);
        let targets = Arc::new(edge_targets(masked.len(), negs.len()));
        let edge_loss = sess.tape.bce_with_logits(logits, targets);
        // degree regression
        let deg_pred = deg_head.forward(&mut sess, &store, h);
        let dt = sess.tape.constant(deg_target.as_ref().clone());
        let diff = sess.tape.sub(deg_pred, dt);
        let sq = sess.tape.frob_sq(diff);
        let deg_loss = sess.tape.scale(sq, 1.0 / ds.num_nodes() as f32);
        let loss = sess.tape.add_scaled(edge_loss, deg_loss, DEGREE_WEIGHT);
        let mut grads = sess.tape.backward(loss);
        adam.step(&mut store, &sess, &mut grads);
    }
    eval_embed(&encoder, &store, ds, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    #[test]
    fn produces_finite_embeddings() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 1);
        let cfg = SslConfig { epochs: 5, ..SslConfig::fast() };
        let e = train(&ds, &cfg, 1);
        assert_eq!(e.shape(), (ds.num_nodes(), cfg.hidden_dim));
        assert!(e.all_finite());
    }

    #[test]
    fn learns_link_structure_better_than_random_init() {
        use gcmae_eval::dot_product_eval;
        use gcmae_graph::splits::link_split;
        let ds = generate(&CitationSpec::cora().scaled(0.06), 3);
        let mut rng = method_rng(3, 0);
        let split = link_split(&ds.graph, 0.05, 0.1, &mut rng);
        let sub = Dataset { graph: split.train_graph.clone(), ..ds.clone() };
        let trained = train(&sub, &SslConfig { epochs: 40, ..SslConfig::fast() }, 3);
        let untrained = train(&sub, &SslConfig { epochs: 0, ..SslConfig::fast() }, 3);
        let (auc_t, _) = dot_product_eval(&trained, &split);
        let (auc_u, _) = dot_product_eval(&untrained, &split);
        assert!(auc_t > auc_u, "trained {auc_t} vs untrained {auc_u}");
        assert!(auc_t > 0.6, "trained AUC too low: {auc_t}");
    }
}
