//! Shared configuration and helpers for all baseline methods.

use gcmae_graph::Dataset;
use gcmae_nn::{Act, Encoder, EncoderConfig, EncoderKind, GraphOps, ParamStore, Session};
use gcmae_tensor::{Matrix, TensorId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters shared by the SSL baselines. Per-method specifics
/// (e.g. MaskGAE's edge mask rate) live in the method modules.
#[derive(Clone, Debug)]
pub struct SslConfig {
    /// encoder.
    pub encoder: EncoderKind,
    /// hidden dim.
    pub hidden_dim: usize,
    /// proj dim.
    pub proj_dim: usize,
    /// layers.
    pub layers: usize,
    /// epochs.
    pub epochs: usize,
    /// lr.
    pub lr: f32,
    /// weight decay.
    pub weight_decay: f32,
    /// dropout.
    pub dropout: f32,
    /// Edge-drop rate for two-view methods (GRACE/CCA-SSG/GraphCL).
    pub p_edge_drop: f32,
    /// Feature-dimension mask rate for two-view methods.
    pub p_feat_mask: f32,
    /// Node-feature mask rate for MAE methods (GraphMAE/SeeGera).
    pub p_node_mask: f32,
    /// Edge mask rate for edge-MAE methods (MaskGAE/S2GAE).
    pub p_edge_mask: f32,
    /// InfoNCE temperature.
    pub tau: f32,
    /// Anchor subsample for InfoNCE-style losses (0 = all).
    pub contrast_sample: usize,
}

impl Default for SslConfig {
    fn default() -> Self {
        Self {
            encoder: EncoderKind::Gcn,
            hidden_dim: 256,
            proj_dim: 64,
            layers: 2,
            epochs: 200,
            lr: 0.001,
            weight_decay: 1e-4,
            dropout: 0.2,
            p_edge_drop: 0.3,
            p_feat_mask: 0.3,
            p_node_mask: 0.5,
            p_edge_mask: 0.7,
            tau: 0.5,
            contrast_sample: 1024,
        }
    }
}

impl SslConfig {
    /// Fast preset for tests and Criterion benches.
    pub fn fast() -> Self {
        Self {
            hidden_dim: 32,
            proj_dim: 16,
            epochs: 15,
            contrast_sample: 128,
            ..Self::default()
        }
    }

    /// Encoder configuration for inputs of width `in_dim`.
    pub fn encoder_config(&self, in_dim: usize) -> EncoderConfig {
        EncoderConfig {
            kind: self.encoder,
            in_dim,
            hidden_dim: self.hidden_dim,
            out_dim: self.hidden_dim,
            layers: self.layers,
            act: Act::Elu,
            dropout: self.dropout,
        }
    }
}

/// Deterministic per-method RNG.
pub fn method_rng(seed: u64, tag: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x2545f4914f6cdd1d) ^ tag)
}

/// Eval-mode embeddings of the full dataset.
pub fn eval_embed(encoder: &Encoder, store: &ParamStore, ds: &Dataset, rng: &mut StdRng) -> Matrix {
    let ops = GraphOps::new(&ds.graph);
    let mut sess = Session::new();
    let x = sess.tape.constant(ds.features.clone());
    let h = encoder.forward(&mut sess, store, x, &ops, false, rng);
    sess.tape.value(h).clone()
}

/// Per-edge dot-product logits `⟨h_u, h_v⟩` as an `E × 1` tape tensor.
pub fn edge_logits(
    sess: &mut Session,
    h: TensorId,
    edges: &[(usize, usize)],
) -> TensorId {
    let us: Vec<usize> = edges.iter().map(|&(u, _)| u).collect();
    let vs: Vec<usize> = edges.iter().map(|&(_, v)| v).collect();
    let hu = sess.tape.gather_rows(h, us);
    let hv = sess.tape.gather_rows(h, vs);
    let prod = sess.tape.hadamard(hu, hv);
    let d = sess.tape.value(prod).cols();
    let ones = sess.tape.constant(Matrix::full(d, 1, 1.0));
    sess.tape.matmul(prod, ones)
}

/// Stacked 0/1 target column for `n_pos` positives followed by `n_neg`
/// negatives.
pub fn edge_targets(n_pos: usize, n_neg: usize) -> Matrix {
    Matrix::from_fn(n_pos + n_neg, 1, |r, _| if r < n_pos { 1.0 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    #[test]
    fn edge_logits_compute_dot_products() {
        let mut sess = Session::new();
        let h = sess.tape.constant(Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 2.0, 3.0, 1.0]));
        let l = edge_logits(&mut sess, h, &[(0, 2), (1, 2)]);
        let v = sess.tape.value(l);
        assert_eq!(v.shape(), (2, 1));
        assert_eq!(v.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn eval_embed_shape() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 1);
        let cfg = SslConfig::fast();
        let mut rng = method_rng(1, 0);
        let mut store = ParamStore::new();
        let enc = Encoder::new(&mut store, &cfg.encoder_config(ds.feature_dim()), &mut rng);
        let e = eval_embed(&enc, &store, &ds, &mut rng);
        assert_eq!(e.shape(), (ds.num_nodes(), cfg.hidden_dim));
    }

    #[test]
    fn edge_targets_layout() {
        let t = edge_targets(2, 3);
        assert_eq!(t.as_slice(), &[1.0, 1.0, 0.0, 0.0, 0.0]);
    }
}
