//! GCA (Zhu et al., WWW 2021): graph contrastive learning with *adaptive*
//! augmentation.
//!
//! **Extension** — discussed in the paper's related work (§6.1) but not in
//! its tables. GCA refines GRACE by making corruption probabilities
//! importance-aware: edges incident to high-centrality nodes and feature
//! dimensions frequent in high-centrality nodes are dropped *less* often.

use gcmae_graph::sampling::sample_nodes;
use gcmae_graph::{Dataset, Graph};
use gcmae_nn::{Act, Adam, Encoder, GraphOps, Mlp, ParamStore, Session};
use gcmae_tensor::Matrix;
use rand::Rng;

use crate::common::{eval_embed, method_rng, SslConfig};

/// Per-edge and per-dimension drop probabilities derived from degree
/// centrality (the paper's `degree` variant).
pub struct AdaptiveWeights {
    /// Drop probability per undirected edge (aligned with
    /// `graph.undirected_edges()` order).
    pub edge_drop: Vec<f32>,
    /// Mask probability per feature dimension.
    pub dim_mask: Vec<f32>,
}

/// Computes adaptive corruption probabilities with mean rates `p_edge` /
/// `p_dim`, clipped to at most `cap`.
pub fn adaptive_weights(ds: &Dataset, p_edge: f32, p_dim: f32, cap: f32) -> AdaptiveWeights {
    let g = &ds.graph;
    // edge centrality: log degree of the lower-degree endpoint
    let cent: Vec<f32> =
        (0..g.num_nodes()).map(|v| ((g.degree(v) + 1) as f32).ln()).collect();
    let edge_scores: Vec<f32> = g
        .undirected_edges()
        .map(|(u, v)| cent[u].min(cent[v]))
        .collect();
    let edge_drop = scores_to_probs(&edge_scores, p_edge, cap);

    // dimension centrality: weighted frequency of the dimension among
    // high-degree nodes
    let d = ds.feature_dim();
    let mut dim_scores = vec![0.0f32; d];
    for v in 0..g.num_nodes() {
        let w = cent[v];
        for (s, &x) in dim_scores.iter_mut().zip(ds.features.row(v)) {
            if x != 0.0 {
                *s += w;
            }
        }
    }
    for s in &mut dim_scores {
        *s = (*s + 1.0).ln();
    }
    let dim_mask = scores_to_probs(&dim_scores, p_dim, cap);
    AdaptiveWeights { edge_drop, dim_mask }
}

/// Maps importance scores to drop probabilities: high score → low
/// probability, normalized so the mean equals `target_mean`.
fn scores_to_probs(scores: &[f32], target_mean: f32, cap: f32) -> Vec<f32> {
    let max = scores.iter().copied().fold(f32::MIN, f32::max);
    let mean = scores.iter().sum::<f32>() / scores.len().max(1) as f32;
    let denom = (max - mean).max(1e-6);
    // raw ∝ (max − s): important (high-score) items get small raw values
    let raw: Vec<f32> = scores.iter().map(|&s| (max - s) / denom).collect();
    let raw_mean = raw.iter().sum::<f32>() / raw.len().max(1) as f32;
    let scale = if raw_mean > 0.0 { target_mean / raw_mean } else { 0.0 };
    raw.iter().map(|&r| (r * scale).min(cap)).collect()
}

/// Trains GCA and returns eval-mode node embeddings.
pub fn train(ds: &Dataset, cfg: &SslConfig, seed: u64) -> Matrix {
    let mut rng = method_rng(seed, 0x9ca0);
    let weights = adaptive_weights(ds, cfg.p_edge_drop, cfg.p_feat_mask, 0.9);
    let edges: Vec<(usize, usize)> = ds.graph.undirected_edges().collect();
    let mut store = ParamStore::new();
    let encoder = Encoder::new(&mut store, &cfg.encoder_config(ds.feature_dim()), &mut rng);
    let proj =
        Mlp::new(&mut store, &[cfg.hidden_dim, cfg.hidden_dim, cfg.proj_dim], Act::Elu, &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let n = ds.num_nodes();
    for _ in 0..cfg.epochs {
        let mut sess = Session::new();
        let view = |sess: &mut Session, rng: &mut rand::rngs::StdRng| {
            let kept: Vec<(usize, usize)> = edges
                .iter()
                .zip(&weights.edge_drop)
                .filter(|&(_, &p)| rng.gen::<f32>() >= p)
                .map(|(&e, _)| e)
                .collect();
            let g = Graph::from_edges(n, &kept);
            let mut x = ds.features.clone();
            let keep_dim: Vec<bool> =
                weights.dim_mask.iter().map(|&p| rng.gen::<f32>() >= p).collect();
            for r in 0..n {
                for (v, &k) in x.row_mut(r).iter_mut().zip(&keep_dim) {
                    if !k {
                        *v = 0.0;
                    }
                }
            }
            let ops = GraphOps::new(&g);
            (sess.tape.constant(x), ops)
        };
        let (x1, ops1) = view(&mut sess, &mut rng);
        let (x2, ops2) = view(&mut sess, &mut rng);
        let h1 = encoder.forward(&mut sess, &store, x1, &ops1, true, &mut rng);
        let h2 = encoder.forward(&mut sess, &store, x2, &ops2, true, &mut rng);
        let u = proj.forward(&mut sess, &store, h1);
        let v = proj.forward(&mut sess, &store, h2);
        let (u, v) = if cfg.contrast_sample > 0 && cfg.contrast_sample < n {
            let anchors = sample_nodes(n, cfg.contrast_sample, &mut rng);
            (sess.tape.gather_rows(u, anchors.clone()), sess.tape.gather_rows(v, anchors))
        } else {
            (u, v)
        };
        let loss = sess.tape.info_nce(u, v, cfg.tau);
        let mut grads = sess.tape.backward(loss);
        adam.step(&mut store, &sess, &mut grads);
    }
    eval_embed(&encoder, &store, ds, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    #[test]
    fn adaptive_weights_protect_important_edges() {
        let ds = generate(&CitationSpec::cora().scaled(0.03), 1);
        let w = adaptive_weights(&ds, 0.3, 0.3, 0.9);
        let edges: Vec<(usize, usize)> = ds.graph.undirected_edges().collect();
        assert_eq!(w.edge_drop.len(), edges.len());
        assert!(w.edge_drop.iter().all(|&p| (0.0..=0.9).contains(&p)));
        // hub-incident edges get lower drop probability than leaf edges
        let deg = |e: &(usize, usize)| ds.graph.degree(e.0).min(ds.graph.degree(e.1));
        let hub = edges
            .iter()
            .zip(&w.edge_drop)
            .max_by_key(|(e, _)| deg(e))
            .unwrap();
        let leaf = edges
            .iter()
            .zip(&w.edge_drop)
            .min_by_key(|(e, _)| deg(e))
            .unwrap();
        assert!(hub.1 <= leaf.1, "hub edge p={} leaf edge p={}", hub.1, leaf.1);
    }

    #[test]
    fn mean_drop_rate_matches_target() {
        let ds = generate(&CitationSpec::cora().scaled(0.03), 2);
        let w = adaptive_weights(&ds, 0.3, 0.2, 0.9);
        let mean_e: f32 = w.edge_drop.iter().sum::<f32>() / w.edge_drop.len() as f32;
        assert!((mean_e - 0.3).abs() < 0.1, "mean edge drop {mean_e}");
    }

    #[test]
    fn produces_finite_embeddings() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 3);
        let cfg = SslConfig { epochs: 5, ..SslConfig::fast() };
        let e = train(&ds, &cfg, 1);
        assert_eq!(e.shape(), (ds.num_nodes(), cfg.hidden_dim));
        assert!(e.all_finite());
    }
}
