//! SCGC (Liu et al., TNNLS 2023): simple contrastive graph clustering.
//!
//! Structure is injected by *pre-propagating* features (no GNN during
//! training); two MLP encoders over the smoothed features are aligned with
//! a contrastive loss. This keeps SCGC's signature trait — training cost
//! independent of the graph after the one-off propagation.

use gcmae_graph::sampling::sample_nodes;
use gcmae_graph::Dataset;
use gcmae_nn::{Act, Adam, Mlp, ParamStore, Session};
use gcmae_tensor::Matrix;

use crate::common::{method_rng, SslConfig};

/// Number of propagation (smoothing) steps.
const PROP_STEPS: usize = 2;

/// Pre-propagated features `(D̃^{-1}(A+I))^t · X`.
pub fn smooth_features(ds: &Dataset, steps: usize) -> Matrix {
    let (mean, _) = ds.graph.mean_norm();
    let mut x = ds.features.clone();
    for _ in 0..steps {
        x = mean.matmul_dense(&x);
    }
    x
}

/// Trains SCGC and returns node embeddings (mean of the two views).
pub fn train(ds: &Dataset, cfg: &SslConfig, seed: u64) -> Matrix {
    let mut rng = method_rng(seed, 0x5c9c);
    let smoothed = smooth_features(ds, PROP_STEPS);
    let mut store = ParamStore::new();
    let d = ds.feature_dim();
    let e1 = Mlp::new(&mut store, &[d, cfg.hidden_dim, cfg.hidden_dim], Act::Relu, &mut rng);
    let e2 = Mlp::new(&mut store, &[d, cfg.hidden_dim, cfg.hidden_dim], Act::Relu, &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let n = ds.num_nodes();
    for _ in 0..cfg.epochs {
        let mut sess = Session::new();
        let x = sess.tape.constant(smoothed.clone());
        let u = e1.forward(&mut sess, &store, x);
        let v = e2.forward(&mut sess, &store, x);
        let (u, v) = if cfg.contrast_sample > 0 && cfg.contrast_sample < n {
            let anchors = sample_nodes(n, cfg.contrast_sample, &mut rng);
            (sess.tape.gather_rows(u, anchors.clone()), sess.tape.gather_rows(v, anchors))
        } else {
            (u, v)
        };
        let loss = sess.tape.info_nce(u, v, cfg.tau);
        let mut grads = sess.tape.backward(loss);
        adam.step(&mut store, &sess, &mut grads);
    }
    // embeddings: mean of both views on the smoothed features
    let mut sess = Session::new();
    let x = sess.tape.constant(smoothed);
    let u = e1.forward(&mut sess, &store, x);
    let v = e2.forward(&mut sess, &store, x);
    let s = sess.tape.add(u, v);
    let m = sess.tape.scale(s, 0.5);
    sess.tape.value(m).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    #[test]
    fn smoothing_reduces_neighbor_distance() {
        let ds = generate(&CitationSpec::cora().scaled(0.03), 1);
        let smoothed = smooth_features(&ds, 2);
        let dist = |x: &Matrix, u: usize, v: usize| -> f32 {
            x.row(u).iter().zip(x.row(v)).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        // average over some edges: smoothed features should be closer
        let mut raw = 0.0;
        let mut smo = 0.0;
        for (u, v) in ds.graph.undirected_edges().take(50) {
            raw += dist(&ds.features, u, v);
            smo += dist(&smoothed, u, v);
        }
        assert!(smo < raw, "smoothing did not smooth: {smo} !< {raw}");
    }

    #[test]
    fn produces_finite_embeddings() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 2);
        let cfg = SslConfig { epochs: 5, ..SslConfig::fast() };
        let e = train(&ds, &cfg, 1);
        assert_eq!(e.shape(), (ds.num_nodes(), cfg.hidden_dim));
        assert!(e.all_finite());
    }
}
