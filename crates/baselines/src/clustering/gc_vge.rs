//! GC-VGE (Guo & Dai, Pattern Recognition 2022): graph clustering via
//! variational graph embedding.
//!
//! Simplification (DESIGN.md): the joint clustering objective is reduced to
//! a VGAE trained on structure reconstruction + KL, whose posterior means
//! feed k-means — the protocol all Table 6 methods share downstream.

use std::sync::Arc;

use gcmae_graph::sampling::sample_non_edges;
use gcmae_graph::Dataset;
use gcmae_nn::{Adam, Encoder, GraphOps, Linear, ParamStore, Session};
use gcmae_tensor::Matrix;
use rand::Rng;

use crate::common::{edge_logits, edge_targets, eval_embed, method_rng, SslConfig};

const KL_WEIGHT: f32 = 1e-3;

/// Trains GC-VGE and returns eval-mode node embeddings (posterior means).
pub fn train(ds: &Dataset, cfg: &SslConfig, seed: u64) -> Matrix {
    let mut rng = method_rng(seed, 0x9c_b9e);
    let mut store = ParamStore::new();
    let encoder = Encoder::new(&mut store, &cfg.encoder_config(ds.feature_dim()), &mut rng);
    let mu_head = Linear::new(&mut store, cfg.hidden_dim, cfg.hidden_dim, true, &mut rng);
    let logvar_head = Linear::new(&mut store, cfg.hidden_dim, cfg.hidden_dim, true, &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let ops = GraphOps::new(&ds.graph);
    let edges: Vec<(usize, usize)> = ds.graph.undirected_edges().collect();
    let n = ds.num_nodes();
    for _ in 0..cfg.epochs {
        let mut sess = Session::new();
        let x = sess.tape.constant(ds.features.clone());
        let h = encoder.forward(&mut sess, &store, x, &ops, true, &mut rng);
        let mu = mu_head.forward(&mut sess, &store, h);
        let logvar = logvar_head.forward(&mut sess, &store, h);
        let half = sess.tape.scale(logvar, 0.5);
        let std = sess.tape.exp(half);
        let noise = {
            let mut m = Matrix::zeros(n, cfg.hidden_dim);
            m.map_inplace(|_| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            });
            sess.tape.constant(m)
        };
        let eps_std = sess.tape.hadamard(noise, std);
        let z = sess.tape.add(mu, eps_std);
        // structure reconstruction on edges + sampled negatives
        let sample: Vec<(usize, usize)> = if edges.len() > 2048 {
            (0..2048).map(|_| edges[rng.gen_range(0..edges.len())]).collect()
        } else {
            edges.clone()
        };
        let negs = sample_non_edges(&ds.graph, sample.len(), &mut rng);
        let mut pairs = sample.clone();
        pairs.extend(&negs);
        let logits = edge_logits(&mut sess, z, &pairs);
        let targets = Arc::new(edge_targets(sample.len(), negs.len()));
        let recon = sess.tape.bce_with_logits(logits, targets);
        // KL
        let mu2 = sess.tape.hadamard(mu, mu);
        let evar = sess.tape.exp(logvar);
        let a = sess.tape.sub(logvar, mu2);
        let b = sess.tape.sub(a, evar);
        let s = sess.tape.mean_all(b);
        let kl = sess.tape.scale(s, -0.5);
        let loss = sess.tape.add_scaled(recon, kl, KL_WEIGHT);
        let mut grads = sess.tape.backward(loss);
        adam.step(&mut store, &sess, &mut grads);
    }
    let base = eval_embed(&encoder, &store, ds, &mut rng);
    let mut sess = Session::new();
    let h = sess.tape.constant(base);
    let mu = mu_head.forward(&mut sess, &store, h);
    sess.tape.value(mu).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    #[test]
    fn produces_finite_embeddings() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 1);
        let cfg = SslConfig { epochs: 5, ..SslConfig::fast() };
        let e = train(&ds, &cfg, 1);
        assert_eq!(e.shape(), (ds.num_nodes(), cfg.hidden_dim));
        assert!(e.all_finite());
    }
}
