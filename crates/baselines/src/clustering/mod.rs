//! Deep node-clustering baselines (Table 6): GC-VGE, SCGC, GCC.

pub mod gc_vge;
pub mod gcc;
pub mod scgc;
