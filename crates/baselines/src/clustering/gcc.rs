//! GCC (Fettal et al., WSDM 2022): efficient graph convolution for joint
//! node representation learning and clustering.
//!
//! The method alternates between (a) a k-means-style assignment over
//! propagated features and (b) a low-rank reconstruction of those features
//! from the cluster centroids. No gradient training is required, matching
//! the original's closed-form efficiency.

use gcmae_graph::Dataset;
use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::clustering::scgc::smooth_features;

/// GCC output: the propagated low-dimensional representations plus the
/// cluster assignment it converged to.
pub struct GccOutput {
    /// embeddings.
    pub embeddings: Matrix,
    /// assignments.
    pub assignments: Vec<usize>,
}

/// Runs GCC with `k` clusters and `dim` output dimensions.
pub fn train(ds: &Dataset, k: usize, dim: usize, prop_steps: usize, seed: u64) -> GccOutput {
    let smoothed = smooth_features(ds, prop_steps);
    // reduce with PCA-style random projection + power iterations via the
    // eval crate's PCA would create a cycle; use a seeded random projection
    // followed by QR-free orthogonalization (Gram-Schmidt), which preserves
    // cluster geometry well enough for k-means.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9cc);
    let d = smoothed.cols();
    let dim = dim.min(d);
    let mut proj = Matrix::uniform(d, dim, -1.0, 1.0, &mut rng);
    orthonormalize_cols(&mut proj);
    let embeddings = gcmae_tensor::dense::matmul(&smoothed, &proj);

    // alternating k-means (Lloyd) on the reduced representation
    let n = embeddings.rows();
    let mut centroids = Matrix::zeros(k, dim);
    for c in 0..k {
        let pick = (c * n / k).min(n - 1);
        centroids.row_mut(c).copy_from_slice(embeddings.row(pick));
    }
    let mut assignments = vec![0usize; n];
    for _ in 0..30 {
        let mut changed = false;
        for i in 0..n {
            let (mut best, mut bd) = (0usize, f32::MAX);
            for c in 0..k {
                let d2: f32 = embeddings
                    .row(i)
                    .iter()
                    .zip(centroids.row(c))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d2 < bd {
                    bd = d2;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        let mut counts = vec![0f32; k];
        let mut sums = Matrix::zeros(k, dim);
        for i in 0..n {
            counts[assignments[i]] += 1.0;
            for (s, &v) in sums.row_mut(assignments[i]).iter_mut().zip(embeddings.row(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0.0 {
                for (o, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *o = s / counts[c];
                }
            }
        }
        if !changed {
            break;
        }
    }
    GccOutput { embeddings, assignments }
}

fn orthonormalize_cols(m: &mut Matrix) {
    let (rows, cols) = m.shape();
    for c in 0..cols {
        // subtract projections on previous columns
        for p in 0..c {
            let mut dot = 0.0f32;
            for r in 0..rows {
                dot += m[(r, c)] * m[(r, p)];
            }
            for r in 0..rows {
                let vp = m[(r, p)];
                m[(r, c)] -= dot * vp;
            }
        }
        let norm: f32 = (0..rows).map(|r| m[(r, c)] * m[(r, c)]).sum::<f32>().sqrt().max(1e-8);
        for r in 0..rows {
            m[(r, c)] /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    #[test]
    fn produces_assignments_and_embeddings() {
        let ds = generate(&CitationSpec::cora().scaled(0.03), 1);
        let out = train(&ds, ds.num_classes, 16, 2, 1);
        assert_eq!(out.embeddings.rows(), ds.num_nodes());
        assert_eq!(out.assignments.len(), ds.num_nodes());
        assert!(out.assignments.iter().all(|&a| a < ds.num_classes));
        // uses more than one cluster
        let first = out.assignments[0];
        assert!(out.assignments.iter().any(|&a| a != first));
    }

    #[test]
    fn clustering_beats_random_on_homophilous_graph() {
        use gcmae_eval::metrics::clustering::nmi;
        let ds = generate(&CitationSpec::cora().scaled(0.08), 2);
        let out = train(&ds, ds.num_classes, 32, 3, 2);
        let score = nmi(&out.assignments, &ds.labels);
        assert!(score > 0.05, "NMI {score} should beat random (~0)");
    }
}
