//! Graph-level S2GAE: edge-masked autoencoding on block-diagonal batches
//! with the learned cross-correlation edge scorer, read out by mean pooling
//! (the graph-classification variant reported in Table 7).

use std::sync::Arc;

use gcmae_graph::sampling::sample_non_edges;
use gcmae_graph::{Graph, GraphCollection};
use gcmae_nn::{Act, Adam, Encoder, GraphOps, Mlp, ParamStore, Session};
use gcmae_tensor::Matrix;
use rand::Rng;

use crate::common::{edge_targets, method_rng, SslConfig};
use crate::graph_level::{eval_graph_embeddings, shuffled_batches};

const EDGE_MASK: f32 = 0.5;

/// Trains graph-level S2GAE and returns one embedding per graph.
pub fn train(
    collection: &GraphCollection,
    cfg: &SslConfig,
    graphs_per_batch: usize,
    seed: u64,
) -> Matrix {
    let mut rng = method_rng(seed, 0x0052_9ae9_7000);
    let mut store = ParamStore::new();
    let encoder = Encoder::new(&mut store, &cfg.encoder_config(collection.feature_dim()), &mut rng);
    let scorer = Mlp::new(&mut store, &[cfg.hidden_dim, cfg.hidden_dim / 2, 1], Act::Relu, &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    for _ in 0..cfg.epochs {
        for idx in shuffled_batches(collection.len(), graphs_per_batch, &mut rng) {
            if idx.len() < 2 {
                continue;
            }
            let batch = collection.batch(&idx);
            let all_edges: Vec<(usize, usize)> = batch.graph.undirected_edges().collect();
            let mut visible = vec![];
            let mut masked = vec![];
            for &e in &all_edges {
                if rng.gen::<f32>() < EDGE_MASK {
                    masked.push(e);
                } else {
                    visible.push(e);
                }
            }
            if masked.is_empty() || visible.is_empty() {
                continue;
            }
            let vis = Graph::from_edges(batch.graph.num_nodes(), &visible);
            let ops = GraphOps::new(&vis);
            let mut sess = Session::new();
            let x = sess.tape.constant(batch.features.clone());
            let h = encoder.forward(&mut sess, &store, x, &ops, true, &mut rng);
            let negs = sample_non_edges(&batch.graph, masked.len(), &mut rng);
            let mut pairs = masked.clone();
            pairs.extend(&negs);
            let us: Vec<usize> = pairs.iter().map(|&(u, _)| u).collect();
            let vs: Vec<usize> = pairs.iter().map(|&(_, v)| v).collect();
            let hu = sess.tape.gather_rows(h, us);
            let hv = sess.tape.gather_rows(h, vs);
            let prod = sess.tape.hadamard(hu, hv);
            let logits = scorer.forward(&mut sess, &store, prod);
            let targets = Arc::new(edge_targets(masked.len(), negs.len()));
            let loss = sess.tape.bce_with_logits(logits, targets);
            let mut grads = sess.tape.backward(loss);
            adam.step(&mut store, &sess, &mut grads);
        }
    }
    eval_graph_embeddings(&encoder, &store, collection, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::collection::{generate, CollectionSpec};

    #[test]
    fn produces_one_embedding_per_graph() {
        let c = generate(&CollectionSpec::mutag().scaled(0.12), 1);
        let cfg = SslConfig { epochs: 2, ..SslConfig::fast() };
        let e = train(&c, &cfg, 8, 1);
        assert_eq!(e.shape(), (c.len(), cfg.hidden_dim));
        assert!(e.all_finite());
    }
}
