//! GraphCL (You et al., NeurIPS 2020): graph contrastive learning with
//! augmentations. Two random augmentations per batch, mean-pooled graph
//! embeddings, InfoNCE over the graphs in the batch.

use gcmae_graph::GraphCollection;
use gcmae_nn::{Act, Adam, Encoder, GraphOps, Mlp, ParamStore, Session};
use gcmae_tensor::Matrix;
use rand::Rng;

use crate::common::{method_rng, SslConfig};
use crate::graph_level::{eval_graph_embeddings, shuffled_batches, Aug};

/// Trains GraphCL and returns one embedding per graph.
pub fn train(
    collection: &GraphCollection,
    cfg: &SslConfig,
    graphs_per_batch: usize,
    seed: u64,
) -> Matrix {
    train_with_pair_picker(collection, cfg, graphs_per_batch, seed, |rng, _| {
        let pool = Aug::pool();
        (pool[rng.gen_range(0..pool.len())], pool[rng.gen_range(0..pool.len())])
    })
}

/// Core GraphCL loop, parameterized by the augmentation-pair policy (JOAO
/// and InfoGCL plug their own pickers in). The picker receives the RNG and
/// the running mean loss per (i, j) pair in the 4×4 pool.
pub fn train_with_pair_picker(
    collection: &GraphCollection,
    cfg: &SslConfig,
    graphs_per_batch: usize,
    seed: u64,
    mut pick: impl FnMut(&mut rand::rngs::StdRng, &[[f32; 4]; 4]) -> (Aug, Aug),
) -> Matrix {
    let mut rng = method_rng(seed, 0x94afc1);
    let mut store = ParamStore::new();
    let encoder = Encoder::new(&mut store, &cfg.encoder_config(collection.feature_dim()), &mut rng);
    let proj =
        Mlp::new(&mut store, &[cfg.hidden_dim, cfg.hidden_dim, cfg.proj_dim], Act::Relu, &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let pool = Aug::pool();
    let mut pair_loss = [[0.0f32; 4]; 4];
    for _ in 0..cfg.epochs {
        for idx in shuffled_batches(collection.len(), graphs_per_batch, &mut rng) {
            if idx.len() < 2 {
                continue;
            }
            let batch = collection.batch(&idx);
            let (a1, a2) = pick(&mut rng, &pair_loss);
            let mut sess = Session::new();
            let encode = |sess: &mut Session, aug: Aug, rng: &mut rand::rngs::StdRng| {
                let (g, x) = aug.apply(&batch, rng);
                let ops = GraphOps::new(&g);
                let xi = sess.tape.constant(x);
                let h = encoder.forward(sess, &store, xi, &ops, true, rng);
                let pooled = sess.tape.segment_mean(h, batch.segments.clone(), idx.len());
                proj.forward(sess, &store, pooled)
            };
            let u = encode(&mut sess, a1, &mut rng);
            let v = encode(&mut sess, a2, &mut rng);
            let loss = sess.tape.info_nce(u, v, cfg.tau);
            let lv = sess.tape.value(loss).scalar_value();
            let (i, j) = (
                pool.iter().position(|&a| a == a1).unwrap_or(0),
                pool.iter().position(|&a| a == a2).unwrap_or(0),
            );
            pair_loss[i][j] = 0.9 * pair_loss[i][j] + 0.1 * lv;
            let mut grads = sess.tape.backward(loss);
            adam.step(&mut store, &sess, &mut grads);
        }
    }
    eval_graph_embeddings(&encoder, &store, collection, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::collection::{generate, CollectionSpec};

    #[test]
    fn produces_one_embedding_per_graph() {
        let c = generate(&CollectionSpec::mutag().scaled(0.12), 1);
        let cfg = SslConfig { epochs: 2, ..SslConfig::fast() };
        let e = train(&c, &cfg, 8, 1);
        assert_eq!(e.shape(), (c.len(), cfg.hidden_dim));
        assert!(e.all_finite());
    }
}
