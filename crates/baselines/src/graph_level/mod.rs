//! Graph-level contrastive baselines (Table 7): InfoGraph, GraphCL, JOAO,
//! InfoGCL.

pub mod graphcl;
pub mod infogcl;
pub mod infograph;
pub mod joao;
pub mod mvgrl_g;
pub mod s2gae_g;

use gcmae_graph::augment::{drop_edges, drop_nodes, mask_feature_dims};
use gcmae_graph::{BatchedGraphs, Graph, GraphCollection};
use gcmae_nn::{Encoder, GraphOps, ParamStore, Session};
use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// A graph augmentation, applied to a block-diagonal batch (per-graph and
/// per-batch augmentation coincide for edge/node dropping and feature
/// masking).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Aug {
    /// Identity.
    Identity,
    /// Edge Drop.
    EdgeDrop(f32),
    /// Node Drop.
    NodeDrop(f32),
    /// Feat Mask.
    FeatMask(f32),
    /// Keep a random-walk subgraph covering roughly the given fraction of
    /// each graph's nodes (GraphCL's fourth augmentation).
    Subgraph(f32),
}

impl Aug {
    /// The candidate pool used by GraphCL/JOAO/InfoGCL — the paper's four
    /// augmentation types.
    pub fn pool() -> [Aug; 4] {
        [Aug::EdgeDrop(0.2), Aug::NodeDrop(0.2), Aug::FeatMask(0.3), Aug::Subgraph(0.8)]
    }

    /// Applies the augmentation, returning a `(graph, features)` view.
    pub fn apply(self, batch: &BatchedGraphs, rng: &mut StdRng) -> (Graph, Matrix) {
        match self {
            Aug::Identity => (batch.graph.clone(), batch.features.clone()),
            Aug::EdgeDrop(p) => (drop_edges(&batch.graph, p, rng), batch.features.clone()),
            Aug::NodeDrop(p) => {
                let d = drop_nodes(&batch.graph, &batch.features, p, rng);
                (d.graph, d.features)
            }
            Aug::FeatMask(p) => {
                (batch.graph.clone(), mask_feature_dims(&batch.features, p, rng))
            }
            Aug::Subgraph(keep) => subgraph_view(batch, keep, rng),
        }
    }
}

/// Random-walk subgraph per segment: nodes not reached by the walk are
/// isolated (rows stay aligned with the batch).
fn subgraph_view(batch: &BatchedGraphs, keep: f32, rng: &mut StdRng) -> (Graph, Matrix) {
    let n = batch.graph.num_nodes();
    let mut kept = vec![false; n];
    // group rows by segment
    let mut segments: Vec<Vec<usize>> = vec![vec![]; batch.num_graphs];
    for (r, &s) in batch.segments.iter().enumerate() {
        segments[s as usize].push(r);
    }
    for rows in &segments {
        if rows.is_empty() {
            continue;
        }
        let budget = ((rows.len() as f32 * keep).ceil() as usize).max(1);
        let mut cur = rows[rng.gen_range(0..rows.len())];
        let mut count = 0usize;
        let mut guard = 0usize;
        while count < budget && guard < budget * 20 {
            guard += 1;
            if !kept[cur] {
                kept[cur] = true;
                count += 1;
            }
            let nbrs = batch.graph.neighbors(cur);
            if nbrs.is_empty() {
                cur = rows[rng.gen_range(0..rows.len())];
            } else {
                cur = nbrs[rng.gen_range(0..nbrs.len())] as usize;
            }
        }
    }
    let dropped: Vec<bool> = kept.iter().map(|&k| !k).collect();
    let graph = batch.graph.isolate_nodes(&dropped);
    let mut features = batch.features.clone();
    for (r, &d) in dropped.iter().enumerate() {
        if d {
            features.row_mut(r).fill(0.0);
        }
    }
    (graph, features)
}

/// Shuffled mini-batches of graph indices.
pub fn shuffled_batches(n: usize, batch: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    order.chunks(batch.max(1)).map(|c| c.to_vec()).collect()
}

/// Eval-mode mean-pooled graph embeddings for the whole collection.
pub fn eval_graph_embeddings(
    encoder: &Encoder,
    store: &ParamStore,
    collection: &GraphCollection,
    rng: &mut StdRng,
) -> Matrix {
    let g = collection.len();
    let d = encoder.out_dim();
    let mut out = Matrix::zeros(g, d);
    let all: Vec<usize> = (0..g).collect();
    for chunk in all.chunks(32) {
        let batch = collection.batch(chunk);
        let ops = GraphOps::new(&batch.graph);
        let mut sess = Session::new();
        let x = sess.tape.constant(batch.features.clone());
        let h = encoder.forward(&mut sess, store, x, &ops, false, rng);
        let pooled = sess.tape.segment_mean(h, batch.segments.clone(), chunk.len());
        let p = sess.tape.value(pooled);
        for (s, &gi) in chunk.iter().enumerate() {
            out.row_mut(gi).copy_from_slice(p.row(s));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::collection::{generate, CollectionSpec};
    use rand::SeedableRng;

    #[test]
    fn augmentations_preserve_node_count() {
        let c = generate(&CollectionSpec::mutag().scaled(0.1), 1);
        let batch = c.batch(&[0, 1, 2]);
        let mut rng = StdRng::seed_from_u64(1);
        for aug in Aug::pool() {
            let (g, x) = aug.apply(&batch, &mut rng);
            assert_eq!(g.num_nodes(), batch.graph.num_nodes(), "{aug:?}");
            assert_eq!(x.rows(), batch.features.rows(), "{aug:?}");
        }
    }

    #[test]
    fn shuffled_batches_cover_all() {
        let mut rng = StdRng::seed_from_u64(2);
        let batches = shuffled_batches(17, 5, &mut rng);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..17).collect::<Vec<_>>());
    }
}
