//! Graph-level MVGRL: adjacency view vs. PPR-diffusion view, node-vs-graph
//! cross-view discrimination within each batch (the graph-classification
//! variant reported in the paper's Table 7).

use std::sync::Arc;

use gcmae_graph::augment::ppr_diffusion;
use gcmae_graph::GraphCollection;
use gcmae_nn::{Adam, Encoder, GraphOps, ParamStore, Session};
use gcmae_tensor::{init, Matrix};

use crate::common::{method_rng, SslConfig};
use crate::graph_level::{eval_graph_embeddings, shuffled_batches};

/// Trains graph-level MVGRL and returns one embedding per graph (sum of the
/// two views' read-outs at eval time uses the adjacency encoder only, which
/// is the stronger view; both encoders share the read-out protocol).
pub fn train(
    collection: &GraphCollection,
    cfg: &SslConfig,
    graphs_per_batch: usize,
    seed: u64,
) -> Matrix {
    let mut rng = method_rng(seed, 0x0009_3092_6197);
    let mut store = ParamStore::new();
    let enc_adj = Encoder::new(&mut store, &cfg.encoder_config(collection.feature_dim()), &mut rng);
    let enc_dif = Encoder::new(&mut store, &cfg.encoder_config(collection.feature_dim()), &mut rng);
    let w = store.create(init::glorot_uniform(cfg.hidden_dim, cfg.hidden_dim, &mut rng));
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    for _ in 0..cfg.epochs {
        for idx in shuffled_batches(collection.len(), graphs_per_batch, &mut rng) {
            if idx.len() < 2 {
                continue;
            }
            let batch = collection.batch(&idx);
            let ops = GraphOps::new(&batch.graph);
            let dif = ppr_diffusion(&batch.graph, 0.2, 3, 8);
            let dif_t = Arc::new(dif.transposed());
            let dif_ops = GraphOps::with_message_operator(&batch.graph, dif, dif_t);
            let mut sess = Session::new();
            let x = sess.tape.constant(batch.features.clone());
            let h1 = enc_adj.forward(&mut sess, &store, x, &ops, true, &mut rng);
            let h2 = enc_dif.forward(&mut sess, &store, x, &dif_ops, true, &mut rng);
            let s1 = sess.tape.segment_mean(h1, batch.segments.clone(), idx.len());
            let s2 = sess.tape.segment_mean(h2, batch.segments.clone(), idx.len());
            let wt = sess.param(&store, w);
            // cross-view: nodes of one view vs graph summaries of the other;
            // own-graph pairs positive, other graphs in the batch negative
            let targets = Arc::new(Matrix::from_fn(
                batch.segments.len(),
                idx.len(),
                |r, g| if batch.segments[r] as usize == g { 1.0 } else { 0.0 },
            ));
            let h1w = sess.tape.matmul(h1, wt);
            let l1m = sess.tape.matmul_nt(h1w, s2);
            let l1 = sess.tape.bce_with_logits(l1m, targets.clone());
            let h2w = sess.tape.matmul(h2, wt);
            let l2m = sess.tape.matmul_nt(h2w, s1);
            let l2 = sess.tape.bce_with_logits(l2m, targets);
            let sum = sess.tape.add(l1, l2);
            let loss = sess.tape.scale(sum, 0.5);
            let mut grads = sess.tape.backward(loss);
            adam.step(&mut store, &sess, &mut grads);
        }
    }
    eval_graph_embeddings(&enc_adj, &store, collection, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::collection::{generate, CollectionSpec};

    #[test]
    fn produces_one_embedding_per_graph() {
        let c = generate(&CollectionSpec::mutag().scaled(0.12), 1);
        let cfg = SslConfig { epochs: 2, ..SslConfig::fast() };
        let e = train(&c, &cfg, 8, 1);
        assert_eq!(e.shape(), (c.len(), cfg.hidden_dim));
        assert!(e.all_finite());
    }
}
