//! InfoGraph (Sun et al., ICLR 2020): maximizes mutual information between
//! node (patch) representations and their own graph's summary. Positives are
//! (node, own graph) pairs, negatives are (node, other graph in the batch).

use std::sync::Arc;

use gcmae_graph::GraphCollection;
use gcmae_nn::{Adam, Encoder, GraphOps, ParamStore, Session};
use gcmae_tensor::{init, Matrix};

use crate::common::{method_rng, SslConfig};
use crate::graph_level::{eval_graph_embeddings, shuffled_batches};

/// Trains InfoGraph and returns one embedding per graph.
pub fn train(
    collection: &GraphCollection,
    cfg: &SslConfig,
    graphs_per_batch: usize,
    seed: u64,
) -> Matrix {
    let mut rng = method_rng(seed, 0x1f09a);
    let mut store = ParamStore::new();
    let encoder = Encoder::new(&mut store, &cfg.encoder_config(collection.feature_dim()), &mut rng);
    let w = store.create(init::glorot_uniform(cfg.hidden_dim, cfg.hidden_dim, &mut rng));
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    for _ in 0..cfg.epochs {
        for idx in shuffled_batches(collection.len(), graphs_per_batch, &mut rng) {
            if idx.len() < 2 {
                continue;
            }
            let batch = collection.batch(&idx);
            let ops = GraphOps::new(&batch.graph);
            let mut sess = Session::new();
            let x = sess.tape.constant(batch.features.clone());
            let h = encoder.forward(&mut sess, &store, x, &ops, true, &mut rng);
            let summaries = sess.tape.segment_mean(h, batch.segments.clone(), idx.len());
            let wt = sess.param(&store, w);
            let hw = sess.tape.matmul(h, wt);
            // (n × G) node-vs-graph scores
            let logits = sess.tape.matmul_nt(hw, summaries);
            let targets = Arc::new(Matrix::from_fn(
                batch.segments.len(),
                idx.len(),
                |r, g| if batch.segments[r] as usize == g { 1.0 } else { 0.0 },
            ));
            let loss = sess.tape.bce_with_logits(logits, targets);
            let mut grads = sess.tape.backward(loss);
            adam.step(&mut store, &sess, &mut grads);
        }
    }
    eval_graph_embeddings(&encoder, &store, collection, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::collection::{generate, CollectionSpec};

    #[test]
    fn produces_one_embedding_per_graph() {
        let c = generate(&CollectionSpec::mutag().scaled(0.12), 1);
        let cfg = SslConfig { epochs: 2, ..SslConfig::fast() };
        let e = train(&c, &cfg, 8, 1);
        assert_eq!(e.shape(), (c.len(), cfg.hidden_dim));
        assert!(e.all_finite());
    }

    #[test]
    fn embeddings_separate_structural_classes_better_than_random() {
        use gcmae_eval::{cross_validate, SvmConfig};
        let c = generate(&CollectionSpec::imdb_b().scaled(0.1), 2);
        let cfg = SslConfig { epochs: 15, ..SslConfig::fast() };
        let e = train(&c, &cfg, 16, 2);
        let (acc, _) = cross_validate(&e, &c.labels, c.num_classes, 5, &SvmConfig::default(), 2);
        assert!(acc > 0.55, "accuracy {acc} should beat coin flip");
    }
}
