//! InfoGCL (Xu et al., NeurIPS 2021): information-aware graph contrastive
//! learning. Simplification (DESIGN.md): the information-bottleneck view
//! selection is approximated by greedily choosing the augmentation pair with
//! the *lowest* running contrastive loss — the pair that preserves the most
//! task-relevant mutual information — with ε-greedy exploration.

use gcmae_graph::GraphCollection;
use gcmae_tensor::Matrix;
use rand::Rng;

use crate::common::SslConfig;
use crate::graph_level::graphcl::train_with_pair_picker;
use crate::graph_level::Aug;

const EPSILON: f32 = 0.2;

/// Trains InfoGCL and returns one embedding per graph.
pub fn train(
    collection: &GraphCollection,
    cfg: &SslConfig,
    graphs_per_batch: usize,
    seed: u64,
) -> Matrix {
    train_with_pair_picker(collection, cfg, graphs_per_batch, seed, |rng, pair_loss| {
        let pool = Aug::pool();
        if rng.gen::<f32>() < EPSILON {
            return (pool[rng.gen_range(0..pool.len())], pool[rng.gen_range(0..pool.len())]);
        }
        let mut best = (0usize, 0usize);
        let mut best_loss = f32::MAX;
        for i in 0..4 {
            for j in 0..4 {
                if pair_loss[i][j] < best_loss {
                    best_loss = pair_loss[i][j];
                    best = (i, j);
                }
            }
        }
        (pool[best.0], pool[best.1])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::collection::{generate, CollectionSpec};

    #[test]
    fn produces_one_embedding_per_graph() {
        let c = generate(&CollectionSpec::mutag().scaled(0.12), 1);
        let cfg = SslConfig { epochs: 2, ..SslConfig::fast() };
        let e = train(&c, &cfg, 8, 1);
        assert_eq!(e.shape(), (c.len(), cfg.hidden_dim));
        assert!(e.all_finite());
    }
}
