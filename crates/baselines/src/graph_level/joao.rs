//! JOAO (You et al., ICML 2021): GraphCL with joint augmentation
//! optimization. Simplification (DESIGN.md): the min-max bilevel
//! optimization is replaced by its practical effect — sampling augmentation
//! pairs with probability proportional to their running contrastive loss
//! (prefer harder augmentations).

use gcmae_graph::GraphCollection;
use gcmae_tensor::Matrix;
use rand::Rng;

use crate::common::SslConfig;
use crate::graph_level::graphcl::train_with_pair_picker;
use crate::graph_level::Aug;

/// Trains JOAO and returns one embedding per graph.
pub fn train(
    collection: &GraphCollection,
    cfg: &SslConfig,
    graphs_per_batch: usize,
    seed: u64,
) -> Matrix {
    train_with_pair_picker(collection, cfg, graphs_per_batch, seed, |rng, pair_loss| {
        let pool = Aug::pool();
        // softmax over running losses → prefer hard pairs
        let mut weights = [[0.0f32; 4]; 4];
        let mut total = 0.0f32;
        for i in 0..4 {
            for j in 0..4 {
                let w = (pair_loss[i][j]).exp();
                weights[i][j] = w;
                total += w;
            }
        }
        let mut t = rng.gen_range(0.0..total);
        for i in 0..4 {
            for j in 0..4 {
                if t < weights[i][j] {
                    return (pool[i], pool[j]);
                }
                t -= weights[i][j];
            }
        }
        (pool[3], pool[3])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::collection::{generate, CollectionSpec};

    #[test]
    fn produces_one_embedding_per_graph() {
        let c = generate(&CollectionSpec::mutag().scaled(0.12), 1);
        let cfg = SslConfig { epochs: 2, ..SslConfig::fast() };
        let e = train(&c, &cfg, 8, 1);
        assert_eq!(e.shape(), (c.len(), cfg.hidden_dim));
        assert!(e.all_finite());
    }
}
