//! CCA-SSG (Zhang et al., NeurIPS 2021): canonical-correlation-analysis
//! self-supervised graph learning.
//!
//! Two augmented views are encoded and column-standardized; the loss is an
//! invariance term `‖Z₁ − Z₂‖²` plus decorrelation terms
//! `λ(‖Z₁ᵀZ₁ − I‖² + ‖Z₂ᵀZ₂ − I‖²)`. No negative pairs and no N×N
//! similarity matrix — which is why it is by far the fastest method in the
//! paper's Table 9.

use gcmae_graph::augment::{drop_edges, mask_feature_dims};
use gcmae_graph::Dataset;
use gcmae_nn::{Adam, Encoder, GraphOps, ParamStore, Session};
use gcmae_tensor::{Matrix, TensorId};

use crate::common::{eval_embed, method_rng, SslConfig};

/// Decorrelation weight λ.
const LAMBDA: f32 = 1e-3;

/// Trains CCA-SSG and returns eval-mode node embeddings.
pub fn train(ds: &Dataset, cfg: &SslConfig, seed: u64) -> Matrix {
    let mut rng = method_rng(seed, 0xcca);
    let mut store = ParamStore::new();
    let encoder = Encoder::new(&mut store, &cfg.encoder_config(ds.feature_dim()), &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let n = ds.num_nodes() as f32;
    for _ in 0..cfg.epochs {
        let mut sess = Session::new();
        let encode_view = |sess: &mut Session, rng: &mut rand::rngs::StdRng| -> TensorId {
            let g = drop_edges(&ds.graph, cfg.p_edge_drop, rng);
            let ops = GraphOps::new(&g);
            let x = sess.tape.constant(mask_feature_dims(&ds.features, cfg.p_feat_mask, rng));
            let h = encoder.forward(sess, &store, x, &ops, true, rng);
            let s = sess.tape.standardize_cols(h, 1e-5);
            sess.tape.scale(s, 1.0 / n.sqrt())
        };
        let z1 = encode_view(&mut sess, &mut rng);
        let z2 = encode_view(&mut sess, &mut rng);
        // invariance
        let diff = sess.tape.sub(z1, z2);
        let inv = sess.tape.frob_sq(diff);
        // decorrelation: ‖ZᵀZ − I‖²
        let d = cfg.hidden_dim;
        let eye = Matrix::identity(d);
        let decor_term = |sess: &mut Session, z: TensorId| -> TensorId {
            let zt = sess.tape.transpose(z);
            let gram = sess.tape.matmul(zt, z);
            let i = sess.tape.constant(eye.clone());
            let d = sess.tape.sub(gram, i);
            sess.tape.frob_sq(d)
        };
        let d1 = decor_term(&mut sess, z1);
        let d2 = decor_term(&mut sess, z2);
        let dec = sess.tape.add(d1, d2);
        let loss = sess.tape.add_scaled(inv, dec, LAMBDA);
        let mut grads = sess.tape.backward(loss);
        adam.step(&mut store, &sess, &mut grads);
    }
    eval_embed(&encoder, &store, ds, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    #[test]
    fn produces_finite_embeddings() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 1);
        let cfg = SslConfig { epochs: 5, ..SslConfig::fast() };
        let e = train(&ds, &cfg, 1);
        assert_eq!(e.shape(), (ds.num_nodes(), cfg.hidden_dim));
        assert!(e.all_finite());
    }

    #[test]
    fn training_decorrelates_dimensions() {
        let ds = generate(&CitationSpec::cora().scaled(0.03), 2);
        let cfg = SslConfig { hidden_dim: 8, epochs: 40, ..SslConfig::fast() };
        let e = train(&ds, &cfg, 2);
        // standardize then check the gram matrix is not wildly off-diagonal
        let n = e.rows();
        let mut means = [0.0f32; 8];
        for r in 0..n {
            for (m, &v) in means.iter_mut().zip(e.row(r)) {
                *m += v / n as f32;
            }
        }
        let mut offdiag = 0.0f32;
        let mut diag = 0.0f32;
        for a in 0..8 {
            for b in 0..8 {
                let mut c = 0.0f32;
                for r in 0..n {
                    c += (e[(r, a)] - means[a]) * (e[(r, b)] - means[b]);
                }
                if a == b {
                    diag += c.abs();
                } else {
                    offdiag += c.abs();
                }
            }
        }
        // 56 off-diag vs 8 diag entries: average |cov| off-diag should not
        // dominate the diagonal
        assert!(offdiag / 56.0 < diag / 8.0, "off {offdiag} diag {diag}");
    }
}
