//! BGRL (Thakoor et al., 2021): bootstrapped graph representation learning.
//!
//! **Extension** — discussed in the paper's related work (§6.1) but not in
//! its tables; included because it is the canonical *negative-free*
//! contrastive method and a useful ablation against InfoNCE-based branches.
//!
//! An online encoder + predictor is trained to match the embedding an
//! EMA *target* encoder produces for the other augmented view; no negative
//! pairs are used.

use gcmae_graph::augment::{drop_edges, mask_feature_dims};
use gcmae_graph::Dataset;
use gcmae_nn::{Act, Adam, Encoder, GraphOps, Mlp, ParamId, ParamStore, Session};
use gcmae_tensor::{Matrix, TensorId};

use crate::common::{eval_embed, method_rng, SslConfig};

/// EMA decay for the target network.
const EMA_TAU: f32 = 0.99;

/// Trains BGRL and returns eval-mode node embeddings (online encoder).
pub fn train(ds: &Dataset, cfg: &SslConfig, seed: u64) -> Matrix {
    let mut rng = method_rng(seed, 0xb9b1);
    // Online and target stores share the construction RNG stream so their
    // parameter layouts (and initial values) match exactly.
    let mut online = ParamStore::new();
    let encoder = {
        let mut init_rng = method_rng(seed, 0xb9b1_c0de);
        Encoder::new(&mut online, &cfg.encoder_config(ds.feature_dim()), &mut init_rng)
    };
    let mut target = ParamStore::new();
    let target_encoder = {
        let mut init_rng = method_rng(seed, 0xb9b1_c0de);
        Encoder::new(&mut target, &cfg.encoder_config(ds.feature_dim()), &mut init_rng)
    };
    let predictor =
        Mlp::new(&mut online, &[cfg.hidden_dim, cfg.hidden_dim, cfg.hidden_dim], Act::Elu, &mut rng);
    let encoder_params = target.len(); // encoder params precede predictor's
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let n = ds.num_nodes() as f32;

    for _ in 0..cfg.epochs {
        // two augmented views
        let g1 = drop_edges(&ds.graph, cfg.p_edge_drop, &mut rng);
        let g2 = drop_edges(&ds.graph, cfg.p_edge_drop, &mut rng);
        let x1 = mask_feature_dims(&ds.features, cfg.p_feat_mask, &mut rng);
        let x2 = mask_feature_dims(&ds.features, cfg.p_feat_mask, &mut rng);
        let ops1 = GraphOps::new(&g1);
        let ops2 = GraphOps::new(&g2);

        // target embeddings (no gradients): computed in throwaway sessions
        let target_of = |x: &Matrix, ops: &GraphOps, rng: &mut rand::rngs::StdRng| -> Matrix {
            let mut sess = Session::new();
            let xi = sess.tape.constant(x.clone());
            let h = target_encoder.forward(&mut sess, &target, xi, ops, false, rng);
            sess.tape.value(h).clone()
        };
        let t1 = target_of(&x1, &ops1, &mut rng);
        let t2 = target_of(&x2, &ops2, &mut rng);

        // online pass: predict the *other* view's target embedding
        let mut sess = Session::new();
        let xi1 = sess.tape.constant(x1);
        let xi2 = sess.tape.constant(x2);
        let h1 = encoder.forward(&mut sess, &online, xi1, &ops1, true, &mut rng);
        let h2 = encoder.forward(&mut sess, &online, xi2, &ops2, true, &mut rng);
        let q1 = predictor.forward(&mut sess, &online, h1);
        let q2 = predictor.forward(&mut sess, &online, h2);
        let l1 = cosine_loss(&mut sess, q1, t2, n);
        let l2 = cosine_loss(&mut sess, q2, t1, n);
        let loss = sess.tape.add(l1, l2);
        let mut grads = sess.tape.backward(loss);
        adam.step(&mut online, &sess, &mut grads);

        // EMA update of the target encoder
        for i in 0..encoder_params {
            let id = ParamId::from_index(i);
            let online_v = online.value(id).clone();
            let tp = target.param_mut(id);
            for (t, &o) in tp.value.as_mut_slice().iter_mut().zip(online_v.as_slice()) {
                *t = EMA_TAU * *t + (1.0 - EMA_TAU) * o;
            }
        }
    }
    eval_embed(&encoder, &online, ds, &mut rng)
}

/// `(1/n) Σ_i (1 − cos(q_i, t_i))` with `t` constant (stop-gradient).
fn cosine_loss(sess: &mut Session, q: TensorId, t: Matrix, n: f32) -> TensorId {
    let qn = sess.tape.row_normalize(q);
    let mut tn = t;
    for r in 0..tn.rows() {
        let norm = tn.row_norm(r).max(1e-8);
        for v in tn.row_mut(r) {
            *v /= norm;
        }
    }
    let tc = sess.tape.constant(tn);
    let prod = sess.tape.hadamard(qn, tc);
    let s = sess.tape.sum_all(prod);
    // 1 − mean cos  ==  1 − s/n; the constant offset does not affect grads
    sess.tape.scale(s, -1.0 / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    #[test]
    fn produces_finite_embeddings() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 1);
        let cfg = SslConfig { epochs: 5, ..SslConfig::fast() };
        let e = train(&ds, &cfg, 1);
        assert_eq!(e.shape(), (ds.num_nodes(), cfg.hidden_dim));
        assert!(e.all_finite());
    }

    #[test]
    fn does_not_collapse_without_negatives() {
        // the EMA target + predictor asymmetry should prevent constant
        // embeddings even though there are no negative pairs
        let ds = generate(&CitationSpec::cora().scaled(0.03), 2);
        let cfg = SslConfig { epochs: 15, ..SslConfig::fast() };
        let e = train(&ds, &cfg, 2);
        let mut distinct = 0;
        for r in 1..e.rows() {
            if e.row(r) != e.row(0) {
                distinct += 1;
            }
        }
        assert!(distinct > e.rows() / 2, "embeddings collapsed");
    }
}
