//! S2GAE (Tan et al., WSDM 2023): self-supervised graph autoencoder with
//! edge masking and a cross-correlation decoder.
//!
//! Simplification (documented in DESIGN.md): the original decodes from every
//! intermediate layer; we decode from the final representation with an MLP
//! over the Hadamard edge features, which preserves its distinguishing
//! property versus MaskGAE (a learned scorer instead of a raw dot product).

use std::sync::Arc;

use gcmae_graph::sampling::sample_non_edges;
use gcmae_graph::{Dataset, Graph};
use gcmae_nn::{Act, Adam, Encoder, GraphOps, Mlp, ParamStore, Session};
use gcmae_tensor::Matrix;
use rand::Rng;

use crate::common::{edge_targets, eval_embed, method_rng, SslConfig};

/// Edge mask rate (S2GAE masks half the edges by default).
const EDGE_MASK: f32 = 0.5;

/// Trains S2GAE and returns eval-mode node embeddings.
pub fn train(ds: &Dataset, cfg: &SslConfig, seed: u64) -> Matrix {
    let mut rng = method_rng(seed, 0x529ae);
    let mut store = ParamStore::new();
    let encoder = Encoder::new(&mut store, &cfg.encoder_config(ds.feature_dim()), &mut rng);
    let scorer = Mlp::new(&mut store, &[cfg.hidden_dim, cfg.hidden_dim / 2, 1], Act::Relu, &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let all_edges: Vec<(usize, usize)> = ds.graph.undirected_edges().collect();
    for _ in 0..cfg.epochs {
        let mut sess = Session::new();
        let mut visible = Vec::with_capacity(all_edges.len());
        let mut masked = vec![];
        for &e in &all_edges {
            if rng.gen::<f32>() < EDGE_MASK {
                masked.push(e);
            } else {
                visible.push(e);
            }
        }
        if masked.is_empty() || visible.is_empty() {
            continue;
        }
        let vis_graph = Graph::from_edges(ds.num_nodes(), &visible);
        let ops = GraphOps::new(&vis_graph);
        let x = sess.tape.constant(ds.features.clone());
        let h = encoder.forward(&mut sess, &store, x, &ops, true, &mut rng);
        let negs = sample_non_edges(&ds.graph, masked.len(), &mut rng);
        let mut pairs = masked.clone();
        pairs.extend(&negs);
        // learned cross-correlation scorer on h_u ⊙ h_v
        let us: Vec<usize> = pairs.iter().map(|&(u, _)| u).collect();
        let vs: Vec<usize> = pairs.iter().map(|&(_, v)| v).collect();
        let hu = sess.tape.gather_rows(h, us);
        let hv = sess.tape.gather_rows(h, vs);
        let prod = sess.tape.hadamard(hu, hv);
        let logits = scorer.forward(&mut sess, &store, prod);
        let targets = Arc::new(edge_targets(masked.len(), negs.len()));
        let loss = sess.tape.bce_with_logits(logits, targets);
        let mut grads = sess.tape.backward(loss);
        adam.step(&mut store, &sess, &mut grads);
    }
    eval_embed(&encoder, &store, ds, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    #[test]
    fn produces_finite_embeddings() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 1);
        let cfg = SslConfig { epochs: 5, ..SslConfig::fast() };
        let e = train(&ds, &cfg, 1);
        assert_eq!(e.shape(), (ds.num_nodes(), cfg.hidden_dim));
        assert!(e.all_finite());
    }
}
