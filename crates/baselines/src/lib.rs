// Indexed loops over parallel arrays are idiomatic in this numeric code.
#![allow(clippy::needless_range_loop)]

//! # gcmae-baselines
//!
//! The 17 comparison methods from the GCMAE paper's evaluation:
//!
//! * **Contrastive (node)** — [`dgi`], [`mvgrl`], [`grace`], [`cca_ssg`]
//! * **MAE (node)** — [`graphmae`], [`seegera`], [`s2gae`], [`maskgae`]
//! * **Supervised** — [`supervised`] (GCN, GAT)
//! * **Contrastive (graph)** — [`graph_level::infograph`],
//!   [`graph_level::graphcl`], [`graph_level::joao`],
//!   [`graph_level::infogcl`]
//! * **Deep clustering** — [`clustering::gc_vge`], [`clustering::scgc`],
//!   [`clustering::gcc`]
//! * **Extensions** (related-work methods, not in the paper's tables) —
//!   [`bgrl`] (negative-free bootstrap), [`gca`] (adaptive augmentation)
//!
//! Every node-level method exposes `train(&Dataset, &SslConfig, seed) ->
//! Matrix` returning frozen embeddings; evaluation is shared downstream
//! (`gcmae-eval`). Simplifications versus the original papers are noted in
//! each module header and in DESIGN.md.

pub mod bgrl;
pub mod cca_ssg;
pub mod clustering;
pub mod common;
pub mod dgi;
pub mod gca;
pub mod grace;
pub mod graph_level;
pub mod graphmae;
pub mod maskgae;
pub mod mvgrl;
pub mod s2gae;
pub mod seegera;
pub mod supervised;

pub use common::SslConfig;
pub use supervised::SupervisedConfig;
