//! MVGRL (Hassani & Khasahmadi, ICML 2020): contrastive multi-view
//! representation learning on graphs.
//!
//! One view is the adjacency, the other a PPR diffusion; each has its own
//! encoder, and node embeddings of one view are contrasted against the
//! *graph* summary of the other (cross-view DGI-style discrimination).
//! The final representation is the sum of the two views' embeddings.

use std::sync::Arc;

use gcmae_graph::augment::{ppr_diffusion, shuffle_rows};
use gcmae_graph::Dataset;
use gcmae_nn::{Adam, Encoder, GraphOps, ParamStore, Session};
use gcmae_tensor::{init, Matrix, SharedCsr, TensorId};

use crate::common::{method_rng, SslConfig};

/// Trains MVGRL and returns eval-mode node embeddings (sum of both views).
pub fn train(ds: &Dataset, cfg: &SslConfig, seed: u64) -> Matrix {
    let mut rng = method_rng(seed, 0x309261);
    let mut store = ParamStore::new();
    let enc_adj = Encoder::new(&mut store, &cfg.encoder_config(ds.feature_dim()), &mut rng);
    let enc_dif = Encoder::new(&mut store, &cfg.encoder_config(ds.feature_dim()), &mut rng);
    let w = store.create(init::glorot_uniform(cfg.hidden_dim, cfg.hidden_dim, &mut rng));
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let ops = GraphOps::new(&ds.graph);
    let diffusion = ppr_diffusion(&ds.graph, 0.2, 4, 16);
    let diffusion_t: SharedCsr = Arc::new(diffusion.transposed());
    let n = ds.num_nodes();

    // encoder over the diffusion operator: reuse the GCN stack but replace
    // the gcn operator with the diffusion matrix
    let dif_ops = GraphOps::with_message_operator(&ds.graph, diffusion, diffusion_t);

    for _ in 0..cfg.epochs {
        let mut sess = Session::new();
        let x = sess.tape.constant(ds.features.clone());
        let xc = sess.tape.constant(shuffle_rows(&ds.features, &mut rng));
        let h1 = enc_adj.forward(&mut sess, &store, x, &ops, true, &mut rng);
        let h2 = enc_dif.forward(&mut sess, &store, x, &dif_ops, true, &mut rng);
        let h1c = enc_adj.forward(&mut sess, &store, xc, &ops, true, &mut rng);
        let h2c = enc_dif.forward(&mut sess, &store, xc, &dif_ops, true, &mut rng);
        let s1 = summary(&mut sess, h1);
        let s2 = summary(&mut sess, h2);
        let wt = sess.param(&store, w);
        // cross-view discrimination: nodes of view 1 vs summary of view 2
        // (and vice versa); corrupted nodes are negatives
        let bce = |sess: &mut Session, h: TensorId, s: TensorId, label: f32| -> TensorId {
            let hw = sess.tape.matmul(h, wt);
            let logits = sess.tape.matmul_nt(hw, s);
            let t = Arc::new(Matrix::full(n, 1, label));
            sess.tape.bce_with_logits(logits, t)
        };
        let l1 = bce(&mut sess, h1, s2, 1.0);
        let l2 = bce(&mut sess, h2, s1, 1.0);
        let l3 = bce(&mut sess, h1c, s2, 0.0);
        let l4 = bce(&mut sess, h2c, s1, 0.0);
        let a = sess.tape.add(l1, l2);
        let b = sess.tape.add(l3, l4);
        let sum = sess.tape.add(a, b);
        let loss = sess.tape.scale(sum, 0.25);
        let mut grads = sess.tape.backward(loss);
        adam.step(&mut store, &sess, &mut grads);
    }

    // final embedding: H_adj + H_diff in eval mode
    let mut sess = Session::new();
    let x = sess.tape.constant(ds.features.clone());
    let h1 = enc_adj.forward(&mut sess, &store, x, &ops, false, &mut rng);
    let h2 = enc_dif.forward(&mut sess, &store, x, &dif_ops, false, &mut rng);
    let sum = sess.tape.add(h1, h2);
    sess.tape.value(sum).clone()
}

fn summary(sess: &mut Session, h: TensorId) -> TensorId {
    let m = sess.tape.mean_rows(h);
    sess.tape.sigmoid(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    #[test]
    fn produces_finite_embeddings() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 1);
        let cfg = SslConfig { epochs: 4, ..SslConfig::fast() };
        let e = train(&ds, &cfg, 1);
        assert_eq!(e.shape(), (ds.num_nodes(), cfg.hidden_dim));
        assert!(e.all_finite());
    }
}
