//! GraphMAE (Hou et al., KDD 2022): masked feature reconstruction with a
//! re-mask step and scaled cosine error — the paper's backbone.

use std::sync::Arc;

use gcmae_graph::augment::mask_node_features;
use gcmae_graph::Dataset;
use gcmae_nn::{Act, Adam, Encoder, EncoderConfig, GraphOps, ParamStore, Session};
use gcmae_tensor::Matrix;

use crate::common::{eval_embed, method_rng, SslConfig};

/// SCE sharpening exponent (GraphMAE default).
const GAMMA: f32 = 2.0;

/// Trains GraphMAE and returns eval-mode node embeddings.
pub fn train(ds: &Dataset, cfg: &SslConfig, seed: u64) -> Matrix {
    let mut rng = method_rng(seed, 0x93ae);
    let mut store = ParamStore::new();
    let encoder = Encoder::new(&mut store, &cfg.encoder_config(ds.feature_dim()), &mut rng);
    let dec_cfg = EncoderConfig {
        kind: cfg.encoder,
        in_dim: cfg.hidden_dim,
        hidden_dim: cfg.hidden_dim,
        out_dim: ds.feature_dim(),
        layers: 1,
        act: Act::Elu,
        dropout: 0.0,
    };
    let decoder = Encoder::new(&mut store, &dec_cfg, &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let ops = GraphOps::new(&ds.graph);
    let target = Arc::new(ds.features.clone());
    for _ in 0..cfg.epochs {
        let mut sess = Session::new();
        let masked = mask_node_features(&ds.features, cfg.p_node_mask, &mut rng);
        let x = sess.tape.constant(masked.features);
        let h = encoder.forward(&mut sess, &store, x, &ops, true, &mut rng);
        // re-mask before decoding (GraphMAE's key trick)
        let h_rm = sess.tape.mask_rows(h, masked.masked.clone());
        let z = decoder.forward(&mut sess, &store, h_rm, &ops, true, &mut rng);
        let loss = sess.tape.sce_loss(z, target.clone(), masked.masked, GAMMA);
        let mut grads = sess.tape.backward(loss);
        adam.step(&mut store, &sess, &mut grads);
    }
    eval_embed(&encoder, &store, ds, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    #[test]
    fn reconstruction_loss_decreases() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 1);
        let cfg = SslConfig { epochs: 1, ..SslConfig::fast() };
        // train twice with different epoch budgets; longer training should
        // produce different (better-fit) weights — here we at least assert
        // the pipeline runs end-to-end and stays finite
        let e1 = train(&ds, &cfg, 1);
        let cfg20 = SslConfig { epochs: 20, ..SslConfig::fast() };
        let e2 = train(&ds, &cfg20, 1);
        assert!(e1.all_finite() && e2.all_finite());
        assert!(e1.max_abs_diff(&e2) > 0.0, "training had no effect");
    }

    #[test]
    fn works_with_gat_encoder() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 2);
        let cfg = SslConfig {
            encoder: gcmae_nn::EncoderKind::Gat { heads: 2 },
            epochs: 3,
            ..SslConfig::fast()
        };
        let e = train(&ds, &cfg, 2);
        assert_eq!(e.shape(), (ds.num_nodes(), cfg.hidden_dim));
    }
}
