//! Deep Graph Infomax (Veličković et al., ICLR 2019).
//!
//! Maximizes mutual information between node embeddings and a graph summary:
//! positives are real node embeddings, negatives come from a row-shuffled
//! feature corruption, and a bilinear discriminator scores both against the
//! sigmoid of the mean embedding.

use std::sync::Arc;

use gcmae_graph::augment::shuffle_rows;
use gcmae_graph::Dataset;
use gcmae_nn::{Adam, Encoder, GraphOps, ParamStore, Session};
use gcmae_tensor::{init, Matrix};

use crate::common::{eval_embed, method_rng, SslConfig};

/// Trains DGI and returns eval-mode node embeddings.
pub fn train(ds: &Dataset, cfg: &SslConfig, seed: u64) -> Matrix {
    let mut rng = method_rng(seed, 0xd91);
    let mut store = ParamStore::new();
    let encoder = Encoder::new(&mut store, &cfg.encoder_config(ds.feature_dim()), &mut rng);
    let w = store.create(init::glorot_uniform(cfg.hidden_dim, cfg.hidden_dim, &mut rng));
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let ops = GraphOps::new(&ds.graph);
    let n = ds.num_nodes();
    for _ in 0..cfg.epochs {
        let mut sess = Session::new();
        let x = sess.tape.constant(ds.features.clone());
        let h = encoder.forward(&mut sess, &store, x, &ops, true, &mut rng);
        let xc = sess.tape.constant(shuffle_rows(&ds.features, &mut rng));
        let hc = encoder.forward(&mut sess, &store, xc, &ops, true, &mut rng);
        // summary s = σ(mean(h)) (1 × d)
        let s = sess.tape.mean_rows(h);
        let s = sess.tape.sigmoid(s);
        // bilinear scores: (H W) sᵀ
        let wt = sess.param(&store, w);
        let hw = sess.tape.matmul(h, wt);
        let pos = sess.tape.matmul_nt(hw, s);
        let hcw = sess.tape.matmul(hc, wt);
        let neg = sess.tape.matmul_nt(hcw, s);
        // BCE on positives (label 1) and corrupted negatives (label 0)
        let t_pos = Arc::new(Matrix::full(n, 1, 1.0));
        let t_neg = Arc::new(Matrix::zeros(n, 1));
        let lp = sess.tape.bce_with_logits(pos, t_pos);
        let ln = sess.tape.bce_with_logits(neg, t_neg);
        let both = sess.tape.add_scaled(lp, ln, 1.0);
        let loss = sess.tape.scale(both, 0.5);
        let mut grads = sess.tape.backward(loss);
        adam.step(&mut store, &sess, &mut grads);
    }
    eval_embed(&encoder, &store, ds, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    #[test]
    fn produces_finite_embeddings() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 1);
        let cfg = SslConfig { epochs: 5, ..SslConfig::fast() };
        let e = train(&ds, &cfg, 1);
        assert_eq!(e.shape(), (ds.num_nodes(), cfg.hidden_dim));
        assert!(e.all_finite());
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 2);
        let cfg = SslConfig { epochs: 3, ..SslConfig::fast() };
        let a = train(&ds, &cfg, 7);
        let b = train(&ds, &cfg, 7);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }
}
