//! Supervised GCN/GAT baselines (Table 4): end-to-end cross-entropy on the
//! labeled training nodes, early selection on validation accuracy.

use gcmae_graph::{Dataset, NodeSplit};
use gcmae_nn::{Act, Adam, Encoder, EncoderConfig, EncoderKind, GraphOps, ParamStore, Session};
use gcmae_tensor::ops::softmax_ce::predict;

use crate::common::method_rng;

/// Supervised training configuration.
#[derive(Clone, Debug)]
pub struct SupervisedConfig {
    /// kind.
    pub kind: EncoderKind,
    /// hidden dim.
    pub hidden_dim: usize,
    /// layers.
    pub layers: usize,
    /// epochs.
    pub epochs: usize,
    /// lr.
    pub lr: f32,
    /// weight decay.
    pub weight_decay: f32,
    /// dropout.
    pub dropout: f32,
}

impl SupervisedConfig {
    /// 2-layer GCN with the classic planetoid hyper-parameters.
    pub fn gcn() -> Self {
        Self {
            kind: EncoderKind::Gcn,
            hidden_dim: 64,
            layers: 2,
            epochs: 200,
            lr: 0.01,
            weight_decay: 5e-4,
            dropout: 0.5,
        }
    }

    /// 2-layer GAT with 4 heads.
    pub fn gat() -> Self {
        Self { kind: EncoderKind::Gat { heads: 4 }, ..Self::gcn() }
    }

    /// Fast preset for tests.
    pub fn fast(kind: EncoderKind) -> Self {
        Self { kind, hidden_dim: 16, epochs: 40, ..Self::gcn() }
    }
}

/// Trains a supervised GNN and returns test accuracy (best-validation
/// checkpointing, matching common planetoid protocol).
pub fn train(ds: &Dataset, split: &NodeSplit, cfg: &SupervisedConfig, seed: u64) -> f64 {
    let mut rng = method_rng(seed, 0x5093);
    let mut store = ParamStore::new();
    let enc_cfg = EncoderConfig {
        kind: cfg.kind,
        in_dim: ds.feature_dim(),
        hidden_dim: cfg.hidden_dim,
        out_dim: ds.num_classes,
        layers: cfg.layers,
        act: Act::Elu,
        dropout: cfg.dropout,
    };
    let model = Encoder::new(&mut store, &enc_cfg, &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let ops = GraphOps::new(&ds.graph);
    let train_labels: Vec<usize> = split.train.iter().map(|&v| ds.labels[v]).collect();
    let mut best_val = -1.0f64;
    let mut best_test = 0.0f64;
    for _ in 0..cfg.epochs {
        let mut sess = Session::new();
        let x = sess.tape.constant(ds.features.clone());
        let logits = model.forward(&mut sess, &store, x, &ops, true, &mut rng);
        let loss = sess.tape.softmax_ce(logits, split.train.clone(), train_labels.clone());
        // eval-mode predictions for selection
        let mut eval_sess = Session::new();
        let xe = eval_sess.tape.constant(ds.features.clone());
        let le = model.forward(&mut eval_sess, &store, xe, &ops, false, &mut rng);
        let preds = predict(eval_sess.tape.value(le));
        let acc_on = |nodes: &[usize]| -> f64 {
            if nodes.is_empty() {
                return 1.0;
            }
            let hit = nodes.iter().filter(|&&v| preds[v] == ds.labels[v]).count();
            hit as f64 / nodes.len() as f64
        };
        let val = acc_on(&split.val);
        if val > best_val {
            best_val = val;
            best_test = acc_on(&split.test);
        }
        let mut grads = sess.tape.backward(loss);
        adam.step(&mut store, &sess, &mut grads);
    }
    best_test
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};
    use gcmae_graph::splits::planetoid_split;

    #[test]
    fn gcn_beats_chance_on_homophilous_graph() {
        let ds = generate(&CitationSpec::cora().scaled(0.05), 1);
        let mut rng = method_rng(1, 1);
        let split = planetoid_split(&ds.labels, ds.num_classes, 5, 30, &mut rng);
        let acc = train(&ds, &split, &SupervisedConfig::fast(gcmae_nn::EncoderKind::Gcn), 1);
        assert!(acc > 1.5 / ds.num_classes as f64, "accuracy {acc}");
    }

    #[test]
    fn gat_runs_end_to_end() {
        let ds = generate(&CitationSpec::cora().scaled(0.03), 2);
        let mut rng = method_rng(2, 2);
        let split = planetoid_split(&ds.labels, ds.num_classes, 5, 20, &mut rng);
        let cfg = SupervisedConfig::fast(gcmae_nn::EncoderKind::Gat { heads: 2 });
        let acc = train(&ds, &split, &cfg, 2);
        assert!((0.0..=1.0).contains(&acc));
    }
}
