//! Arena-reuse regression test. Runs alone in its own binary because it
//! installs the process-global observer and reads the process-global buffer
//! pool's counters: after the first training step has populated the pool,
//! later identical steps must be served entirely from recycled buffers —
//! zero arena misses, i.e. zero new tape/gradient/scratch allocations.

use std::sync::Arc;

use gcmae_core::{Gcmae, GcmaeConfig, StepGuard};
use gcmae_graph::generators::citation::{generate, CitationSpec};
use gcmae_nn::Adam;
use gcmae_obs::Registry;
use gcmae_tensor::ArenaGuard;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn second_step_allocates_nothing_new() {
    let reg = Arc::new(Registry::new());
    gcmae_obs::install(reg.clone());

    let ds = generate(&CitationSpec::cora().scaled(0.02), 11);
    let cfg = GcmaeConfig {
        hidden_dim: 16,
        proj_dim: 8,
        epochs: 1,
        ..GcmaeConfig::fast()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = Gcmae::new(&cfg, ds.feature_dim(), &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let guard = StepGuard::off();

    // Hold the arena open across steps, as the training session does.
    let _arena = ArenaGuard::new();

    // Step 1 populates the pool (every take is a miss on a cold pool).
    model
        .step(&ds.graph, &ds.features, &mut adam, &mut rng, &guard)
        .expect("unguarded step cannot fault");
    let takes_1 = reg.counter_value("arena.take.hit") + reg.counter_value("arena.take.miss");
    let miss_1 = reg.counter_value("arena.take.miss");
    assert!(takes_1 > 0, "training must route buffers through the arena");

    // Steps 2 and 3 run the same shapes: all takes must now be pool hits.
    for step in 2..4 {
        model
            .step(&ds.graph, &ds.features, &mut adam, &mut rng, &guard)
            .expect("unguarded step cannot fault");
        let miss = reg.counter_value("arena.take.miss");
        assert_eq!(
            miss - miss_1,
            0,
            "step {step} allocated fresh buffers instead of recycling"
        );
    }
    let takes_3 = reg.counter_value("arena.take.hit") + reg.counter_value("arena.take.miss");
    assert!(takes_3 > takes_1, "later steps kept using the arena");

    // The guard exported pool telemetry while active.
    let snap = reg.snapshot();
    assert!(
        snap.gauges.iter().any(|(k, _)| k == "arena.retained_bytes"),
        "arena gauges missing from registry: {:?}",
        snap.gauges.iter().map(|(k, _)| k).collect::<Vec<_>>()
    );

    gcmae_obs::uninstall();
}
