//! The unified training entrypoint: [`TrainSession`].
//!
//! One builder replaces the removed `train` / `train_checked` /
//! `train_checked_traced` / `resume_checked` family (see the migration table
//! in [`crate::trainer`]):
//!
//! ```
//! use gcmae_core::{GcmaeConfig, TrainSession};
//! use gcmae_graph::generators::citation::{generate, CitationSpec};
//!
//! let ds = generate(&CitationSpec::cora().scaled(0.02), 0);
//! let cfg = GcmaeConfig { epochs: 3, hidden_dim: 16, proj_dim: 8, ..GcmaeConfig::fast() };
//! let out = TrainSession::new(&cfg).seed(0).run(&ds).unwrap();
//! assert_eq!(out.embeddings.rows(), ds.num_nodes());
//! ```
//!
//! Two execution regimes, chosen by the builder:
//!
//! * **Unguarded** (default): the original single-RNG loop. Cheapest, but a
//!   `NaN` poisons the run silently and a crash loses it.
//! * **Guarded** (after [`TrainSession::guards`] or
//!   [`TrainSession::resume_from`]): every step is scanned for non-finite
//!   losses/gradients, kernel panics are contained, faults roll back to the
//!   last good checkpoint with learning-rate backoff, and each epoch draws
//!   from its own `(seed, epoch)` RNG stream so resumed runs replay the bit
//!   pattern of uninterrupted ones.
//!
//! Telemetry ([`TrainSession::observer`]) is a pure tap in either regime:
//! observers only read values the loop already computed, so attaching one —
//! including [`gcmae_obs::NoopObserver`] — leaves every output bit-identical.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use gcmae_graph::sampling::walk_subgraph;
use gcmae_graph::Dataset;
use gcmae_nn::{load_train_state, save_train_state, Adam, Bytes, TrainMeta};
use gcmae_obs::{Observer, Value};
use rand::rngs::StdRng;

use crate::config::{FaultTolerance, GcmaeConfig};
use crate::fault::{self, FaultPlan, RollbackEvent, StepFault, StepGuard, TrainError};
use crate::model::{seeded_rng, Gcmae, LossBreakdown, StepReport};
use crate::trainer::{EpochView, TrainOutput};

/// Builder for one training run. See the [module docs](self) for the two
/// execution regimes; `run` consumes the builder.
pub struct TrainSession<'a> {
    cfg: GcmaeConfig,
    seed: u64,
    guards: Option<FaultTolerance>,
    observer: Option<Arc<dyn Observer>>,
    resume_from: Option<Bytes>,
    plan: FaultPlan,
    backend: Option<gcmae_tensor::Backend>,
    #[allow(clippy::type_complexity)]
    on_epoch: Option<Box<dyn FnMut(usize, &EpochView) + 'a>>,
}

impl<'a> TrainSession<'a> {
    /// Starts configuring a run with `cfg` (seed 0, no guards, no observer).
    pub fn new(cfg: &GcmaeConfig) -> Self {
        Self {
            cfg: cfg.clone(),
            seed: 0,
            guards: None,
            observer: None,
            resume_from: None,
            plan: FaultPlan::default(),
            backend: None,
            on_epoch: None,
        }
    }

    /// Selects the kernel backend for this run ([`gcmae_tensor::Backend`]).
    ///
    /// The selection is applied process-wide when `run` starts (backends are
    /// a process-global property of the kernel layer, like the thread pool);
    /// requesting `Simd` on a host without AVX2+FMA silently falls back to
    /// `Reference`. The default — no call, no `GCMAE_KERNEL_BACKEND` env
    /// override — is the bit-exact `Reference` backend; under `Simd`, losses
    /// and embeddings differ from `Reference` within rounding tolerance (FMA
    /// contraction), not bit-for-bit.
    pub fn backend(mut self, b: gcmae_tensor::Backend) -> Self {
        self.backend = Some(b);
        self
    }

    /// Sets the RNG seed (ignored when resuming — the checkpoint carries
    /// its own seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the guarded regime with the given fault-tolerance policy.
    pub fn guards(mut self, ft: &FaultTolerance) -> Self {
        self.guards = Some(ft.clone());
        self
    }

    /// Attaches a telemetry observer. The session emits a `train.step`
    /// event per optimizer step (all four loss terms, gradient norm,
    /// learning rate) and a `train.rollback` event per recovery; it never
    /// feeds anything back into the run, so outputs stay bit-identical.
    pub fn observer(mut self, obs: Arc<dyn Observer>) -> Self {
        self.observer = Some(obs);
        self
    }

    /// Resumes from v2 training-state bytes (see [`EpochView::checkpoint`]).
    /// Implies the guarded regime (with [`FaultTolerance::default`] unless
    /// [`TrainSession::guards`] is also set); the continuation is
    /// bit-identical to the uninterrupted guarded run.
    pub fn resume_from(mut self, state: Bytes) -> Self {
        self.resume_from = Some(state);
        self
    }

    /// Registers a per-epoch callback. In the guarded regime
    /// [`EpochView::checkpoint`] bytes resume bit-identically; a checkpoint
    /// taken from an unguarded session resumes under guarded RNG streams
    /// instead (the unguarded loop threads one RNG and its state is not
    /// serializable).
    pub fn on_epoch(mut self, f: impl FnMut(usize, &EpochView) + 'a) -> Self {
        self.on_epoch = Some(Box::new(f));
        self
    }

    /// Test-only deterministic fault injection; hidden because production
    /// code has no business injecting faults.
    #[doc(hidden)]
    pub fn inject_faults(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Runs the session to completion. Only the guarded regime can fail;
    /// an unguarded session always returns `Ok`.
    pub fn run(mut self, ds: &Dataset) -> Result<TrainOutput, TrainError> {
        if let Some(b) = self.backend {
            gcmae_tensor::backend::set_backend(b);
        }
        // Record the backend/CPU resolution in this session's telemetry (and
        // the global observer, if one is installed).
        if let Some(obs) = self.observer.as_deref() {
            gcmae_tensor::backend::publish_to(obs);
        }
        gcmae_tensor::backend::publish();
        if self.guards.is_some() || self.resume_from.is_some() {
            let ft = self.guards.take().unwrap_or_default();
            self.run_guarded(ds, &ft)
        } else {
            Ok(self.run_unguarded(ds))
        }
    }

    /// The original unchecked loop: one RNG threads through everything.
    fn run_unguarded(mut self, ds: &Dataset) -> TrainOutput {
        // Hold the tensor buffer arena open for the whole run so every step
        // after the first recycles the previous step's tape, gradient, and
        // scratch buffers instead of hitting the allocator.
        let _arena = gcmae_tensor::ArenaGuard::new();
        let seed = self.seed;
        let mut rng = seeded_rng(seed);
        let mut model = Gcmae::new(&self.cfg, ds.feature_dim(), &mut rng);
        let mut adam = Adam::new(self.cfg.lr, self.cfg.weight_decay);
        let mut history = Vec::with_capacity(self.cfg.epochs);
        let start = Instant::now();
        for epoch in 0..self.cfg.epochs {
            let breakdown = run_one_epoch(
                &mut model,
                &mut adam,
                ds,
                &self.cfg,
                &StepGuard::off(),
                &mut rng,
                self.observer.as_deref(),
                epoch,
            )
            .unwrap_or_else(|f| unreachable!("guards disabled but step faulted: {f}"));
            history.push(breakdown);
            if let Some(f) = self.on_epoch.as_mut() {
                let meta = TrainMeta {
                    epoch: epoch as u64 + 1,
                    adam_step: adam.step_count(),
                    lr: adam.lr,
                    rng_seed: seed,
                    retries_used: 0,
                };
                f(
                    epoch,
                    &EpochView {
                        model: &model,
                        meta,
                    },
                );
            }
        }
        let train_seconds = start.elapsed().as_secs_f64();
        let embeddings = model.encode_dataset(ds);
        TrainOutput {
            embeddings,
            history,
            train_seconds,
            model,
            rollbacks: vec![],
        }
    }

    /// The guarded loop: checkpoint/rollback recovery with per-epoch RNG
    /// streams.
    fn run_guarded(mut self, ds: &Dataset, ft: &FaultTolerance) -> Result<TrainOutput, TrainError> {
        // Same arena scope as the unguarded loop. A contained kernel panic
        // may leak that step's outstanding buffers, but the pool itself stays
        // consistent (recycling is per-buffer, not scoped), so recovery just
        // repopulates it.
        let _arena = gcmae_tensor::ArenaGuard::new();
        let cfg = self.cfg.clone();
        let mut plan = self.plan.clone();
        // The architecture is deterministic in `cfg`; when resuming, the
        // init draws below are overwritten wholesale by the checkpoint, so
        // the init seed is moot.
        let mut init_rng = seeded_rng(if self.resume_from.is_some() {
            0
        } else {
            self.seed
        });
        let mut model = Gcmae::new(&cfg, ds.feature_dim(), &mut init_rng);
        let start = match self.resume_from.take() {
            Some(state) => load_train_state(&mut model.store, state)?,
            None => TrainMeta {
                epoch: 0,
                adam_step: 0,
                lr: cfg.lr,
                rng_seed: self.seed,
                retries_used: 0,
            },
        };

        let seed = start.rng_seed;
        let first_epoch = start.epoch as usize;
        let mut adam = Adam::new(start.lr, cfg.weight_decay);
        adam.set_step_count(start.adam_step);
        let mut retries = start.retries_used;
        let mut history: Vec<LossBreakdown> = vec![];
        let mut rollbacks = vec![];
        let timer = Instant::now();
        let obs = self.observer.clone();

        let meta_at = |epoch: usize, adam: &Adam, retries: u32| TrainMeta {
            epoch: epoch as u64,
            adam_step: adam.step_count(),
            lr: adam.lr,
            rng_seed: seed,
            retries_used: retries,
        };
        // The rollback target must exist before the first step, so a
        // divergence at epoch 0 still has somewhere to go.
        let mut good = save_train_state(&model.store, &meta_at(first_epoch, &adam, retries));
        let mut good_epoch = first_epoch;
        if plan.truncate_checkpoint {
            good = good.slice(0..good.len() / 2);
        }

        let mut epoch = first_epoch;
        while epoch < cfg.epochs {
            let guard = StepGuard {
                check_finite: true,
                clip_norm: ft.clip_norm,
                poison_loss: plan.nan_loss_at.take_if(|&mut e| e == epoch).is_some(),
                poison_grad: plan.nan_grad_at.take_if(|&mut e| e == epoch).is_some(),
            };
            let detonate = plan.panic_at.take_if(|&mut e| e == epoch).is_some();

            let mut rng = epoch_rng(seed, epoch);
            // A panic mid-step can leave a half-applied optimizer update
            // behind; that is fine because the only way forward from here is
            // a full state restore from `good`.
            let step = catch_unwind(AssertUnwindSafe(|| {
                if detonate {
                    fault::detonate_parallel_panic();
                }
                run_one_epoch(
                    &mut model,
                    &mut adam,
                    ds,
                    &cfg,
                    &guard,
                    &mut rng,
                    obs.as_deref(),
                    epoch,
                )
            }));
            let fault = match step {
                Ok(Ok(breakdown)) => {
                    history.push(breakdown);
                    epoch += 1;
                    if let Some(f) = self.on_epoch.as_mut() {
                        f(
                            epoch - 1,
                            &EpochView {
                                model: &model,
                                meta: meta_at(epoch, &adam, retries),
                            },
                        );
                    }
                    if ft.checkpoint_every > 0 && (epoch - first_epoch) % ft.checkpoint_every == 0 {
                        good = save_train_state(&model.store, &meta_at(epoch, &adam, retries));
                        good_epoch = epoch;
                    }
                    continue;
                }
                Ok(Err(fault)) => fault,
                Err(payload) => StepFault::KernelPanic {
                    message: panic_message(payload),
                },
            };

            if retries >= ft.max_retries {
                return Err(TrainError::RetriesExhausted {
                    epoch,
                    retries,
                    last: fault,
                });
            }
            retries += 1;
            // Back off relative to the *current* lr so consecutive rollbacks
            // onto the same checkpoint keep compounding.
            let lr_after = adam.lr * ft.lr_backoff;
            let restored = load_train_state(&mut model.store, good.clone())?;
            adam.set_step_count(restored.adam_step);
            adam.lr = lr_after;
            history.truncate(good_epoch - first_epoch);
            if let Some(o) = obs.as_deref() {
                o.event(
                    "train.rollback",
                    &[
                        ("at_epoch", Value::U64(epoch as u64)),
                        ("restored_epoch", Value::U64(good_epoch as u64)),
                        ("lr_after", Value::F64(f64::from(lr_after))),
                        ("fault", Value::Str(fault.to_string())),
                    ],
                );
            }
            rollbacks.push(RollbackEvent {
                at_epoch: epoch,
                restored_epoch: good_epoch,
                lr_after,
                fault,
            });
            epoch = good_epoch;
        }

        let train_seconds = timer.elapsed().as_secs_f64();
        let embeddings = model.encode_dataset(ds);
        Ok(TrainOutput {
            embeddings,
            history,
            train_seconds,
            model,
            rollbacks,
        })
    }
}

/// RNG stream for one epoch of a guarded run. Deriving a fresh stream from
/// `(seed, epoch)` makes "the RNG state at epoch k" a pure function of two
/// integers — which is exactly what lets a resumed run replay the bit
/// pattern of an uninterrupted one without serializing generator internals.
pub(crate) fn epoch_rng(seed: u64, epoch: usize) -> StdRng {
    use rand::SeedableRng;
    let stream = seed ^ (epoch as u64 + 1).wrapping_mul(0xd1b5_4a32_d192_ed03);
    StdRng::seed_from_u64(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// One epoch — full-graph or random-walk subgraph batches, every step
/// through the guard. Injected poisons only apply to the first batch so a
/// fault fires exactly once. Each completed step is reported to `obs` as a
/// `train.step` event (a pure read of the step's results).
#[allow(clippy::too_many_arguments)]
fn run_one_epoch(
    model: &mut Gcmae,
    adam: &mut Adam,
    ds: &Dataset,
    cfg: &GcmaeConfig,
    guard: &StepGuard,
    rng: &mut StdRng,
    obs: Option<&dyn Observer>,
    epoch: usize,
) -> Result<LossBreakdown, StepFault> {
    let n = ds.num_nodes();
    let use_batches = cfg.batch_nodes > 0 && cfg.batch_nodes < n;
    if !use_batches {
        let report = model.step(&ds.graph, &ds.features, adam, rng, guard)?;
        emit_step(obs, epoch, 0, &report, adam.lr);
        return Ok(report.loss);
    }
    let batches = n.div_ceil(cfg.batch_nodes).max(1);
    let mut acc = LossBreakdown::default();
    for i in 0..batches {
        let batch = walk_subgraph(ds, cfg.batch_nodes, rng);
        let g = if i == 0 {
            guard.clone()
        } else {
            StepGuard {
                poison_loss: false,
                poison_grad: false,
                ..guard.clone()
            }
        };
        let report = model.step(&batch.data.graph, &batch.data.features, adam, rng, &g)?;
        emit_step(obs, epoch, i, &report, adam.lr);
        let b = report.loss;
        acc.total += b.total / batches as f32;
        acc.sce += b.sce / batches as f32;
        acc.contrast += b.contrast / batches as f32;
        acc.adj += b.adj / batches as f32;
        acc.variance += b.variance / batches as f32;
    }
    Ok(acc)
}

fn emit_step(obs: Option<&dyn Observer>, epoch: usize, step: usize, r: &StepReport, lr: f32) {
    let Some(o) = obs else { return };
    o.event(
        "train.step",
        &[
            ("epoch", Value::U64(epoch as u64)),
            ("step", Value::U64(step as u64)),
            ("total", Value::F64(f64::from(r.loss.total))),
            ("sce", Value::F64(f64::from(r.loss.sce))),
            ("contrast", Value::F64(f64::from(r.loss.contrast))),
            ("adj", Value::F64(f64::from(r.loss.adj))),
            ("variance", Value::F64(f64::from(r.loss.variance))),
            ("grad_norm", Value::F64(f64::from(r.grad_norm))),
            ("lr", Value::F64(f64::from(lr))),
        ],
    );
    o.gauge_set("train.lr", f64::from(lr));
    o.histogram_record("train.grad_norm", f64::from(r.grad_norm));
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};
    use gcmae_obs::{NoopObserver, Registry};
    use std::sync::Mutex;

    fn tiny() -> Dataset {
        generate(&CitationSpec::cora().scaled(0.02), 11)
    }

    fn small_cfg(epochs: usize) -> GcmaeConfig {
        GcmaeConfig {
            hidden_dim: 8,
            proj_dim: 4,
            epochs,
            ..GcmaeConfig::fast()
        }
    }

    /// Captures every event for asserting on the stream shape.
    #[derive(Default)]
    struct EventLog(Mutex<Vec<(String, Vec<(String, Value)>)>>);

    impl Observer for EventLog {
        fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
            let fields = fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect();
            self.0.lock().expect("log").push((name.to_string(), fields));
        }
    }

    #[test]
    fn unguarded_sessions_are_bitwise_deterministic() {
        let ds = tiny();
        let cfg = small_cfg(5);
        let run = || {
            TrainSession::new(&cfg)
                .seed(3)
                .run(&ds)
                .expect("unguarded never fails")
        };
        // Two independent runs exercise the arena warm path on the second:
        // the outputs must not depend on whether buffers came from the
        // allocator or the recycle pool.
        let a = run();
        let b = run();
        assert_eq!(a.embeddings.max_abs_diff(&b.embeddings), 0.0);
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.total.to_bits(), y.total.to_bits());
        }
    }

    #[test]
    fn noop_observer_is_bit_invisible() {
        let ds = tiny();
        let cfg = small_cfg(4);
        let bare = TrainSession::new(&cfg).seed(7).run(&ds).expect("ok");
        let observed = TrainSession::new(&cfg)
            .seed(7)
            .observer(Arc::new(NoopObserver))
            .run(&ds)
            .expect("ok");
        assert_eq!(bare.embeddings.max_abs_diff(&observed.embeddings), 0.0);
        for (a, b) in bare.history.iter().zip(&observed.history) {
            assert_eq!(a.total.to_bits(), b.total.to_bits());
        }
    }

    #[test]
    fn step_events_carry_all_loss_terms() {
        let ds = tiny();
        let cfg = small_cfg(3);
        let log = Arc::new(EventLog::default());
        let out = TrainSession::new(&cfg)
            .seed(5)
            .observer(log.clone())
            .run(&ds)
            .expect("ok");
        let events = log.0.lock().expect("log");
        let steps: Vec<_> = events.iter().filter(|(n, _)| n == "train.step").collect();
        assert_eq!(
            steps.len(),
            out.history.len(),
            "one step per epoch on the full graph"
        );
        for (_, fields) in &steps {
            for key in [
                "epoch",
                "step",
                "total",
                "sce",
                "contrast",
                "adj",
                "variance",
                "grad_norm",
                "lr",
            ] {
                assert!(fields.iter().any(|(k, _)| k == key), "missing field {key}");
            }
            let grad_norm = fields
                .iter()
                .find(|(k, _)| k == "grad_norm")
                .and_then(|(_, v)| match v {
                    Value::F64(x) => Some(*x),
                    _ => None,
                })
                .expect("grad_norm value");
            assert!(grad_norm.is_finite() && grad_norm > 0.0);
        }
    }

    #[test]
    fn guarded_sessions_are_bitwise_deterministic() {
        let ds = tiny();
        let cfg = small_cfg(6);
        let ft = FaultTolerance::default();
        let run = || {
            TrainSession::new(&cfg)
                .seed(9)
                .guards(&ft)
                .run(&ds)
                .expect("ok")
        };
        let a = run();
        let b = run();
        assert_eq!(a.embeddings.max_abs_diff(&b.embeddings), 0.0);
        assert!(a.rollbacks.is_empty());
    }

    #[test]
    fn rollback_events_are_reported() {
        let ds = tiny();
        let cfg = small_cfg(6);
        let ft = FaultTolerance {
            checkpoint_every: 2,
            ..FaultTolerance::default()
        };
        let plan = FaultPlan {
            nan_loss_at: Some(3),
            ..FaultPlan::default()
        };
        let log = Arc::new(EventLog::default());
        let reg = Arc::new(Registry::new());
        let fan = Arc::new(gcmae_obs::Fanout(vec![
            log.clone() as Arc<dyn Observer>,
            reg.clone() as Arc<dyn Observer>,
        ]));
        let out = TrainSession::new(&cfg)
            .seed(11)
            .guards(&ft)
            .observer(fan)
            .inject_faults(plan)
            .run(&ds)
            .expect("recovers");
        assert_eq!(out.rollbacks.len(), 1);
        let events = log.0.lock().expect("log");
        let rb: Vec<_> = events
            .iter()
            .filter(|(n, _)| n == "train.rollback")
            .collect();
        assert_eq!(rb.len(), 1);
        let fields = &rb[0].1;
        assert!(fields
            .iter()
            .any(|(k, v)| k == "at_epoch" && *v == Value::U64(3)));
        assert!(fields
            .iter()
            .any(|(k, v)| k == "restored_epoch" && *v == Value::U64(2)));
        assert!(fields
            .iter()
            .any(|(k, v)| k == "fault" && matches!(v, Value::Str(s) if s.contains("total"))));
        // the aggregating half of the fanout counted the same event
        assert_eq!(reg.counter_value("train.rollback"), 1);
        assert!(reg.counter_value("train.step") as usize >= out.history.len());
    }

    #[test]
    fn resume_via_builder_replays_bit_for_bit() {
        let ds = tiny();
        let cfg = small_cfg(8);
        let ft = FaultTolerance::default();
        let snapshot = Mutex::new(None);
        let full = TrainSession::new(&cfg)
            .seed(10)
            .guards(&ft)
            .on_epoch(|e, view| {
                if e == 3 {
                    *snapshot.lock().expect("snap") = Some(view.checkpoint());
                }
            })
            .run(&ds)
            .expect("ok");
        let state = snapshot.into_inner().expect("snap").expect("taken");
        let resumed = TrainSession::new(&cfg)
            .guards(&ft)
            .resume_from(state)
            .run(&ds)
            .expect("ok");
        assert_eq!(resumed.history.len(), 4, "epochs 4..8 re-run");
        assert_eq!(full.embeddings.max_abs_diff(&resumed.embeddings), 0.0);
        for (a, b) in full.history[4..].iter().zip(&resumed.history) {
            assert_eq!(a.total.to_bits(), b.total.to_bits());
        }
    }

    #[test]
    fn batched_session_emits_one_event_per_step() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            batch_nodes: 24,
            ..small_cfg(2)
        }
        .with_objective(crate::config::Objective::paper().with_dense_caps(16, 16));
        let log = Arc::new(EventLog::default());
        let _ = TrainSession::new(&cfg)
            .seed(6)
            .observer(log.clone())
            .run(&ds)
            .expect("ok");
        let events = log.0.lock().expect("log");
        let steps = events.iter().filter(|(n, _)| n == "train.step").count();
        let batches = ds.num_nodes().div_ceil(cfg.batch_nodes).max(1);
        assert_eq!(steps, batches * cfg.epochs);
    }
}
