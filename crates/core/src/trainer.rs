//! Output/view types returned by [`crate::session::TrainSession`], plus the
//! test-only fault-injection entrypoint.
//!
//! The legacy driver family (`train`, `train_traced`, `train_checked`,
//! `train_checked_traced`, `resume_checked`) has been removed; the builder
//! expresses all of them — and telemetry — through one entrypoint:
//!
//! | removed call | builder equivalent |
//! |---|---|
//! | `train(ds, cfg, seed)` | `TrainSession::new(cfg).seed(seed).run(ds)` |
//! | `train_traced(ds, cfg, seed, f)` | `… .on_epoch(\|e, v\| f(e, v.model)).run(ds)` |
//! | `train_checked(ds, cfg, seed, ft)` | `… .guards(ft).run(ds)` |
//! | `train_checked_traced(ds, cfg, seed, ft, f)` | `… .guards(ft).on_epoch(f).run(ds)` |
//! | `resume_checked(ds, cfg, state, ft)` | `… .guards(ft).resume_from(state).run(ds)` |

use gcmae_graph::Dataset;
use gcmae_nn::{save_train_state, Bytes, TrainMeta};
use gcmae_tensor::Matrix;

use crate::config::{FaultTolerance, GcmaeConfig};
use crate::fault::{FaultPlan, RollbackEvent, TrainError};
use crate::model::{Gcmae, LossBreakdown};
use crate::session::TrainSession;

/// Result of a pre-training run.
pub struct TrainOutput {
    /// Eval-mode node embeddings of the full graph.
    pub embeddings: Matrix,
    /// Per-epoch loss breakdowns.
    pub history: Vec<LossBreakdown>,
    /// Wall-clock pre-training time in seconds.
    pub train_seconds: f64,
    /// The trained model (for link prediction / reconstruction).
    pub model: Gcmae,
    /// Recovery actions taken (always empty for unguarded sessions).
    pub rollbacks: Vec<RollbackEvent>,
}

/// What a training session shows its per-epoch callback.
pub struct EpochView<'a> {
    /// The model after this epoch's update.
    pub model: &'a Gcmae,
    pub(crate) meta: TrainMeta,
}

impl EpochView<'_> {
    /// Serializes the full training state as of the end of this epoch
    /// (checkpoint format v2). Feeding these bytes to
    /// [`TrainSession::resume_from`] continues a guarded run
    /// bit-identically.
    pub fn checkpoint(&self) -> Bytes {
        save_train_state(&self.model.store, &self.meta)
    }
}

/// Test-only entry point: guarded training plus a deterministic
/// [`FaultPlan`]. Public so the integration suite can exercise recovery,
/// hidden because production code has no business injecting faults.
#[doc(hidden)]
pub fn train_checked_injected(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    seed: u64,
    ft: &FaultTolerance,
    plan: FaultPlan,
    on_epoch: impl FnMut(usize, &EpochView<'_>),
) -> Result<TrainOutput, TrainError> {
    TrainSession::new(cfg)
        .seed(seed)
        .guards(ft)
        .inject_faults(plan)
        .on_epoch(on_epoch)
        .run(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::StepFault;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    fn tiny() -> Dataset {
        generate(&CitationSpec::cora().scaled(0.02), 11)
    }

    fn train(ds: &Dataset, cfg: &GcmaeConfig, seed: u64) -> TrainOutput {
        TrainSession::new(cfg)
            .seed(seed)
            .run(ds)
            .expect("unguarded session cannot fail")
    }

    #[test]
    fn full_graph_training_converges() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 16,
            proj_dim: 8,
            epochs: 25,
            ..GcmaeConfig::fast()
        };
        let out = train(&ds, &cfg, 1);
        assert_eq!(out.history.len(), 25);
        assert_eq!(out.embeddings.shape(), (ds.num_nodes(), 16));
        let first = out.history.first().unwrap().total;
        let last = out.history.last().unwrap().total;
        assert!(last < first, "no convergence: {first} -> {last}");
        assert!(out.train_seconds > 0.0);
    }

    #[test]
    fn subgraph_batching_runs_and_converges() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 16,
            proj_dim: 8,
            epochs: 10,
            batch_nodes: 24,
            ..GcmaeConfig::fast()
        }
        .with_objective(crate::config::Objective::paper().with_dense_caps(16, 16));
        let out = train(&ds, &cfg, 2);
        assert_eq!(out.embeddings.rows(), ds.num_nodes());
        assert!(out.history.iter().all(|b| b.total.is_finite()));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 8,
            proj_dim: 4,
            epochs: 5,
            ..GcmaeConfig::fast()
        };
        let a = train(&ds, &cfg, 3);
        let b = train(&ds, &cfg, 3);
        assert_eq!(a.embeddings.max_abs_diff(&b.embeddings), 0.0);
        let c = train(&ds, &cfg, 4);
        assert!(c.embeddings.max_abs_diff(&a.embeddings) > 0.0);
    }

    #[test]
    fn callback_sees_every_epoch() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 8,
            proj_dim: 4,
            epochs: 7,
            ..GcmaeConfig::fast()
        };
        let mut seen = vec![];
        let _ = TrainSession::new(&cfg)
            .seed(5)
            .on_epoch(|e, _| seen.push(e))
            .run(&ds)
            .expect("unguarded session cannot fail");
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    fn small_cfg(epochs: usize) -> GcmaeConfig {
        GcmaeConfig {
            hidden_dim: 8,
            proj_dim: 4,
            epochs,
            ..GcmaeConfig::fast()
        }
    }

    #[test]
    fn checked_run_is_clean_and_deterministic() {
        let ds = tiny();
        let cfg = small_cfg(6);
        let ft = FaultTolerance::default();
        let run = || {
            TrainSession::new(&cfg)
                .seed(9)
                .guards(&ft)
                .run(&ds)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert!(a.rollbacks.is_empty());
        assert_eq!(a.history.len(), 6);
        assert_eq!(a.embeddings.max_abs_diff(&b.embeddings), 0.0);
    }

    #[test]
    fn resume_replays_the_uninterrupted_run_bit_for_bit() {
        let ds = tiny();
        let cfg = small_cfg(8);
        let ft = FaultTolerance::default();
        let mut snapshot = None;
        let full = TrainSession::new(&cfg)
            .seed(10)
            .guards(&ft)
            .on_epoch(|e, view| {
                if e == 3 {
                    snapshot = Some(view.checkpoint());
                }
            })
            .run(&ds)
            .unwrap();
        let resumed = TrainSession::new(&cfg)
            .guards(&ft)
            .resume_from(snapshot.unwrap())
            .run(&ds)
            .unwrap();
        assert_eq!(resumed.history.len(), 4, "epochs 4..8 re-run");
        assert_eq!(full.embeddings.max_abs_diff(&resumed.embeddings), 0.0);
        for (a, b) in full.history[4..].iter().zip(&resumed.history) {
            assert_eq!(a.total.to_bits(), b.total.to_bits());
        }
    }

    #[test]
    fn injected_nan_loss_rolls_back_with_lr_backoff() {
        let ds = tiny();
        let cfg = small_cfg(8);
        let ft = FaultTolerance {
            checkpoint_every: 2,
            ..FaultTolerance::default()
        };
        let plan = FaultPlan {
            nan_loss_at: Some(5),
            ..FaultPlan::default()
        };
        let out = train_checked_injected(&ds, &cfg, 11, &ft, plan, |_, _| {}).unwrap();
        assert_eq!(out.rollbacks.len(), 1);
        let rb = &out.rollbacks[0];
        assert_eq!(rb.at_epoch, 5);
        assert_eq!(rb.restored_epoch, 4, "last multiple of checkpoint_every");
        assert_eq!(rb.lr_after, cfg.lr * ft.lr_backoff);
        assert_eq!(rb.fault, StepFault::NonFiniteLoss { term: "total" });
        // run completed all epochs after recovery and still converged
        assert_eq!(out.history.len(), 8);
        assert!(out.history.last().unwrap().total < out.history[0].total);
    }

    #[test]
    fn injected_nan_gradient_is_caught_before_the_update() {
        let ds = tiny();
        let cfg = small_cfg(5);
        let ft = FaultTolerance::default();
        let plan = FaultPlan {
            nan_grad_at: Some(2),
            ..FaultPlan::default()
        };
        let out = train_checked_injected(&ds, &cfg, 12, &ft, plan, |_, _| {}).unwrap();
        assert_eq!(out.rollbacks.len(), 1);
        assert!(matches!(
            out.rollbacks[0].fault,
            StepFault::NonFiniteGradient { .. }
        ));
        assert!(out.history.iter().all(|b| b.total.is_finite()));
    }

    #[test]
    fn injected_parallel_panic_is_contained_and_recovered() {
        let ds = tiny();
        let cfg = small_cfg(5);
        let ft = FaultTolerance::default();
        let plan = FaultPlan {
            panic_at: Some(1),
            ..FaultPlan::default()
        };
        let out = train_checked_injected(&ds, &cfg, 13, &ft, plan, |_, _| {}).unwrap();
        assert_eq!(out.rollbacks.len(), 1);
        match &out.rollbacks[0].fault {
            StepFault::KernelPanic { message } => {
                assert!(
                    message.contains("injected parallel-job fault"),
                    "payload: {message}"
                )
            }
            other => panic!("expected KernelPanic, got {other:?}"),
        }
        assert_eq!(out.history.len(), 5);
    }

    #[test]
    fn retry_budget_is_enforced() {
        let ds = tiny();
        let cfg = small_cfg(4);
        let ft = FaultTolerance {
            max_retries: 0,
            ..FaultTolerance::default()
        };
        let plan = FaultPlan {
            nan_loss_at: Some(1),
            ..FaultPlan::default()
        };
        let Err(err) = train_checked_injected(&ds, &cfg, 14, &ft, plan, |_, _| {}) else {
            panic!("expected the run to fail")
        };
        match err {
            TrainError::RetriesExhausted {
                epoch,
                retries,
                last,
            } => {
                assert_eq!((epoch, retries), (1, 0));
                assert_eq!(last, StepFault::NonFiniteLoss { term: "total" });
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn unusable_rollback_checkpoint_is_a_structured_error() {
        let ds = tiny();
        let cfg = small_cfg(4);
        let ft = FaultTolerance {
            checkpoint_every: 0,
            ..FaultTolerance::default()
        };
        let plan = FaultPlan {
            nan_loss_at: Some(1),
            truncate_checkpoint: true,
            ..FaultPlan::default()
        };
        let Err(err) = train_checked_injected(&ds, &cfg, 15, &ft, plan, |_, _| {}) else {
            panic!("expected the run to fail")
        };
        assert!(
            matches!(
                err,
                TrainError::Checkpoint(gcmae_nn::CheckpointError::Truncated)
            ),
            "{err}"
        );
    }

    #[test]
    fn checked_batched_path_guards_every_step() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            batch_nodes: 24,
            ..small_cfg(4)
        }
        .with_objective(crate::config::Objective::paper().with_dense_caps(16, 16));
        let ft = FaultTolerance::default();
        let plan = FaultPlan {
            nan_loss_at: Some(2),
            ..FaultPlan::default()
        };
        let out = train_checked_injected(&ds, &cfg, 16, &ft, plan, |_, _| {}).unwrap();
        assert_eq!(out.rollbacks.len(), 1);
        assert_eq!(out.history.len(), 4);
        assert!(out.history.iter().all(|b| b.total.is_finite()));
    }
}
