//! Legacy training entrypoints, now thin deprecated shims over
//! [`crate::session::TrainSession`], plus the output/view types the session
//! returns.
//!
//! The old API grew four overlapping drivers (`train`, `train_checked`,
//! `train_checked_traced`, `resume_checked`); the builder expresses all of
//! them — and telemetry — through one entrypoint:
//!
//! | legacy call | builder equivalent |
//! |---|---|
//! | `train(ds, cfg, seed)` | `TrainSession::new(cfg).seed(seed).run(ds)` |
//! | `train_traced(ds, cfg, seed, f)` | `… .on_epoch(\|e, v\| f(e, v.model)).run(ds)` |
//! | `train_checked(ds, cfg, seed, ft)` | `… .guards(ft).run(ds)` |
//! | `train_checked_traced(ds, cfg, seed, ft, f)` | `… .guards(ft).on_epoch(f).run(ds)` |
//! | `resume_checked(ds, cfg, state, ft)` | `… .guards(ft).resume_from(state).run(ds)` |
//!
//! Every shim delegates, so behavior (including bit-exact RNG streams) is
//! unchanged; they will be removed once external callers migrate.

use gcmae_graph::Dataset;
use gcmae_nn::{save_train_state, Bytes, TrainMeta};
use gcmae_tensor::Matrix;

use crate::config::{FaultTolerance, GcmaeConfig};
use crate::fault::{FaultPlan, RollbackEvent, TrainError};
use crate::model::{Gcmae, LossBreakdown};
use crate::session::TrainSession;

/// Result of a pre-training run.
pub struct TrainOutput {
    /// Eval-mode node embeddings of the full graph.
    pub embeddings: Matrix,
    /// Per-epoch loss breakdowns.
    pub history: Vec<LossBreakdown>,
    /// Wall-clock pre-training time in seconds.
    pub train_seconds: f64,
    /// The trained model (for link prediction / reconstruction).
    pub model: Gcmae,
    /// Recovery actions taken (always empty for unguarded sessions).
    pub rollbacks: Vec<RollbackEvent>,
}

/// What a training session shows its per-epoch callback.
pub struct EpochView<'a> {
    /// The model after this epoch's update.
    pub model: &'a Gcmae,
    pub(crate) meta: TrainMeta,
}

impl EpochView<'_> {
    /// Serializes the full training state as of the end of this epoch
    /// (checkpoint format v2). Feeding these bytes to
    /// [`TrainSession::resume_from`] continues a guarded run
    /// bit-identically.
    pub fn checkpoint(&self) -> Bytes {
        save_train_state(&self.model.store, &self.meta)
    }
}

/// Pre-trains GCMAE on a dataset.
#[deprecated(
    since = "0.5.0",
    note = "use TrainSession::new(cfg).seed(seed).run(ds)"
)]
pub fn train(ds: &Dataset, cfg: &GcmaeConfig, seed: u64) -> TrainOutput {
    match TrainSession::new(cfg).seed(seed).run(ds) {
        Ok(out) => out,
        Err(e) => unreachable!("unguarded session cannot fail: {e}"),
    }
}

/// Pre-trains with a per-epoch callback `(epoch, model)`.
#[deprecated(
    since = "0.5.0",
    note = "use TrainSession::new(cfg).on_epoch(...).run(ds)"
)]
pub fn train_traced(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    seed: u64,
    mut on_epoch: impl FnMut(usize, &Gcmae),
) -> TrainOutput {
    let session = TrainSession::new(cfg)
        .seed(seed)
        .on_epoch(move |e, view| on_epoch(e, view.model));
    match session.run(ds) {
        Ok(out) => out,
        Err(e) => unreachable!("unguarded session cannot fail: {e}"),
    }
}

/// Pre-trains with divergence guards and checkpoint/rollback recovery.
#[deprecated(
    since = "0.5.0",
    note = "use TrainSession::new(cfg).guards(ft).run(ds)"
)]
pub fn train_checked(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    seed: u64,
    ft: &FaultTolerance,
) -> Result<TrainOutput, TrainError> {
    TrainSession::new(cfg).seed(seed).guards(ft).run(ds)
}

/// Guarded pre-training with a per-epoch callback `(epoch, view)`.
#[deprecated(
    since = "0.5.0",
    note = "use TrainSession::new(cfg).guards(ft).on_epoch(...).run(ds)"
)]
pub fn train_checked_traced(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    seed: u64,
    ft: &FaultTolerance,
    on_epoch: impl FnMut(usize, &EpochView<'_>),
) -> Result<TrainOutput, TrainError> {
    TrainSession::new(cfg)
        .seed(seed)
        .guards(ft)
        .on_epoch(on_epoch)
        .run(ds)
}

/// Test-only entry point: guarded training plus a deterministic
/// [`FaultPlan`]. Public so the integration suite can exercise recovery,
/// hidden because production code has no business injecting faults.
#[doc(hidden)]
pub fn train_checked_injected(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    seed: u64,
    ft: &FaultTolerance,
    plan: FaultPlan,
    on_epoch: impl FnMut(usize, &EpochView<'_>),
) -> Result<TrainOutput, TrainError> {
    TrainSession::new(cfg)
        .seed(seed)
        .guards(ft)
        .inject_faults(plan)
        .on_epoch(on_epoch)
        .run(ds)
}

/// Resumes a guarded run from v2 training-state bytes (see
/// [`EpochView::checkpoint`]). The continuation is bit-identical to the
/// uninterrupted run.
#[deprecated(
    since = "0.5.0",
    note = "use TrainSession::new(cfg).guards(ft).resume_from(state).run(ds)"
)]
pub fn resume_checked(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    state: Bytes,
    ft: &FaultTolerance,
) -> Result<TrainOutput, TrainError> {
    TrainSession::new(cfg).guards(ft).resume_from(state).run(ds)
}

// The legacy suite stays on the shims on purpose: it pins that every
// deprecated entry point still behaves exactly as before the collapse into
// `TrainSession` (which has its own suite in `crate::session`).
#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::fault::StepFault;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    fn tiny() -> Dataset {
        generate(&CitationSpec::cora().scaled(0.02), 11)
    }

    #[test]
    fn full_graph_training_converges() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 16,
            proj_dim: 8,
            epochs: 25,
            ..GcmaeConfig::fast()
        };
        let out = train(&ds, &cfg, 1);
        assert_eq!(out.history.len(), 25);
        assert_eq!(out.embeddings.shape(), (ds.num_nodes(), 16));
        let first = out.history.first().unwrap().total;
        let last = out.history.last().unwrap().total;
        assert!(last < first, "no convergence: {first} -> {last}");
        assert!(out.train_seconds > 0.0);
    }

    #[test]
    fn subgraph_batching_runs_and_converges() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 16,
            proj_dim: 8,
            epochs: 10,
            batch_nodes: 24,
            adj_sample: 16,
            contrast_sample: 16,
            ..GcmaeConfig::fast()
        };
        let out = train(&ds, &cfg, 2);
        assert_eq!(out.embeddings.rows(), ds.num_nodes());
        assert!(out.history.iter().all(|b| b.total.is_finite()));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 8,
            proj_dim: 4,
            epochs: 5,
            ..GcmaeConfig::fast()
        };
        let a = train(&ds, &cfg, 3);
        let b = train(&ds, &cfg, 3);
        assert_eq!(a.embeddings.max_abs_diff(&b.embeddings), 0.0);
        let c = train(&ds, &cfg, 4);
        assert!(c.embeddings.max_abs_diff(&a.embeddings) > 0.0);
    }

    #[test]
    fn callback_sees_every_epoch() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 8,
            proj_dim: 4,
            epochs: 7,
            ..GcmaeConfig::fast()
        };
        let mut seen = vec![];
        let _ = train_traced(&ds, &cfg, 5, |e, _| seen.push(e));
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    fn small_cfg(epochs: usize) -> GcmaeConfig {
        GcmaeConfig {
            hidden_dim: 8,
            proj_dim: 4,
            epochs,
            ..GcmaeConfig::fast()
        }
    }

    #[test]
    fn checked_run_is_clean_and_deterministic() {
        let ds = tiny();
        let cfg = small_cfg(6);
        let ft = FaultTolerance::default();
        let a = train_checked(&ds, &cfg, 9, &ft).unwrap();
        let b = train_checked(&ds, &cfg, 9, &ft).unwrap();
        assert!(a.rollbacks.is_empty());
        assert_eq!(a.history.len(), 6);
        assert_eq!(a.embeddings.max_abs_diff(&b.embeddings), 0.0);
    }

    #[test]
    fn resume_replays_the_uninterrupted_run_bit_for_bit() {
        let ds = tiny();
        let cfg = small_cfg(8);
        let ft = FaultTolerance::default();
        let mut snapshot = None;
        let full = train_checked_traced(&ds, &cfg, 10, &ft, |e, view| {
            if e == 3 {
                snapshot = Some(view.checkpoint());
            }
        })
        .unwrap();
        let resumed = resume_checked(&ds, &cfg, snapshot.unwrap(), &ft).unwrap();
        assert_eq!(resumed.history.len(), 4, "epochs 4..8 re-run");
        assert_eq!(full.embeddings.max_abs_diff(&resumed.embeddings), 0.0);
        for (a, b) in full.history[4..].iter().zip(&resumed.history) {
            assert_eq!(a.total.to_bits(), b.total.to_bits());
        }
    }

    #[test]
    fn injected_nan_loss_rolls_back_with_lr_backoff() {
        let ds = tiny();
        let cfg = small_cfg(8);
        let ft = FaultTolerance {
            checkpoint_every: 2,
            ..FaultTolerance::default()
        };
        let plan = FaultPlan {
            nan_loss_at: Some(5),
            ..FaultPlan::default()
        };
        let out = train_checked_injected(&ds, &cfg, 11, &ft, plan, |_, _| {}).unwrap();
        assert_eq!(out.rollbacks.len(), 1);
        let rb = &out.rollbacks[0];
        assert_eq!(rb.at_epoch, 5);
        assert_eq!(rb.restored_epoch, 4, "last multiple of checkpoint_every");
        assert_eq!(rb.lr_after, cfg.lr * ft.lr_backoff);
        assert_eq!(rb.fault, StepFault::NonFiniteLoss { term: "total" });
        // run completed all epochs after recovery and still converged
        assert_eq!(out.history.len(), 8);
        assert!(out.history.last().unwrap().total < out.history[0].total);
    }

    #[test]
    fn injected_nan_gradient_is_caught_before_the_update() {
        let ds = tiny();
        let cfg = small_cfg(5);
        let ft = FaultTolerance::default();
        let plan = FaultPlan {
            nan_grad_at: Some(2),
            ..FaultPlan::default()
        };
        let out = train_checked_injected(&ds, &cfg, 12, &ft, plan, |_, _| {}).unwrap();
        assert_eq!(out.rollbacks.len(), 1);
        assert!(matches!(
            out.rollbacks[0].fault,
            StepFault::NonFiniteGradient { .. }
        ));
        assert!(out.history.iter().all(|b| b.total.is_finite()));
    }

    #[test]
    fn injected_parallel_panic_is_contained_and_recovered() {
        let ds = tiny();
        let cfg = small_cfg(5);
        let ft = FaultTolerance::default();
        let plan = FaultPlan {
            panic_at: Some(1),
            ..FaultPlan::default()
        };
        let out = train_checked_injected(&ds, &cfg, 13, &ft, plan, |_, _| {}).unwrap();
        assert_eq!(out.rollbacks.len(), 1);
        match &out.rollbacks[0].fault {
            StepFault::KernelPanic { message } => {
                assert!(
                    message.contains("injected parallel-job fault"),
                    "payload: {message}"
                )
            }
            other => panic!("expected KernelPanic, got {other:?}"),
        }
        assert_eq!(out.history.len(), 5);
    }

    #[test]
    fn retry_budget_is_enforced() {
        let ds = tiny();
        let cfg = small_cfg(4);
        let ft = FaultTolerance {
            max_retries: 0,
            ..FaultTolerance::default()
        };
        let plan = FaultPlan {
            nan_loss_at: Some(1),
            ..FaultPlan::default()
        };
        let Err(err) = train_checked_injected(&ds, &cfg, 14, &ft, plan, |_, _| {}) else {
            panic!("expected the run to fail")
        };
        match err {
            TrainError::RetriesExhausted {
                epoch,
                retries,
                last,
            } => {
                assert_eq!((epoch, retries), (1, 0));
                assert_eq!(last, StepFault::NonFiniteLoss { term: "total" });
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn unusable_rollback_checkpoint_is_a_structured_error() {
        let ds = tiny();
        let cfg = small_cfg(4);
        let ft = FaultTolerance {
            checkpoint_every: 0,
            ..FaultTolerance::default()
        };
        let plan = FaultPlan {
            nan_loss_at: Some(1),
            truncate_checkpoint: true,
            ..FaultPlan::default()
        };
        let Err(err) = train_checked_injected(&ds, &cfg, 15, &ft, plan, |_, _| {}) else {
            panic!("expected the run to fail")
        };
        assert!(
            matches!(
                err,
                TrainError::Checkpoint(gcmae_nn::CheckpointError::Truncated)
            ),
            "{err}"
        );
    }

    #[test]
    fn checked_batched_path_guards_every_step() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            batch_nodes: 24,
            adj_sample: 16,
            contrast_sample: 16,
            ..small_cfg(4)
        };
        let ft = FaultTolerance::default();
        let plan = FaultPlan {
            nan_loss_at: Some(2),
            ..FaultPlan::default()
        };
        let out = train_checked_injected(&ds, &cfg, 16, &ft, plan, |_, _| {}).unwrap();
        assert_eq!(out.rollbacks.len(), 1);
        assert_eq!(out.history.len(), 4);
        assert!(out.history.iter().all(|b| b.total.is_finite()));
    }
}
