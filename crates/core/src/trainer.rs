//! Training drivers: full-graph and subgraph-sampled (large graphs, §4.4),
//! with an optional per-epoch callback for trajectory experiments
//! (Figure 4).

use std::time::Instant;

use gcmae_graph::sampling::walk_subgraph;
use gcmae_graph::Dataset;
use gcmae_nn::Adam;
use gcmae_tensor::Matrix;

use crate::config::GcmaeConfig;
use crate::model::{seeded_rng, Gcmae, LossBreakdown};

/// Result of a pre-training run.
pub struct TrainOutput {
    /// Eval-mode node embeddings of the full graph.
    pub embeddings: Matrix,
    /// Per-epoch loss breakdowns.
    pub history: Vec<LossBreakdown>,
    /// Wall-clock pre-training time in seconds.
    pub train_seconds: f64,
    /// The trained model (for link prediction / reconstruction).
    pub model: Gcmae,
}

/// Pre-trains GCMAE on a dataset.
pub fn train(ds: &Dataset, cfg: &GcmaeConfig, seed: u64) -> TrainOutput {
    train_traced(ds, cfg, seed, |_, _| {})
}

/// Pre-trains with a per-epoch callback `(epoch, model)`; the callback can
/// compute eval-mode embeddings when needed (Figure 4 does this every few
/// epochs).
pub fn train_traced(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    seed: u64,
    mut on_epoch: impl FnMut(usize, &Gcmae),
) -> TrainOutput {
    let mut rng = seeded_rng(seed);
    let mut model = Gcmae::new(cfg, ds.feature_dim(), &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let mut history = Vec::with_capacity(cfg.epochs);
    let start = Instant::now();
    let n = ds.num_nodes();
    let use_batches = cfg.batch_nodes > 0 && cfg.batch_nodes < n;
    for epoch in 0..cfg.epochs {
        let breakdown = if use_batches {
            // One pass ≈ the whole graph in random-walk subgraph batches.
            let batches = n.div_ceil(cfg.batch_nodes).max(1);
            let mut acc = LossBreakdown::default();
            for _ in 0..batches {
                let batch = walk_subgraph(ds, cfg.batch_nodes, &mut rng);
                let b = model.train_step(
                    &batch.data.graph,
                    &batch.data.features,
                    &mut adam,
                    &mut rng,
                );
                acc.total += b.total / batches as f32;
                acc.sce += b.sce / batches as f32;
                acc.contrast += b.contrast / batches as f32;
                acc.adj += b.adj / batches as f32;
                acc.variance += b.variance / batches as f32;
            }
            acc
        } else {
            model.train_step(&ds.graph, &ds.features, &mut adam, &mut rng)
        };
        history.push(breakdown);
        on_epoch(epoch, &model);
    }
    let train_seconds = start.elapsed().as_secs_f64();
    let embeddings = model.embed_dataset(ds, &mut rng);
    TrainOutput { embeddings, history, train_seconds, model }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    fn tiny() -> Dataset {
        generate(&CitationSpec::cora().scaled(0.02), 11)
    }

    #[test]
    fn full_graph_training_converges() {
        let ds = tiny();
        let cfg = GcmaeConfig { hidden_dim: 16, proj_dim: 8, epochs: 25, ..GcmaeConfig::fast() };
        let out = train(&ds, &cfg, 1);
        assert_eq!(out.history.len(), 25);
        assert_eq!(out.embeddings.shape(), (ds.num_nodes(), 16));
        let first = out.history.first().unwrap().total;
        let last = out.history.last().unwrap().total;
        assert!(last < first, "no convergence: {first} -> {last}");
        assert!(out.train_seconds > 0.0);
    }

    #[test]
    fn subgraph_batching_runs_and_converges() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 16,
            proj_dim: 8,
            epochs: 10,
            batch_nodes: 24,
            adj_sample: 16,
            contrast_sample: 16,
            ..GcmaeConfig::fast()
        };
        let out = train(&ds, &cfg, 2);
        assert_eq!(out.embeddings.rows(), ds.num_nodes());
        assert!(out.history.iter().all(|b| b.total.is_finite()));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let ds = tiny();
        let cfg = GcmaeConfig { hidden_dim: 8, proj_dim: 4, epochs: 5, ..GcmaeConfig::fast() };
        let a = train(&ds, &cfg, 3);
        let b = train(&ds, &cfg, 3);
        assert_eq!(a.embeddings.max_abs_diff(&b.embeddings), 0.0);
        let c = train(&ds, &cfg, 4);
        assert!(c.embeddings.max_abs_diff(&a.embeddings) > 0.0);
    }

    #[test]
    fn callback_sees_every_epoch() {
        let ds = tiny();
        let cfg = GcmaeConfig { hidden_dim: 8, proj_dim: 4, epochs: 7, ..GcmaeConfig::fast() };
        let mut seen = vec![];
        let _ = train_traced(&ds, &cfg, 5, |e, _| seen.push(e));
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }
}
