//! Training drivers: full-graph and subgraph-sampled (large graphs, §4.4),
//! with an optional per-epoch callback for trajectory experiments
//! (Figure 4).
//!
//! Two families:
//!
//! * [`train`] / [`train_traced`] — the original unchecked loop. One RNG
//!   threads through everything; cheap, but a crash loses the run and a
//!   `NaN` poisons it silently.
//! * [`train_checked`] / [`resume_checked`] — the fault-tolerant loop.
//!   Every step is scanned for non-finite losses/gradients, kernel panics
//!   are caught at the epoch boundary, and any fault rolls the run back to
//!   the last good checkpoint with learning-rate backoff (up to a retry
//!   budget). Each epoch draws from its own RNG stream derived from
//!   `(seed, epoch)`, so a run resumed from a v2 checkpoint replays the
//!   exact bit pattern of an uninterrupted run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use gcmae_graph::sampling::walk_subgraph;
use gcmae_graph::Dataset;
use gcmae_nn::{load_train_state, save_train_state, Adam, Bytes, TrainMeta};
use gcmae_tensor::Matrix;
use rand::rngs::StdRng;

use crate::config::{FaultTolerance, GcmaeConfig};
use crate::fault::{self, FaultPlan, RollbackEvent, StepFault, StepGuard, TrainError};
use crate::model::{seeded_rng, Gcmae, LossBreakdown};

/// Result of a pre-training run.
pub struct TrainOutput {
    /// Eval-mode node embeddings of the full graph.
    pub embeddings: Matrix,
    /// Per-epoch loss breakdowns.
    pub history: Vec<LossBreakdown>,
    /// Wall-clock pre-training time in seconds.
    pub train_seconds: f64,
    /// The trained model (for link prediction / reconstruction).
    pub model: Gcmae,
    /// Recovery actions taken (always empty for the unchecked trainers).
    pub rollbacks: Vec<RollbackEvent>,
}

/// Pre-trains GCMAE on a dataset.
pub fn train(ds: &Dataset, cfg: &GcmaeConfig, seed: u64) -> TrainOutput {
    train_traced(ds, cfg, seed, |_, _| {})
}

/// Pre-trains with a per-epoch callback `(epoch, model)`; the callback can
/// compute eval-mode embeddings when needed (Figure 4 does this every few
/// epochs).
pub fn train_traced(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    seed: u64,
    mut on_epoch: impl FnMut(usize, &Gcmae),
) -> TrainOutput {
    let mut rng = seeded_rng(seed);
    let mut model = Gcmae::new(cfg, ds.feature_dim(), &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let mut history = Vec::with_capacity(cfg.epochs);
    let start = Instant::now();
    let n = ds.num_nodes();
    let use_batches = cfg.batch_nodes > 0 && cfg.batch_nodes < n;
    for epoch in 0..cfg.epochs {
        let breakdown = if use_batches {
            // One pass ≈ the whole graph in random-walk subgraph batches.
            let batches = n.div_ceil(cfg.batch_nodes).max(1);
            let mut acc = LossBreakdown::default();
            for _ in 0..batches {
                let batch = walk_subgraph(ds, cfg.batch_nodes, &mut rng);
                let b = model.train_step(
                    &batch.data.graph,
                    &batch.data.features,
                    &mut adam,
                    &mut rng,
                );
                acc.total += b.total / batches as f32;
                acc.sce += b.sce / batches as f32;
                acc.contrast += b.contrast / batches as f32;
                acc.adj += b.adj / batches as f32;
                acc.variance += b.variance / batches as f32;
            }
            acc
        } else {
            model.train_step(&ds.graph, &ds.features, &mut adam, &mut rng)
        };
        history.push(breakdown);
        on_epoch(epoch, &model);
    }
    let train_seconds = start.elapsed().as_secs_f64();
    let embeddings = model.embed_dataset(ds, &mut rng);
    TrainOutput { embeddings, history, train_seconds, model, rollbacks: vec![] }
}

/// RNG stream for one epoch of a checked run. Deriving a fresh stream from
/// `(seed, epoch)` makes "the RNG state at epoch k" a pure function of two
/// integers — which is exactly what lets a resumed run replay the bit
/// pattern of an uninterrupted one without serializing generator internals.
fn epoch_rng(seed: u64, epoch: usize) -> StdRng {
    use rand::SeedableRng;
    let stream = seed ^ (epoch as u64 + 1).wrapping_mul(0xd1b5_4a32_d192_ed03);
    StdRng::seed_from_u64(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Pre-trains with divergence guards and checkpoint/rollback recovery.
///
/// Differences from [`train`]: every loss term and gradient is scanned for
/// non-finite values, kernel panics are contained, and a detected fault
/// rolls the run back to the last good checkpoint with the learning rate
/// multiplied by `ft.lr_backoff` — up to `ft.max_retries` times before the
/// run fails with [`TrainError::RetriesExhausted`]. Every recovery is
/// recorded in [`TrainOutput::rollbacks`].
pub fn train_checked(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    seed: u64,
    ft: &FaultTolerance,
) -> Result<TrainOutput, TrainError> {
    train_checked_injected(ds, cfg, seed, ft, FaultPlan::default(), |_, _| {})
}

/// [`train_checked`] with a per-epoch callback `(epoch, view)`; the view
/// exposes the model and can serialize the full training state, so callers
/// can persist resume points wherever they like.
pub fn train_checked_traced(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    seed: u64,
    ft: &FaultTolerance,
    on_epoch: impl FnMut(usize, &EpochView<'_>),
) -> Result<TrainOutput, TrainError> {
    train_checked_injected(ds, cfg, seed, ft, FaultPlan::default(), on_epoch)
}

/// Test-only entry point: [`train_checked_traced`] plus a deterministic
/// [`FaultPlan`]. Public so the integration suite can exercise recovery,
/// hidden because production code has no business injecting faults.
#[doc(hidden)]
pub fn train_checked_injected(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    seed: u64,
    ft: &FaultTolerance,
    plan: FaultPlan,
    on_epoch: impl FnMut(usize, &EpochView<'_>),
) -> Result<TrainOutput, TrainError> {
    let mut init_rng = seeded_rng(seed);
    let model = Gcmae::new(cfg, ds.feature_dim(), &mut init_rng);
    let start = TrainMeta { epoch: 0, adam_step: 0, lr: cfg.lr, rng_seed: seed, retries_used: 0 };
    run_checked(ds, cfg, model, start, ft, plan, on_epoch)
}

/// Resumes a checked run from v2 training-state bytes (see
/// [`EpochView::checkpoint`]). The continuation is bit-identical to the
/// uninterrupted run: parameters, Adam moments and step count, learning
/// rate, and per-epoch RNG streams all pick up exactly where the checkpoint
/// left them.
pub fn resume_checked(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    state: Bytes,
    ft: &FaultTolerance,
) -> Result<TrainOutput, TrainError> {
    // The architecture is deterministic in `cfg`; the init draws below are
    // overwritten wholesale by the checkpoint, so the init seed is moot.
    let mut init_rng = seeded_rng(0);
    let mut model = Gcmae::new(cfg, ds.feature_dim(), &mut init_rng);
    let meta = load_train_state(&mut model.store, state)?;
    run_checked(ds, cfg, model, meta, ft, FaultPlan::default(), |_, _| {})
}

/// What the checked trainer shows its per-epoch callback.
pub struct EpochView<'a> {
    /// The model after this epoch's update.
    pub model: &'a Gcmae,
    meta: TrainMeta,
}

impl EpochView<'_> {
    /// Serializes the full training state as of the end of this epoch
    /// (checkpoint format v2). Feeding these bytes to [`resume_checked`]
    /// continues the run bit-identically.
    pub fn checkpoint(&self) -> Bytes {
        save_train_state(&self.model.store, &self.meta)
    }
}

fn run_checked(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    mut model: Gcmae,
    start: TrainMeta,
    ft: &FaultTolerance,
    mut plan: FaultPlan,
    mut on_epoch: impl FnMut(usize, &EpochView<'_>),
) -> Result<TrainOutput, TrainError> {
    let seed = start.rng_seed;
    let first_epoch = start.epoch as usize;
    let mut adam = Adam::new(start.lr, cfg.weight_decay);
    adam.set_step_count(start.adam_step);
    let mut retries = start.retries_used;
    let mut history: Vec<LossBreakdown> = vec![];
    let mut rollbacks = vec![];
    let timer = Instant::now();

    let meta_at = |epoch: usize, adam: &Adam, retries: u32| TrainMeta {
        epoch: epoch as u64,
        adam_step: adam.step_count(),
        lr: adam.lr,
        rng_seed: seed,
        retries_used: retries,
    };
    // The rollback target must exist before the first step, so a divergence
    // at epoch 0 still has somewhere to go.
    let mut good = save_train_state(&model.store, &meta_at(first_epoch, &adam, retries));
    let mut good_epoch = first_epoch;
    if plan.truncate_checkpoint {
        good = good.slice(0..good.len() / 2);
    }

    let mut epoch = first_epoch;
    while epoch < cfg.epochs {
        let guard = StepGuard {
            check_finite: true,
            clip_norm: ft.clip_norm,
            poison_loss: plan.nan_loss_at.take_if(|&mut e| e == epoch).is_some(),
            poison_grad: plan.nan_grad_at.take_if(|&mut e| e == epoch).is_some(),
        };
        let detonate = plan.panic_at.take_if(|&mut e| e == epoch).is_some();

        let mut rng = epoch_rng(seed, epoch);
        // A panic mid-step can leave a half-applied optimizer update behind;
        // that is fine because the only way forward from here is a full
        // state restore from `good`.
        let step = catch_unwind(AssertUnwindSafe(|| {
            if detonate {
                fault::detonate_parallel_panic();
            }
            run_one_epoch(&mut model, &mut adam, ds, cfg, &guard, &mut rng)
        }));
        let fault = match step {
            Ok(Ok(breakdown)) => {
                history.push(breakdown);
                epoch += 1;
                on_epoch(epoch - 1, &EpochView { model: &model, meta: meta_at(epoch, &adam, retries) });
                if ft.checkpoint_every > 0 && (epoch - first_epoch) % ft.checkpoint_every == 0 {
                    good = save_train_state(&model.store, &meta_at(epoch, &adam, retries));
                    good_epoch = epoch;
                }
                continue;
            }
            Ok(Err(fault)) => fault,
            Err(payload) => StepFault::KernelPanic { message: panic_message(payload) },
        };

        if retries >= ft.max_retries {
            return Err(TrainError::RetriesExhausted { epoch, retries, last: fault });
        }
        retries += 1;
        // Back off relative to the *current* lr so consecutive rollbacks
        // onto the same checkpoint keep compounding.
        let lr_after = adam.lr * ft.lr_backoff;
        let restored = load_train_state(&mut model.store, good.clone())?;
        adam.set_step_count(restored.adam_step);
        adam.lr = lr_after;
        history.truncate(good_epoch - first_epoch);
        rollbacks.push(RollbackEvent { at_epoch: epoch, restored_epoch: good_epoch, lr_after, fault });
        epoch = good_epoch;
    }

    let train_seconds = timer.elapsed().as_secs_f64();
    // Embeddings draw from the one-past-the-end stream so they are the same
    // whether the run was interrupted or not.
    let mut erng = epoch_rng(seed, cfg.epochs);
    let embeddings = model.embed_dataset(ds, &mut erng);
    Ok(TrainOutput { embeddings, history, train_seconds, model, rollbacks })
}

/// One epoch of the checked loop — same batching structure as
/// [`train_traced`], but every step goes through the guard. Injected
/// poisons only apply to the first batch so a fault fires exactly once.
fn run_one_epoch(
    model: &mut Gcmae,
    adam: &mut Adam,
    ds: &Dataset,
    cfg: &GcmaeConfig,
    guard: &StepGuard,
    rng: &mut StdRng,
) -> Result<LossBreakdown, StepFault> {
    let n = ds.num_nodes();
    let use_batches = cfg.batch_nodes > 0 && cfg.batch_nodes < n;
    if !use_batches {
        return model.train_step_guarded(&ds.graph, &ds.features, adam, rng, guard);
    }
    let batches = n.div_ceil(cfg.batch_nodes).max(1);
    let mut acc = LossBreakdown::default();
    for i in 0..batches {
        let batch = walk_subgraph(ds, cfg.batch_nodes, rng);
        let g = if i == 0 {
            guard.clone()
        } else {
            StepGuard { poison_loss: false, poison_grad: false, ..guard.clone() }
        };
        let b = model.train_step_guarded(&batch.data.graph, &batch.data.features, adam, rng, &g)?;
        acc.total += b.total / batches as f32;
        acc.sce += b.sce / batches as f32;
        acc.contrast += b.contrast / batches as f32;
        acc.adj += b.adj / batches as f32;
        acc.variance += b.variance / batches as f32;
    }
    Ok(acc)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    fn tiny() -> Dataset {
        generate(&CitationSpec::cora().scaled(0.02), 11)
    }

    #[test]
    fn full_graph_training_converges() {
        let ds = tiny();
        let cfg = GcmaeConfig { hidden_dim: 16, proj_dim: 8, epochs: 25, ..GcmaeConfig::fast() };
        let out = train(&ds, &cfg, 1);
        assert_eq!(out.history.len(), 25);
        assert_eq!(out.embeddings.shape(), (ds.num_nodes(), 16));
        let first = out.history.first().unwrap().total;
        let last = out.history.last().unwrap().total;
        assert!(last < first, "no convergence: {first} -> {last}");
        assert!(out.train_seconds > 0.0);
    }

    #[test]
    fn subgraph_batching_runs_and_converges() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 16,
            proj_dim: 8,
            epochs: 10,
            batch_nodes: 24,
            adj_sample: 16,
            contrast_sample: 16,
            ..GcmaeConfig::fast()
        };
        let out = train(&ds, &cfg, 2);
        assert_eq!(out.embeddings.rows(), ds.num_nodes());
        assert!(out.history.iter().all(|b| b.total.is_finite()));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let ds = tiny();
        let cfg = GcmaeConfig { hidden_dim: 8, proj_dim: 4, epochs: 5, ..GcmaeConfig::fast() };
        let a = train(&ds, &cfg, 3);
        let b = train(&ds, &cfg, 3);
        assert_eq!(a.embeddings.max_abs_diff(&b.embeddings), 0.0);
        let c = train(&ds, &cfg, 4);
        assert!(c.embeddings.max_abs_diff(&a.embeddings) > 0.0);
    }

    #[test]
    fn callback_sees_every_epoch() {
        let ds = tiny();
        let cfg = GcmaeConfig { hidden_dim: 8, proj_dim: 4, epochs: 7, ..GcmaeConfig::fast() };
        let mut seen = vec![];
        let _ = train_traced(&ds, &cfg, 5, |e, _| seen.push(e));
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    fn small_cfg(epochs: usize) -> GcmaeConfig {
        GcmaeConfig { hidden_dim: 8, proj_dim: 4, epochs, ..GcmaeConfig::fast() }
    }

    #[test]
    fn checked_run_is_clean_and_deterministic() {
        let ds = tiny();
        let cfg = small_cfg(6);
        let ft = FaultTolerance::default();
        let a = train_checked(&ds, &cfg, 9, &ft).unwrap();
        let b = train_checked(&ds, &cfg, 9, &ft).unwrap();
        assert!(a.rollbacks.is_empty());
        assert_eq!(a.history.len(), 6);
        assert_eq!(a.embeddings.max_abs_diff(&b.embeddings), 0.0);
    }

    #[test]
    fn resume_replays_the_uninterrupted_run_bit_for_bit() {
        let ds = tiny();
        let cfg = small_cfg(8);
        let ft = FaultTolerance::default();
        let mut snapshot = None;
        let full = train_checked_traced(&ds, &cfg, 10, &ft, |e, view| {
            if e == 3 {
                snapshot = Some(view.checkpoint());
            }
        })
        .unwrap();
        let resumed = resume_checked(&ds, &cfg, snapshot.unwrap(), &ft).unwrap();
        assert_eq!(resumed.history.len(), 4, "epochs 4..8 re-run");
        assert_eq!(full.embeddings.max_abs_diff(&resumed.embeddings), 0.0);
        for (a, b) in full.history[4..].iter().zip(&resumed.history) {
            assert_eq!(a.total.to_bits(), b.total.to_bits());
        }
    }

    #[test]
    fn injected_nan_loss_rolls_back_with_lr_backoff() {
        let ds = tiny();
        let cfg = small_cfg(8);
        let ft = FaultTolerance { checkpoint_every: 2, ..FaultTolerance::default() };
        let plan = FaultPlan { nan_loss_at: Some(5), ..FaultPlan::default() };
        let out = train_checked_injected(&ds, &cfg, 11, &ft, plan, |_, _| {}).unwrap();
        assert_eq!(out.rollbacks.len(), 1);
        let rb = &out.rollbacks[0];
        assert_eq!(rb.at_epoch, 5);
        assert_eq!(rb.restored_epoch, 4, "last multiple of checkpoint_every");
        assert_eq!(rb.lr_after, cfg.lr * ft.lr_backoff);
        assert_eq!(rb.fault, StepFault::NonFiniteLoss { term: "total" });
        // run completed all epochs after recovery and still converged
        assert_eq!(out.history.len(), 8);
        assert!(out.history.last().unwrap().total < out.history[0].total);
    }

    #[test]
    fn injected_nan_gradient_is_caught_before_the_update() {
        let ds = tiny();
        let cfg = small_cfg(5);
        let ft = FaultTolerance::default();
        let plan = FaultPlan { nan_grad_at: Some(2), ..FaultPlan::default() };
        let out = train_checked_injected(&ds, &cfg, 12, &ft, plan, |_, _| {}).unwrap();
        assert_eq!(out.rollbacks.len(), 1);
        assert!(matches!(out.rollbacks[0].fault, StepFault::NonFiniteGradient { .. }));
        assert!(out.history.iter().all(|b| b.total.is_finite()));
    }

    #[test]
    fn injected_parallel_panic_is_contained_and_recovered() {
        let ds = tiny();
        let cfg = small_cfg(5);
        let ft = FaultTolerance::default();
        let plan = FaultPlan { panic_at: Some(1), ..FaultPlan::default() };
        let out = train_checked_injected(&ds, &cfg, 13, &ft, plan, |_, _| {}).unwrap();
        assert_eq!(out.rollbacks.len(), 1);
        match &out.rollbacks[0].fault {
            StepFault::KernelPanic { message } => {
                assert!(message.contains("injected parallel-job fault"), "payload: {message}")
            }
            other => panic!("expected KernelPanic, got {other:?}"),
        }
        assert_eq!(out.history.len(), 5);
    }

    #[test]
    fn retry_budget_is_enforced() {
        let ds = tiny();
        let cfg = small_cfg(4);
        let ft = FaultTolerance { max_retries: 0, ..FaultTolerance::default() };
        let plan = FaultPlan { nan_loss_at: Some(1), ..FaultPlan::default() };
        let Err(err) = train_checked_injected(&ds, &cfg, 14, &ft, plan, |_, _| {}) else {
            panic!("expected the run to fail")
        };
        match err {
            TrainError::RetriesExhausted { epoch, retries, last } => {
                assert_eq!((epoch, retries), (1, 0));
                assert_eq!(last, StepFault::NonFiniteLoss { term: "total" });
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn unusable_rollback_checkpoint_is_a_structured_error() {
        let ds = tiny();
        let cfg = small_cfg(4);
        let ft = FaultTolerance { checkpoint_every: 0, ..FaultTolerance::default() };
        let plan =
            FaultPlan { nan_loss_at: Some(1), truncate_checkpoint: true, ..FaultPlan::default() };
        let Err(err) = train_checked_injected(&ds, &cfg, 15, &ft, plan, |_, _| {}) else {
            panic!("expected the run to fail")
        };
        assert!(matches!(err, TrainError::Checkpoint(gcmae_nn::CheckpointError::Truncated)), "{err}");
    }

    #[test]
    fn checked_batched_path_guards_every_step() {
        let ds = tiny();
        let cfg = GcmaeConfig { batch_nodes: 24, adj_sample: 16, contrast_sample: 16, ..small_cfg(4) };
        let ft = FaultTolerance::default();
        let plan = FaultPlan { nan_loss_at: Some(2), ..FaultPlan::default() };
        let out = train_checked_injected(&ds, &cfg, 16, &ft, plan, |_, _| {}).unwrap();
        assert_eq!(out.rollbacks.len(), 1);
        assert_eq!(out.history.len(), 4);
        assert!(out.history.iter().all(|b| b.total.is_finite()));
    }
}
