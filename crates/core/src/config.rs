//! GCMAE hyper-parameters (paper §4, §5.1, and Figure 5/6 sweeps) and the
//! typed [`Objective`] describing the training loss.

use gcmae_nn::{Act, EncoderKind};
use serde::{Deserialize, Serialize};

/// Serializable mirror of [`EncoderKind`] for experiment records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderChoice {
    /// Gcn.
    Gcn,
    /// Sage.
    Sage,
    /// Gat.
    Gat {
        /// Number of attention heads.
        heads: usize,
    },
    /// Gin.
    Gin,
}

impl From<EncoderChoice> for EncoderKind {
    fn from(c: EncoderChoice) -> Self {
        match c {
            EncoderChoice::Gcn => EncoderKind::Gcn,
            EncoderChoice::Sage => EncoderKind::Sage,
            EncoderChoice::Gat { heads } => EncoderKind::Gat { heads },
            EncoderChoice::Gin => EncoderKind::Gin,
        }
    }
}

/// Distribution negatives are drawn from (per-anchor, rejection-free; see
/// `gcmae_graph::sampling::negative_table`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplerDist {
    /// Uniform over nodes, distinct within each anchor's row.
    Uniform,
    /// Degree-proportional with replacement (word2vec-style).
    Degree,
}

/// How a pairwise loss term obtains its negative pairs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Negatives {
    /// All pairs within the (sub)sampled anchor set — O(n²). `sample` caps
    /// the anchor set per step (`0` = every node).
    Dense {
        /// Anchors sampled per step (`0` = all nodes).
        sample: usize,
    },
    /// `k` sampled negatives per anchor — O(n·k) — drawn from the per-epoch
    /// RNG stream, so resumed runs stay bit-identical.
    Sampled {
        /// Negatives per anchor.
        k: usize,
        /// Sampling distribution.
        dist: SamplerDist,
    },
}

/// One term of the training objective. The total loss is the weighted sum
/// of the terms, evaluated in `Vec` order (term order fixes the RNG draw
/// order, so it is part of a run's determinism contract).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LossTerm {
    /// Scaled cosine error on masked-feature reconstruction (weight 1).
    Sce {
        /// SCE sharpening exponent `γ`.
        gamma: f32,
    },
    /// Symmetric InfoNCE between the two corrupted views.
    InfoNce {
        /// Weight `α` of the contrastive loss `L_C`.
        alpha: f32,
        /// InfoNCE temperature `τ`.
        tau: f32,
        /// Negative-pair strategy.
        negatives: Negatives,
    },
    /// Adjacency-matrix reconstruction from the decoded features.
    AdjRecon {
        /// Weight `λ` of the reconstruction loss `L_E`.
        lambda: f32,
        /// Negative-pair strategy. `Dense{sample}` reconstructs the induced
        /// subgraph on `sample` nodes; `Sampled{..}` uses every true edge as
        /// a positive and `k` sampled non-neighbors per anchor as negatives.
        negatives: Negatives,
    },
    /// Hinge variance discrimination loss on the encoder output.
    Variance {
        /// Weight `μ` of the discrimination loss `L_Var`.
        mu: f32,
    },
}

/// Typed training objective: an ordered list of weighted [`LossTerm`]s.
///
/// Replaces the flat `alpha`/`lambda`/`mu`/`use_*`/`*_sample` fields of
/// [`GcmaeConfig`] (now deprecated). Configs that predate the objective
/// still load: when `objective` is absent, [`GcmaeConfig::objective`]
/// derives an equivalent dense spec from the flat fields.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// Ordered loss terms.
    pub terms: Vec<LossTerm>,
}

impl Objective {
    /// The paper's full objective (Eq. 8) with the given weights, dense
    /// pairs, and the default anchor caps (`contrast_sample` 1024 /
    /// `adj_sample` 512).
    pub fn paper() -> Self {
        Self {
            terms: vec![
                LossTerm::Sce { gamma: 2.0 },
                LossTerm::InfoNce {
                    alpha: 1.0,
                    tau: 0.5,
                    negatives: Negatives::Dense { sample: 1024 },
                },
                LossTerm::AdjRecon {
                    lambda: 0.5,
                    negatives: Negatives::Dense { sample: 512 },
                },
                LossTerm::Variance { mu: 0.5 },
            ],
        }
    }

    /// Switches every pairwise term to `Sampled { k, dist }` negatives,
    /// leaving weights and temperatures unchanged. The standard migration
    /// path from a dense config to million-node training.
    pub fn sampled(mut self, k: usize, dist: SamplerDist) -> Self {
        for term in &mut self.terms {
            match term {
                LossTerm::InfoNce { negatives, .. } | LossTerm::AdjRecon { negatives, .. } => {
                    *negatives = Negatives::Sampled { k, dist };
                }
                LossTerm::Sce { .. } | LossTerm::Variance { .. } => {}
            }
        }
        self
    }

    /// Sets the loss weights: `alpha` on every InfoNCE term, `lambda` on
    /// every adjacency-reconstruction term, `mu` on every variance term.
    pub fn with_weights(mut self, alpha: f32, lambda: f32, mu: f32) -> Self {
        for term in &mut self.terms {
            match term {
                LossTerm::InfoNce { alpha: a, .. } => *a = alpha,
                LossTerm::AdjRecon { lambda: l, .. } => *l = lambda,
                LossTerm::Variance { mu: m } => *m = mu,
                LossTerm::Sce { .. } => {}
            }
        }
        self
    }

    /// Sets the temperature on every InfoNCE term.
    pub fn with_tau(mut self, tau: f32) -> Self {
        for term in &mut self.terms {
            if let LossTerm::InfoNce { tau: t, .. } = term {
                *t = tau;
            }
        }
        self
    }

    /// Sets the dense anchor caps: `contrast` nodes for every InfoNCE term
    /// and `adj` nodes for every dense adjacency-reconstruction term
    /// (`0` = all nodes). Sampled terms are left untouched.
    pub fn with_dense_caps(mut self, contrast: usize, adj: usize) -> Self {
        for term in &mut self.terms {
            match term {
                LossTerm::InfoNce { negatives: negatives @ Negatives::Dense { .. }, .. } => {
                    *negatives = Negatives::Dense { sample: contrast };
                }
                LossTerm::AdjRecon { negatives: negatives @ Negatives::Dense { .. }, .. } => {
                    *negatives = Negatives::Dense { sample: adj };
                }
                _ => {}
            }
        }
        self
    }

    /// Removes every [`LossTerm::InfoNce`] term (Table 10 `w/o Con.`).
    pub fn without_contrastive(mut self) -> Self {
        self.terms.retain(|t| !matches!(t, LossTerm::InfoNce { .. }));
        self
    }

    /// Removes every [`LossTerm::AdjRecon`] term (Table 10 `w/o Stru. Rec.`).
    pub fn without_struct_recon(mut self) -> Self {
        self.terms.retain(|t| !matches!(t, LossTerm::AdjRecon { .. }));
        self
    }

    /// Removes every [`LossTerm::Variance`] term (Table 10 `w/o Disc.`).
    pub fn without_discrimination(mut self) -> Self {
        self.terms.retain(|t| !matches!(t, LossTerm::Variance { .. }));
        self
    }

    /// One-line description for logs and the serve `stats` op, e.g.
    /// `sce(γ=2)+infonce(α=1,τ=0.5,sampled k=5 uniform)+var(μ=0.5)`.
    pub fn describe(&self) -> String {
        let neg = |n: &Negatives| match n {
            Negatives::Dense { sample: 0 } => "dense".to_string(),
            Negatives::Dense { sample } => format!("dense n={sample}"),
            Negatives::Sampled { k, dist } => format!(
                "sampled k={k} {}",
                match dist {
                    SamplerDist::Uniform => "uniform",
                    SamplerDist::Degree => "degree",
                }
            ),
        };
        let parts: Vec<String> = self
            .terms
            .iter()
            .map(|t| match t {
                LossTerm::Sce { gamma } => format!("sce(γ={gamma})"),
                LossTerm::InfoNce { alpha, tau, negatives } => {
                    format!("infonce(α={alpha},τ={tau},{})", neg(negatives))
                }
                LossTerm::AdjRecon { lambda, negatives } => {
                    format!("adjrecon(λ={lambda},{})", neg(negatives))
                }
                LossTerm::Variance { mu } => format!("var(μ={mu})"),
            })
            .collect();
        parts.join("+")
    }
}

/// Full GCMAE configuration. The defaults follow the paper: GraphSAGE
/// encoder (§5.4), 2 layers / 512 hidden (Figure 6 optimum — scaled to 256
/// by the fast harness presets), `p_mask = 0.5`, Adam(0.001) with weight
/// decay 1e-4, SCE with γ = 2.
///
/// The loss is specified by [`GcmaeConfig::objective`] (the resolver) /
/// [`GcmaeConfig::with_objective`] (the builder). The flat loss fields
/// remain for back-compat and are honored only while `objective` is `None`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GcmaeConfig {
    /// encoder.
    pub encoder: EncoderChoice,
    /// hidden dim.
    pub hidden_dim: usize,
    /// layers.
    pub layers: usize,
    /// Projector output width for the contrastive branch.
    pub proj_dim: usize,
    /// Feature mask rate `p_mask` (MAE view, `T₁`).
    pub p_mask: f32,
    /// Node drop rate `p_drop` (contrastive view, `T₂`).
    pub p_drop: f32,
    /// Weight `α` of the contrastive loss `L_C`.
    #[deprecated(since = "0.9.0", note = "use GcmaeConfig::with_objective / LossTerm::InfoNce")]
    pub alpha: f32,
    /// Weight `λ` of the adjacency-reconstruction loss `L_E`.
    #[deprecated(since = "0.9.0", note = "use GcmaeConfig::with_objective / LossTerm::AdjRecon")]
    pub lambda: f32,
    /// Weight `μ` of the discrimination loss `L_Var`.
    #[deprecated(since = "0.9.0", note = "use GcmaeConfig::with_objective / LossTerm::Variance")]
    pub mu: f32,
    /// SCE sharpening exponent `γ`.
    pub gamma: f32,
    /// InfoNCE temperature `τ`.
    pub tau: f32,
    /// epochs.
    pub epochs: usize,
    /// lr.
    pub lr: f32,
    /// weight decay.
    pub weight_decay: f32,
    /// dropout.
    pub dropout: f32,
    /// Nodes sampled for each adjacency-reconstruction subgraph (§4.4).
    #[deprecated(since = "0.9.0", note = "use Negatives::Dense{sample} on LossTerm::AdjRecon")]
    pub adj_sample: usize,
    /// Anchors sampled for InfoNCE (`0` = all nodes).
    #[deprecated(since = "0.9.0", note = "use Negatives::Dense{sample} on LossTerm::InfoNce")]
    pub contrast_sample: usize,
    /// Subgraph mini-batch size for large graphs (`0` = full graph).
    pub batch_nodes: usize,
    /// Ablation toggles (Table 10): `w/o Con.`, `w/o Stru. Rec.`, `w/o Disc.`
    #[deprecated(since = "0.9.0", note = "use Objective::without_contrastive")]
    pub use_contrastive: bool,
    /// use struct recon.
    #[deprecated(since = "0.9.0", note = "use Objective::without_struct_recon")]
    pub use_struct_recon: bool,
    /// use discrimination.
    #[deprecated(since = "0.9.0", note = "use Objective::without_discrimination")]
    pub use_discrimination: bool,
    /// Typed objective. `None` (the value in every pre-objective config
    /// JSON) means "derive from the flat fields above".
    pub objective: Option<Objective>,
}

#[allow(deprecated)]
impl Default for GcmaeConfig {
    fn default() -> Self {
        Self {
            encoder: EncoderChoice::Sage,
            hidden_dim: 256,
            layers: 2,
            proj_dim: 64,
            p_mask: 0.5,
            p_drop: 0.2,
            alpha: 1.0,
            lambda: 0.5,
            mu: 0.5,
            gamma: 2.0,
            tau: 0.5,
            epochs: 200,
            lr: 0.001,
            weight_decay: 1e-4,
            dropout: 0.2,
            adj_sample: 512,
            contrast_sample: 1024,
            batch_nodes: 0,
            use_contrastive: true,
            use_struct_recon: true,
            use_discrimination: true,
            objective: None,
        }
    }
}

/// Fault-tolerance policy for guarded [`crate::session::TrainSession`] runs.
/// Kept out of
/// [`GcmaeConfig`] on purpose: it changes how a run *recovers*, not what it
/// optimizes, so experiment records stay comparable across policies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultTolerance {
    /// Save a full training checkpoint every this many epochs (`0` = only
    /// the initial snapshot taken before the first step).
    pub checkpoint_every: usize,
    /// Rollbacks allowed before the run fails with `RetriesExhausted`.
    pub max_retries: u32,
    /// Learning-rate multiplier applied at every rollback.
    pub lr_backoff: f32,
    /// Global gradient-norm clip threshold (`0` = no clipping).
    pub clip_norm: f32,
}

impl Default for FaultTolerance {
    fn default() -> Self {
        Self { checkpoint_every: 10, max_retries: 3, lr_backoff: 0.5, clip_norm: 0.0 }
    }
}

impl GcmaeConfig {
    /// Activation used between encoder layers (fixed, as in GraphMAE).
    pub fn act(&self) -> Act {
        Act::Elu
    }

    /// Fast preset for tests and Criterion benches.
    #[allow(deprecated)]
    pub fn fast() -> Self {
        Self {
            hidden_dim: 32,
            proj_dim: 16,
            epochs: 20,
            adj_sample: 64,
            contrast_sample: 128,
            ..Self::default()
        }
    }

    /// The training objective this config resolves to. An explicit
    /// [`GcmaeConfig::with_objective`] spec wins; otherwise an equivalent
    /// dense objective is derived from the deprecated flat fields, in the
    /// historical term order (SCE → InfoNCE → AdjRecon → Variance) so
    /// legacy runs keep their exact RNG draw order.
    #[allow(deprecated)]
    pub fn objective(&self) -> Objective {
        if let Some(o) = &self.objective {
            return o.clone();
        }
        let mut terms = vec![LossTerm::Sce { gamma: self.gamma }];
        if self.use_contrastive {
            terms.push(LossTerm::InfoNce {
                alpha: self.alpha,
                tau: self.tau,
                negatives: Negatives::Dense { sample: self.contrast_sample },
            });
        }
        if self.use_struct_recon {
            terms.push(LossTerm::AdjRecon {
                lambda: self.lambda,
                negatives: Negatives::Dense { sample: self.adj_sample },
            });
        }
        if self.use_discrimination {
            terms.push(LossTerm::Variance { mu: self.mu });
        }
        Objective { terms }
    }

    /// Sets an explicit typed objective; the deprecated flat loss fields are
    /// ignored from then on.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = Some(objective);
        self
    }

    /// Table 10 variant: remove the contrastive branch.
    #[allow(deprecated)]
    pub fn without_contrastive(mut self) -> Self {
        self.use_contrastive = false;
        if let Some(o) = self.objective.take() {
            self.objective = Some(o.without_contrastive());
        }
        self
    }

    /// Table 10 variant: remove adjacency-matrix reconstruction.
    #[allow(deprecated)]
    pub fn without_struct_recon(mut self) -> Self {
        self.use_struct_recon = false;
        if let Some(o) = self.objective.take() {
            self.objective = Some(o.without_struct_recon());
        }
        self
    }

    /// Table 10 variant: remove the discrimination loss.
    #[allow(deprecated)]
    pub fn without_discrimination(mut self) -> Self {
        self.use_discrimination = false;
        if let Some(o) = self.objective.take() {
            self.objective = Some(o.without_discrimination());
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GcmaeConfig::default();
        assert_eq!(c.layers, 2);
        assert_eq!(c.gamma, 2.0);
        assert_eq!(c.lr, 0.001);
        assert_eq!(c.weight_decay, 1e-4);
        assert_eq!(c.objective(), Objective::paper());
    }

    #[test]
    fn ablation_builders_drop_terms() {
        let base = GcmaeConfig::default();
        let no_con = base.clone().without_contrastive().objective();
        assert!(!no_con.terms.iter().any(|t| matches!(t, LossTerm::InfoNce { .. })));
        let no_rec = base.clone().without_struct_recon().objective();
        assert!(!no_rec.terms.iter().any(|t| matches!(t, LossTerm::AdjRecon { .. })));
        let no_disc = base.without_discrimination().objective();
        assert!(!no_disc.terms.iter().any(|t| matches!(t, LossTerm::Variance { .. })));
    }

    #[test]
    fn ablation_builders_also_filter_explicit_objectives() {
        let c = GcmaeConfig::default()
            .with_objective(Objective::paper())
            .without_contrastive();
        let o = c.objective();
        assert!(!o.terms.iter().any(|t| matches!(t, LossTerm::InfoNce { .. })));
        assert_eq!(o.terms.len(), 3);
    }

    #[test]
    fn explicit_objective_overrides_flat_fields() {
        let o = Objective::paper().sampled(7, SamplerDist::Degree);
        let c = GcmaeConfig::fast().with_objective(o.clone());
        assert_eq!(c.objective(), o);
        for t in &c.objective().terms {
            if let LossTerm::InfoNce { negatives, .. } | LossTerm::AdjRecon { negatives, .. } = t {
                assert_eq!(*negatives, Negatives::Sampled { k: 7, dist: SamplerDist::Degree });
            }
        }
    }

    #[test]
    fn fast_preset_resolves_to_its_dense_caps() {
        let o = GcmaeConfig::fast().objective();
        assert!(o.terms.iter().any(|t| matches!(
            t,
            LossTerm::InfoNce { negatives: Negatives::Dense { sample: 128 }, .. }
        )));
        assert!(o.terms.iter().any(|t| matches!(
            t,
            LossTerm::AdjRecon { negatives: Negatives::Dense { sample: 64 }, .. }
        )));
    }

    #[test]
    fn describe_is_stable() {
        let d = Objective::paper().sampled(5, SamplerDist::Uniform).describe();
        assert!(d.contains("sce"), "{d}");
        assert!(d.contains("sampled k=5 uniform"), "{d}");
    }

    #[test]
    fn config_serializes() {
        let c = GcmaeConfig::fast();
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("p_mask"));
    }

    /// A config serialized before the Objective API existed (PR 9) — flat
    /// loss fields only, no `objective` key. Kept verbatim: this exact text
    /// must keep loading forever.
    const PRE_PR9_CONFIG_JSON: &str = r#"{
        "encoder": "Gcn",
        "hidden_dim": 64,
        "layers": 2,
        "proj_dim": 32,
        "p_mask": 0.5,
        "p_drop": 0.2,
        "alpha": 0.3,
        "lambda": 0.1,
        "mu": 0.2,
        "gamma": 2.0,
        "tau": 0.75,
        "epochs": 80,
        "lr": 0.001,
        "weight_decay": 0.0001,
        "dropout": 0.2,
        "adj_sample": 60,
        "contrast_sample": 0,
        "batch_nodes": 0,
        "use_contrastive": true,
        "use_struct_recon": false,
        "use_discrimination": true
    }"#;

    #[test]
    #[allow(deprecated)]
    fn pre_pr9_flat_config_json_still_loads() {
        let c: GcmaeConfig = serde_json::from_str(PRE_PR9_CONFIG_JSON).unwrap();
        assert_eq!(c.encoder, EncoderChoice::Gcn);
        assert_eq!(c.hidden_dim, 64);
        assert_eq!(c.alpha, 0.3);
        assert_eq!(c.adj_sample, 60);
        assert!(!c.use_struct_recon);
        // the missing `objective` key resolves from the flat fields
        assert!(c.objective.is_none());
        let o = c.objective();
        assert!(!o.terms.iter().any(|t| matches!(t, LossTerm::AdjRecon { .. })));
        assert!(o.terms.iter().any(|t| matches!(
            t,
            LossTerm::InfoNce {
                alpha,
                tau,
                negatives: Negatives::Dense { sample: 0 },
            } if *alpha == 0.3 && *tau == 0.75
        )));
        assert!(o
            .terms
            .iter()
            .any(|t| matches!(t, LossTerm::Variance { mu } if *mu == 0.2)));
    }

    #[test]
    fn objective_config_json_round_trips() {
        let c = GcmaeConfig::fast()
            .with_objective(Objective::paper().sampled(16, SamplerDist::Degree));
        let json = serde_json::to_string(&c).unwrap();
        let back: GcmaeConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.objective(), c.objective());
        assert_eq!(back.hidden_dim, c.hidden_dim);
    }

    #[test]
    fn explicit_objective_json_parses() {
        let json = r#"{
            "terms": [
                {"Sce": {"gamma": 2.0}},
                {"InfoNce": {"alpha": 1.0, "tau": 0.5,
                             "negatives": {"Sampled": {"k": 5, "dist": "Uniform"}}}},
                {"AdjRecon": {"lambda": 0.5,
                              "negatives": {"Sampled": {"k": 5, "dist": "Degree"}}}},
                {"Variance": {"mu": 0.5}}
            ]
        }"#;
        let o: Objective = serde_json::from_str(json).unwrap();
        let expected = Objective {
            terms: vec![
                LossTerm::Sce { gamma: 2.0 },
                LossTerm::InfoNce {
                    alpha: 1.0,
                    tau: 0.5,
                    negatives: Negatives::Sampled { k: 5, dist: SamplerDist::Uniform },
                },
                LossTerm::AdjRecon {
                    lambda: 0.5,
                    negatives: Negatives::Sampled { k: 5, dist: SamplerDist::Degree },
                },
                LossTerm::Variance { mu: 0.5 },
            ],
        };
        assert_eq!(o, expected);
    }
}
