//! GCMAE hyper-parameters (paper §4, §5.1, and Figure 5/6 sweeps).

use gcmae_nn::{Act, EncoderKind};
use serde::{Deserialize, Serialize};

/// Serializable mirror of [`EncoderKind`] for experiment records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderChoice {
    /// Gcn.
    Gcn,
    /// Sage.
    Sage,
    /// Gat.
    Gat {
        /// Number of attention heads.
        heads: usize,
    },
    /// Gin.
    Gin,
}

impl From<EncoderChoice> for EncoderKind {
    fn from(c: EncoderChoice) -> Self {
        match c {
            EncoderChoice::Gcn => EncoderKind::Gcn,
            EncoderChoice::Sage => EncoderKind::Sage,
            EncoderChoice::Gat { heads } => EncoderKind::Gat { heads },
            EncoderChoice::Gin => EncoderKind::Gin,
        }
    }
}

/// Full GCMAE configuration. The defaults follow the paper: GraphSAGE
/// encoder (§5.4), 2 layers / 512 hidden (Figure 6 optimum — scaled to 256
/// by the fast harness presets), `p_mask = 0.5`, Adam(0.001) with weight
/// decay 1e-4, SCE with γ = 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GcmaeConfig {
    /// encoder.
    pub encoder: EncoderChoice,
    /// hidden dim.
    pub hidden_dim: usize,
    /// layers.
    pub layers: usize,
    /// Projector output width for the contrastive branch.
    pub proj_dim: usize,
    /// Feature mask rate `p_mask` (MAE view, `T₁`).
    pub p_mask: f32,
    /// Node drop rate `p_drop` (contrastive view, `T₂`).
    pub p_drop: f32,
    /// Weight `α` of the contrastive loss `L_C`.
    pub alpha: f32,
    /// Weight `λ` of the adjacency-reconstruction loss `L_E`.
    pub lambda: f32,
    /// Weight `μ` of the discrimination loss `L_Var`.
    pub mu: f32,
    /// SCE sharpening exponent `γ`.
    pub gamma: f32,
    /// InfoNCE temperature `τ`.
    pub tau: f32,
    /// epochs.
    pub epochs: usize,
    /// lr.
    pub lr: f32,
    /// weight decay.
    pub weight_decay: f32,
    /// dropout.
    pub dropout: f32,
    /// Nodes sampled for each adjacency-reconstruction subgraph (§4.4).
    pub adj_sample: usize,
    /// Anchors sampled for InfoNCE (`0` = all nodes).
    pub contrast_sample: usize,
    /// Subgraph mini-batch size for large graphs (`0` = full graph).
    pub batch_nodes: usize,
    /// Ablation toggles (Table 10): `w/o Con.`, `w/o Stru. Rec.`, `w/o Disc.`
    pub use_contrastive: bool,
    /// use struct recon.
    pub use_struct_recon: bool,
    /// use discrimination.
    pub use_discrimination: bool,
}

impl Default for GcmaeConfig {
    fn default() -> Self {
        Self {
            encoder: EncoderChoice::Sage,
            hidden_dim: 256,
            layers: 2,
            proj_dim: 64,
            p_mask: 0.5,
            p_drop: 0.2,
            alpha: 1.0,
            lambda: 0.5,
            mu: 0.5,
            gamma: 2.0,
            tau: 0.5,
            epochs: 200,
            lr: 0.001,
            weight_decay: 1e-4,
            dropout: 0.2,
            adj_sample: 512,
            contrast_sample: 1024,
            batch_nodes: 0,
            use_contrastive: true,
            use_struct_recon: true,
            use_discrimination: true,
        }
    }
}

/// Fault-tolerance policy for guarded [`crate::session::TrainSession`] runs.
/// Kept out of
/// [`GcmaeConfig`] on purpose: it changes how a run *recovers*, not what it
/// optimizes, so experiment records stay comparable across policies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultTolerance {
    /// Save a full training checkpoint every this many epochs (`0` = only
    /// the initial snapshot taken before the first step).
    pub checkpoint_every: usize,
    /// Rollbacks allowed before the run fails with `RetriesExhausted`.
    pub max_retries: u32,
    /// Learning-rate multiplier applied at every rollback.
    pub lr_backoff: f32,
    /// Global gradient-norm clip threshold (`0` = no clipping).
    pub clip_norm: f32,
}

impl Default for FaultTolerance {
    fn default() -> Self {
        Self { checkpoint_every: 10, max_retries: 3, lr_backoff: 0.5, clip_norm: 0.0 }
    }
}

impl GcmaeConfig {
    /// Activation used between encoder layers (fixed, as in GraphMAE).
    pub fn act(&self) -> Act {
        Act::Elu
    }

    /// Fast preset for tests and Criterion benches.
    pub fn fast() -> Self {
        Self {
            hidden_dim: 32,
            proj_dim: 16,
            epochs: 20,
            adj_sample: 64,
            contrast_sample: 128,
            ..Self::default()
        }
    }

    /// Table 10 variant: remove the contrastive branch.
    pub fn without_contrastive(mut self) -> Self {
        self.use_contrastive = false;
        self
    }

    /// Table 10 variant: remove adjacency-matrix reconstruction.
    pub fn without_struct_recon(mut self) -> Self {
        self.use_struct_recon = false;
        self
    }

    /// Table 10 variant: remove the discrimination loss.
    pub fn without_discrimination(mut self) -> Self {
        self.use_discrimination = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GcmaeConfig::default();
        assert_eq!(c.layers, 2);
        assert_eq!(c.gamma, 2.0);
        assert_eq!(c.lr, 0.001);
        assert_eq!(c.weight_decay, 1e-4);
        assert!(c.use_contrastive && c.use_struct_recon && c.use_discrimination);
    }

    #[test]
    fn ablation_builders_toggle_flags() {
        assert!(!GcmaeConfig::default().without_contrastive().use_contrastive);
        assert!(!GcmaeConfig::default().without_struct_recon().use_struct_recon);
        assert!(!GcmaeConfig::default().without_discrimination().use_discrimination);
    }

    #[test]
    fn config_serializes() {
        let c = GcmaeConfig::fast();
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("p_mask"));
    }
}
