//! The GCMAE model: shared encoder, MAE branch (GNN decoder + SCE +
//! adjacency reconstruction), and contrastive branch (projectors + InfoNCE),
//! trained with the joint objective of paper Eq. 8.

use std::sync::Arc;

use gcmae_graph::augment::{drop_nodes, mask_node_features};
use gcmae_graph::sampling::{negative_table, sample_nodes, NegativeSampling};
use gcmae_graph::{Dataset, Graph};
use gcmae_nn::{
    clip_global_norm, global_grad_norm, load_inference, Act, Adam, Bytes, CheckpointError, Encoder,
    EncoderConfig, GraphOps, Mlp, ParamStore, Session,
};
use gcmae_tensor::ops::adj_recon::Weights;
use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::{GcmaeConfig, LossTerm, Negatives, SamplerDist};
use crate::fault::{StepFault, StepGuard};

impl From<SamplerDist> for NegativeSampling {
    fn from(d: SamplerDist) -> Self {
        match d {
            SamplerDist::Uniform => NegativeSampling::Uniform,
            SamplerDist::Degree => NegativeSampling::Degree,
        }
    }
}

/// Per-step loss values (for logging, Figure 4, and the ablation study).
#[derive(Clone, Copy, Debug, Default)]
pub struct LossBreakdown {
    /// total.
    pub total: f32,
    /// sce.
    pub sce: f32,
    /// contrast.
    pub contrast: f32,
    /// adj.
    pub adj: f32,
    /// variance.
    pub variance: f32,
}

/// Everything one optimization step reports: the loss terms plus the
/// pre-clip global gradient L2 norm (serial `f64` accumulation, so it is
/// bit-identical at any thread count — safe to log on deterministic runs).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepReport {
    /// Loss terms of this step.
    pub loss: LossBreakdown,
    /// Global L2 norm of all gradients before any clipping.
    pub grad_norm: f32,
}

/// The GCMAE model (parameters + architecture).
pub struct Gcmae {
    /// store.
    pub store: ParamStore,
    encoder: Encoder,
    decoder: Encoder,
    proj1: Mlp,
    proj2: Mlp,
    cfg: GcmaeConfig,
    in_dim: usize,
}

impl Gcmae {
    /// Builds a fresh model for inputs of width `in_dim`.
    pub fn new(cfg: &GcmaeConfig, in_dim: usize, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let enc_cfg = EncoderConfig {
            kind: cfg.encoder.into(),
            in_dim,
            hidden_dim: cfg.hidden_dim,
            out_dim: cfg.hidden_dim,
            layers: cfg.layers,
            act: cfg.act(),
            dropout: cfg.dropout,
        };
        let encoder = Encoder::new(&mut store, &enc_cfg, rng);
        // Single-layer GNN decoder reconstructing the input features
        // (GraphMAE's re-mask + decode design).
        let dec_cfg = EncoderConfig {
            kind: cfg.encoder.into(),
            in_dim: cfg.hidden_dim,
            hidden_dim: cfg.hidden_dim,
            out_dim: in_dim,
            layers: 1,
            act: cfg.act(),
            dropout: 0.0,
        };
        let decoder = Encoder::new(&mut store, &dec_cfg, rng);
        let proj1 = Mlp::new(
            &mut store,
            &[cfg.hidden_dim, cfg.hidden_dim, cfg.proj_dim],
            Act::Elu,
            rng,
        );
        let proj2 = Mlp::new(
            &mut store,
            &[cfg.hidden_dim, cfg.hidden_dim, cfg.proj_dim],
            Act::Elu,
            rng,
        );
        Self {
            store,
            encoder,
            decoder,
            proj1,
            proj2,
            cfg: cfg.clone(),
            in_dim,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &GcmaeConfig {
        &self.cfg
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Deprecated unguarded step; use [`Gcmae::step`] with
    /// [`StepGuard::off`], which also reports the gradient norm.
    #[deprecated(since = "0.5.0", note = "use Gcmae::step with StepGuard::off()")]
    pub fn train_step(
        &mut self,
        graph: &Graph,
        features: &Matrix,
        adam: &mut Adam,
        rng: &mut StdRng,
    ) -> LossBreakdown {
        match self.step(graph, features, adam, rng, &StepGuard::off()) {
            Ok(r) => r.loss,
            // With every guard off there is nothing that can return Err.
            Err(f) => unreachable!("guards disabled but step faulted: {f}"),
        }
    }

    /// Deprecated guarded step; use [`Gcmae::step`], which also reports the
    /// gradient norm.
    #[deprecated(since = "0.5.0", note = "use Gcmae::step")]
    pub fn train_step_guarded(
        &mut self,
        graph: &Graph,
        features: &Matrix,
        adam: &mut Adam,
        rng: &mut StdRng,
        guard: &StepGuard,
    ) -> Result<LossBreakdown, StepFault> {
        self.step(graph, features, adam, rng, guard).map(|r| r.loss)
    }

    /// One optimization step on a (sub)graph. Algorithm 1 of the paper:
    /// generate the two corrupted views, encode both with the shared
    /// encoder, decode the MAE view, and combine the four losses.
    ///
    /// Guards (see [`StepGuard`]) scan every loss term and every gradient
    /// for non-finite values *before* the optimizer update and optionally
    /// clip the global gradient norm; with [`StepGuard::off`] the update is
    /// bit-identical and `Err` is impossible. On `Err` the model and
    /// optimizer are untouched — the fault is detected before `adam.step`
    /// runs, so the caller can retry or roll back without restoring state it
    /// knows is clean.
    pub fn step(
        &mut self,
        graph: &Graph,
        features: &Matrix,
        adam: &mut Adam,
        rng: &mut StdRng,
        guard: &StepGuard,
    ) -> Result<StepReport, StepFault> {
        // Nested arena scope: callers that hold their own `ArenaGuard` (the
        // training session) get cross-step buffer reuse; bare `step` callers
        // still get within-step reuse and release everything on return.
        let _arena = gcmae_tensor::ArenaGuard::new();
        let cfg = self.cfg.clone();
        let objective = cfg.objective();
        let n = graph.num_nodes();
        let mut sess = Session::new();
        let ops = GraphOps::new(graph);

        // T1: feature masking (MAE view). Every branch starts from the
        // shared encoding of this view.
        let masked = mask_node_features(features, cfg.p_mask, rng);
        let x1 = sess.tape.constant(masked.features);
        let h1 = self
            .encoder
            .forward(&mut sess, &self.store, x1, &ops, true, rng);

        // MAE branch: re-mask hidden rows, decode. The decoded features `Z`
        // feed SCE and adjacency reconstruction; the decoder runs without
        // dropout, so building it up front draws no randomness and keeps
        // the RNG stream identical to the historical fixed-order step.
        let needs_z = objective
            .terms
            .iter()
            .any(|t| matches!(t, LossTerm::Sce { .. } | LossTerm::AdjRecon { .. }));
        let z = needs_z.then(|| {
            let h1_rm = sess.tape.mask_rows(h1, masked.masked.clone());
            self.decoder
                .forward(&mut sess, &self.store, h1_rm, &ops, true, rng)
        });

        // Terms accumulate onto a zero scalar in spec order (the order is
        // part of the determinism contract — it fixes the RNG draw order).
        let mut loss = sess.tape.constant(Matrix::scalar(0.0));
        let (mut sce_v, mut contrast_v, mut adj_v, mut var_v) = (0.0, 0.0, 0.0, 0.0);
        for term in &objective.terms {
            // Per-term forward span: `loss.term.<kind>.{ns,calls,flops}`.
            let _span = gcmae_obs::kernel_span(term_metrics(term), 0);
            match term {
                LossTerm::Sce { gamma } => {
                    let target = Arc::new(features.clone());
                    let l = sess.tape.sce_loss(
                        z.expect("needs_z covers Sce"),
                        target,
                        masked.masked.clone(),
                        *gamma,
                    );
                    sce_v += sess.tape.value(l).scalar_value();
                    loss = sess.tape.add_scaled(loss, l, 1.0);
                }
                LossTerm::InfoNce { alpha, tau, negatives } => {
                    // Contrastive view: node drop through the shared encoder.
                    let dropped = drop_nodes(graph, features, cfg.p_drop, rng);
                    let ops2 = GraphOps::new(&dropped.graph);
                    let x2 = sess.tape.constant(dropped.features);
                    let h2 = self
                        .encoder
                        .forward(&mut sess, &self.store, x2, &ops2, true, rng);
                    let u_full = self.proj1.forward(&mut sess, &self.store, h1);
                    let u_full = Act::Elu.apply(&mut sess, u_full);
                    let v_full = self.proj2.forward(&mut sess, &self.store, h2);
                    let v_full = Act::Elu.apply(&mut sess, v_full);
                    let lc = match *negatives {
                        Negatives::Dense { sample } => {
                            let (u, v) = if sample > 0 && sample < n {
                                let anchors = sample_nodes(n, sample, rng);
                                (
                                    sess.tape.gather_rows(u_full, anchors.clone()),
                                    sess.tape.gather_rows(v_full, anchors),
                                )
                            } else {
                                (u_full, v_full)
                            };
                            sess.tape.info_nce(u, v, *tau)
                        }
                        Negatives::Sampled { k, dist } => {
                            let k = k.max(1);
                            let table = negative_table(graph, k, dist.into(), rng);
                            sess.tape.info_nce_sampled(u_full, v_full, *tau, k, &table)
                        }
                    };
                    contrast_v += sess.tape.value(lc).scalar_value();
                    loss = sess.tape.add_scaled(loss, lc, *alpha);
                }
                LossTerm::AdjRecon { lambda, negatives } => {
                    let z = z.expect("needs_z covers AdjRecon");
                    match *negatives {
                        // Dense: reconstruct the induced subgraph on a
                        // sampled node set (§4.4).
                        Negatives::Dense { sample } => {
                            let sub = if sample > 0 && sample < n {
                                sample_nodes(n, sample, rng)
                            } else {
                                (0..n).collect()
                            };
                            if sub.len() >= 2 {
                                let sub_adj = graph.induced_subgraph(&sub).adjacency();
                                let z_sub = sess.tape.gather_rows(z, sub);
                                let (le, comps) =
                                    sess.tape.adj_recon(z_sub, sub_adj, Weights::default());
                                adj_v += comps.total();
                                loss = sess.tape.add_scaled(loss, le, *lambda);
                            }
                        }
                        // Sampled: every true edge is a positive, k sampled
                        // non-neighbors per anchor are the negatives.
                        Negatives::Sampled { k, dist } => {
                            let k = k.max(1);
                            let table = negative_table(graph, k, dist.into(), rng);
                            let (le, comps) = sess.tape.adj_recon_sampled(
                                z,
                                graph.adjacency(),
                                Weights::default(),
                                k,
                                &table,
                            );
                            adj_v += comps.total();
                            loss = sess.tape.add_scaled(loss, le, *lambda);
                        }
                    }
                }
                LossTerm::Variance { mu } => {
                    let lv = sess.tape.variance_hinge(h1, 1e-4);
                    var_v += sess.tape.value(lv).scalar_value();
                    loss = sess.tape.add_scaled(loss, lv, *mu);
                }
            }
        }

        let mut total = sess.tape.value(loss).scalar_value();
        if guard.poison_loss {
            total = f32::NAN;
        }
        let breakdown = LossBreakdown {
            total,
            sce: sce_v,
            contrast: contrast_v,
            adj: adj_v,
            variance: var_v,
        };
        if guard.check_finite {
            for (term, v) in [
                ("total", breakdown.total),
                ("sce", breakdown.sce),
                ("contrast", breakdown.contrast),
                ("adj", breakdown.adj),
                ("variance", breakdown.variance),
            ] {
                if !v.is_finite() {
                    return Err(StepFault::NonFiniteLoss { term });
                }
            }
        }
        let mut grads = sess.tape.backward(loss);
        if guard.poison_grad {
            if let Some(&(_, tid)) = sess.binds().first() {
                if let Some(g) = grads.get_mut(tid) {
                    g.as_mut_slice()[0] = f32::NAN;
                }
            }
        }
        if guard.check_finite {
            for &(pid, tid) in sess.binds() {
                if let Some(g) = grads.get(tid) {
                    if !g.all_finite() {
                        return Err(StepFault::NonFiniteGradient { param: pid.index() });
                    }
                }
            }
        }
        // The pre-clip norm comes for free from the clip pass; without
        // clipping it is a pure read over the gradients (nothing mutated),
        // so reporting it cannot perturb the update.
        let grad_norm = if guard.clip_norm > 0.0 {
            clip_global_norm(&sess, &mut grads, guard.clip_norm)
        } else {
            global_grad_norm(&sess, &grads)
        };
        adam.step(&mut self.store, &sess, &mut grads);
        Ok(StepReport {
            loss: breakdown,
            grad_norm,
        })
    }

    /// Deprecated RNG-taking eval path; eval-mode forwards draw no
    /// randomness, so use the RNG-free [`Gcmae::encode`] (bit-identical).
    #[deprecated(
        since = "0.5.0",
        note = "use Gcmae::encode — eval mode never draws randomness"
    )]
    pub fn embed(&self, graph: &Graph, features: &Matrix, rng: &mut StdRng) -> Matrix {
        let ops = GraphOps::new(graph);
        let mut sess = Session::new();
        let x = sess.tape.constant(features.clone());
        let h = self
            .encoder
            .forward(&mut sess, &self.store, x, &ops, false, rng);
        sess.tape.value(h).clone()
    }

    /// Deprecated RNG-taking eval path; use the RNG-free [`Gcmae::decode`]
    /// (bit-identical).
    #[deprecated(
        since = "0.5.0",
        note = "use Gcmae::decode — eval mode never draws randomness"
    )]
    pub fn reconstruct(&self, graph: &Graph, features: &Matrix, rng: &mut StdRng) -> Matrix {
        let ops = GraphOps::new(graph);
        let mut sess = Session::new();
        let x = sess.tape.constant(features.clone());
        let h = self
            .encoder
            .forward(&mut sess, &self.store, x, &ops, false, rng);
        let z = self
            .decoder
            .forward(&mut sess, &self.store, h, &ops, false, rng);
        sess.tape.value(z).clone()
    }

    /// Deprecated RNG-taking eval path; use the RNG-free
    /// [`Gcmae::encode_dataset`] (bit-identical).
    #[deprecated(
        since = "0.5.0",
        note = "use Gcmae::encode_dataset — eval mode never draws randomness"
    )]
    pub fn embed_dataset(&self, ds: &Dataset, rng: &mut StdRng) -> Matrix {
        let _ = rng;
        self.encode_dataset(ds)
    }

    /// Eval-mode reconstructed features `Z = f_D(A, f_E(A, X))` — used by
    /// the link-prediction scorer which works on `Z` per §4.2. Tape-free and
    /// RNG-free: eval mode applies no masking or dropout, so there is no
    /// randomness to draw.
    pub fn decode(&self, graph: &Graph, features: &Matrix) -> Matrix {
        let ops = GraphOps::new(graph);
        let h = self.encoder.encode(&self.store, features, &ops);
        self.decoder.encode(&self.store, &h, &ops)
    }

    /// Eval-mode node embeddings for a [`Dataset`] (RNG-free, tape-free).
    pub fn encode_dataset(&self, ds: &Dataset) -> Matrix {
        self.encode(&ds.graph, &ds.features)
    }

    /// Number of encoder layers (the invalidation radius for cached
    /// embeddings: a feature or edge change at node `v` can only influence
    /// embeddings within `encoder_layers` hops of `v`).
    pub fn encoder_layers(&self) -> usize {
        self.cfg.layers
    }

    /// Tape-free eval-mode embeddings, bit-identical to [`Gcmae::embed`].
    /// Preferred for serving: no autograd bookkeeping is allocated.
    pub fn encode(&self, graph: &Graph, features: &Matrix) -> Matrix {
        let ops = GraphOps::new(graph);
        self.encoder.encode(&self.store, features, &ops)
    }

    /// Eval-mode embeddings for `targets` only, bit-identical to the
    /// corresponding rows of [`Gcmae::encode`]. Takes pre-built [`GraphOps`]
    /// so a server can reuse cached message operators across queries.
    pub fn encode_rows(&self, ops: &GraphOps, features: &Matrix, targets: &[usize]) -> Matrix {
        self.encoder
            .encode_rows(&self.store, features, ops, targets)
    }

    /// Rebuilds a model from an inference (v1) or training (v2) checkpoint.
    /// Architecture comes from `cfg`/`in_dim`; parameter values come from
    /// `data` (optimizer state in v2 checkpoints is ignored).
    pub fn from_inference(
        cfg: &GcmaeConfig,
        in_dim: usize,
        data: &Bytes,
    ) -> Result<Self, CheckpointError> {
        let mut model = Gcmae::new(cfg, in_dim, &mut seeded_rng(0));
        load_inference(&mut model.store, data.clone())?;
        Ok(model)
    }
}

/// Deterministic per-seed RNG used across all trainers.
/// Static metric names for the per-term loss spans
/// (`loss.term.<kind>.{ns,calls,flops}`). Flops are attributed by the
/// kernel-level spans underneath; these spans time whole terms, including
/// view augmentation and sampling.
fn term_metrics(term: &LossTerm) -> &'static gcmae_obs::KernelMetrics {
    use gcmae_obs::KernelMetrics;
    static SCE: KernelMetrics = KernelMetrics {
        ns: "loss.term.sce.ns",
        calls: "loss.term.sce.calls",
        flops: "loss.term.sce.flops",
    };
    static INFONCE: KernelMetrics = KernelMetrics {
        ns: "loss.term.infonce.ns",
        calls: "loss.term.infonce.calls",
        flops: "loss.term.infonce.flops",
    };
    static ADJ_RECON: KernelMetrics = KernelMetrics {
        ns: "loss.term.adj_recon.ns",
        calls: "loss.term.adj_recon.calls",
        flops: "loss.term.adj_recon.flops",
    };
    static VARIANCE: KernelMetrics = KernelMetrics {
        ns: "loss.term.variance.ns",
        calls: "loss.term.variance.calls",
        flops: "loss.term.variance.flops",
    };
    match term {
        LossTerm::Sce { .. } => &SCE,
        LossTerm::InfoNce { .. } => &INFONCE,
        LossTerm::AdjRecon { .. } => &ADJ_RECON,
        LossTerm::Variance { .. } => &VARIANCE,
    }
}

pub fn seeded_rng(seed: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
}

/// Re-export for callers that only need a generic RNG bound.
pub fn gen_bool<R: Rng>(rng: &mut R, p: f32) -> bool {
    rng.gen::<f32>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncoderChoice;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    fn tiny() -> Dataset {
        generate(&CitationSpec::cora().scaled(0.02), 7)
    }

    fn step_off(model: &mut Gcmae, ds: &Dataset, adam: &mut Adam, rng: &mut StdRng) -> StepReport {
        model
            .step(&ds.graph, &ds.features, adam, rng, &StepGuard::off())
            .unwrap()
    }

    #[test]
    fn step_reduces_loss_and_reports_grad_norm() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 16,
            proj_dim: 8,
            ..GcmaeConfig::fast()
        };
        let mut rng = seeded_rng(1);
        let mut model = Gcmae::new(&cfg, ds.feature_dim(), &mut rng);
        let mut adam = Adam::new(cfg.lr * 10.0, cfg.weight_decay);
        let mut first = None;
        let mut last = StepReport::default();
        for _ in 0..15 {
            last = step_off(&mut model, &ds, &mut adam, &mut rng);
            first.get_or_insert(last.loss.total);
            assert!(last.loss.total.is_finite());
            assert!(last.grad_norm.is_finite() && last.grad_norm > 0.0);
        }
        assert!(
            last.loss.total < first.unwrap(),
            "loss did not decrease: {} -> {}",
            first.unwrap(),
            last.loss.total
        );
    }

    #[test]
    fn loss_breakdown_components_are_populated() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 16,
            proj_dim: 8,
            ..GcmaeConfig::fast()
        };
        let mut rng = seeded_rng(2);
        let mut model = Gcmae::new(&cfg, ds.feature_dim(), &mut rng);
        let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
        let b = step_off(&mut model, &ds, &mut adam, &mut rng).loss;
        assert!(b.sce > 0.0);
        assert!(b.contrast > 0.0);
        // the relative-distance term is a log ratio and may be negative, so
        // only require the component to be present and finite
        assert!(b.adj != 0.0 && b.adj.is_finite());
        assert!(b.variance >= 0.0);
    }

    /// The deprecated step shims must keep computing exactly what `step`
    /// computes (they share one body; this pins the delegation).
    #[test]
    #[allow(deprecated)]
    fn deprecated_step_shims_match_step_bitwise() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 16,
            proj_dim: 8,
            ..GcmaeConfig::fast()
        };
        let mut rng_a = seeded_rng(21);
        let mut rng_b = seeded_rng(21);
        let mut model_a = Gcmae::new(&cfg, ds.feature_dim(), &mut rng_a);
        let mut model_b = Gcmae::new(&cfg, ds.feature_dim(), &mut rng_b);
        let mut adam_a = Adam::new(cfg.lr, cfg.weight_decay);
        let mut adam_b = Adam::new(cfg.lr, cfg.weight_decay);
        for _ in 0..3 {
            let a = model_a.train_step(&ds.graph, &ds.features, &mut adam_a, &mut rng_a);
            let b = step_off(&mut model_b, &ds, &mut adam_b, &mut rng_b).loss;
            assert_eq!(a.total.to_bits(), b.total.to_bits());
        }
        let ea = model_a.encode(&ds.graph, &ds.features);
        let eb = model_b.encode(&ds.graph, &ds.features);
        assert_eq!(ea.as_slice(), eb.as_slice());
    }

    #[test]
    fn ablation_flags_zero_their_components() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 16,
            proj_dim: 8,
            ..GcmaeConfig::fast()
                .without_contrastive()
                .without_struct_recon()
                .without_discrimination()
        };
        let mut rng = seeded_rng(3);
        let mut model = Gcmae::new(&cfg, ds.feature_dim(), &mut rng);
        let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
        let b = step_off(&mut model, &ds, &mut adam, &mut rng).loss;
        assert_eq!(b.contrast, 0.0);
        assert_eq!(b.adj, 0.0);
        assert_eq!(b.variance, 0.0);
        assert!(b.sce > 0.0);
    }

    /// RNG-free inference must be bit-identical to the deprecated
    /// RNG-taking tape paths, for every encoder kind and for the decoder.
    #[test]
    #[allow(deprecated)]
    fn encode_matches_embed_bitwise() {
        let ds = tiny();
        for encoder in [
            EncoderChoice::Gcn,
            EncoderChoice::Sage,
            EncoderChoice::Gat { heads: 2 },
            EncoderChoice::Gin,
        ] {
            let cfg = GcmaeConfig {
                encoder,
                hidden_dim: 16,
                proj_dim: 8,
                ..GcmaeConfig::fast()
            };
            let mut rng = seeded_rng(11);
            let mut model = Gcmae::new(&cfg, ds.feature_dim(), &mut rng);
            let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
            for _ in 0..3 {
                model
                    .step(
                        &ds.graph,
                        &ds.features,
                        &mut adam,
                        &mut rng,
                        &StepGuard::off(),
                    )
                    .unwrap();
            }
            let tape = model.embed(&ds.graph, &ds.features, &mut rng);
            let fast = model.encode(&ds.graph, &ds.features);
            assert_eq!(tape.as_slice(), fast.as_slice(), "{encoder:?}");
            let tape_z = model.reconstruct(&ds.graph, &ds.features, &mut rng);
            let fast_z = model.decode(&ds.graph, &ds.features);
            assert_eq!(tape_z.as_slice(), fast_z.as_slice(), "{encoder:?} decoder");
            let ops = gcmae_nn::GraphOps::new(&ds.graph);
            let targets = [3usize, 0, 3, ds.num_nodes() - 1];
            let rows = model.encode_rows(&ops, &ds.features, &targets);
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(rows.row(i), tape.row(t), "{encoder:?} target {t}");
            }
        }
    }

    #[test]
    fn from_inference_restores_encoder_bitwise() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 16,
            proj_dim: 8,
            ..GcmaeConfig::fast()
        };
        let mut rng = seeded_rng(12);
        let mut model = Gcmae::new(&cfg, ds.feature_dim(), &mut rng);
        let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
        for _ in 0..3 {
            step_off(&mut model, &ds, &mut adam, &mut rng);
        }
        let ckpt = gcmae_nn::serialize::save_params(&model.store);
        let restored = Gcmae::from_inference(&cfg, ds.feature_dim(), &ckpt).unwrap();
        let a = model.encode(&ds.graph, &ds.features);
        let b = restored.encode(&ds.graph, &ds.features);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(restored.encoder_layers(), cfg.layers);
    }

    #[test]
    #[allow(deprecated)]
    fn encode_dataset_is_deterministic_and_matches_embed_dataset() {
        let ds = tiny();
        let cfg = GcmaeConfig {
            hidden_dim: 16,
            proj_dim: 8,
            ..GcmaeConfig::fast()
        };
        let mut rng = seeded_rng(4);
        let model = Gcmae::new(&cfg, ds.feature_dim(), &mut rng);
        let e1 = model.encode_dataset(&ds);
        let e2 = model.encode_dataset(&ds);
        assert_eq!(e1.max_abs_diff(&e2), 0.0);
        assert_eq!(e1.shape(), (ds.num_nodes(), 16));
        let legacy = model.embed_dataset(&ds, &mut rng);
        assert_eq!(legacy.as_slice(), e1.as_slice());
    }
}
