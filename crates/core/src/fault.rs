//! Fault taxonomy and test-only fault injection for the checked trainer.
//!
//! A guarded [`crate::session::TrainSession`] guards every optimization
//! step: loss
//! terms and gradients are scanned for non-finite values (via the
//! `gcmae-tensor` finite-scan kernel), kernel panics are caught at the epoch
//! boundary, and any fault triggers a rollback to the last good checkpoint
//! with learning-rate backoff. This module defines what a fault *is*
//! ([`StepFault`]), what the trainer reports ([`TrainError`],
//! [`RollbackEvent`]), how a step is guarded ([`StepGuard`]), and a
//! deterministic injection hook ([`FaultPlan`]) so the recovery machinery is
//! testable without waiting for real divergence.

use gcmae_nn::CheckpointError;

/// A single training step failed.
#[derive(Clone, Debug, PartialEq)]
pub enum StepFault {
    /// A loss term came back `NaN`/`±∞`.
    NonFiniteLoss {
        /// Which term tripped the scan (`"total"`, `"sce"`, …).
        term: &'static str,
    },
    /// A parameter gradient contains a non-finite entry.
    NonFiniteGradient {
        /// Creation-order index of the offending parameter.
        param: usize,
    },
    /// A kernel panicked mid-step (caught at the epoch boundary).
    KernelPanic {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for StepFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFiniteLoss { term } => write!(f, "non-finite loss term `{term}`"),
            Self::NonFiniteGradient { param } => {
                write!(f, "non-finite gradient for parameter {param}")
            }
            Self::KernelPanic { message } => write!(f, "kernel panic: {message}"),
        }
    }
}

/// Why a checked training run gave up.
#[derive(Debug)]
pub enum TrainError {
    /// Faults kept recurring after exhausting the retry budget.
    RetriesExhausted {
        /// Epoch at which the final fault was detected.
        epoch: usize,
        /// Retries consumed (== the configured budget).
        retries: u32,
        /// The fault that ended the run.
        last: StepFault,
    },
    /// The rollback target could not be restored.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RetriesExhausted { epoch, retries, last } => write!(
                f,
                "training diverged at epoch {epoch} after {retries} recovery retries: {last}"
            ),
            Self::Checkpoint(e) => write!(f, "rollback checkpoint unusable: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

/// One recovery action taken by the checked trainer, recorded in
/// [`crate::trainer::TrainOutput::rollbacks`].
#[derive(Clone, Debug)]
pub struct RollbackEvent {
    /// Epoch at which the fault was detected.
    pub at_epoch: usize,
    /// Epoch of the checkpoint that was restored.
    pub restored_epoch: usize,
    /// Learning rate after the backoff multiplier was applied.
    pub lr_after: f32,
    /// The fault that forced the rollback.
    pub fault: StepFault,
}

/// Per-step guard configuration, threaded from the trainer into
/// [`crate::model::Gcmae::train_step_guarded`].
#[derive(Clone, Debug)]
pub struct StepGuard {
    /// Scan loss terms and gradients for non-finite values.
    pub check_finite: bool,
    /// Global gradient-norm clip threshold (`0` = no clipping).
    pub clip_norm: f32,
    /// Test-only: replace the total loss with `NaN` this step.
    pub poison_loss: bool,
    /// Test-only: poison one gradient entry with `NaN` this step.
    pub poison_grad: bool,
}

impl StepGuard {
    /// All guards disabled — `train_step_guarded` then computes exactly what
    /// the unchecked `train_step` computes, with zero scan overhead.
    pub fn off() -> Self {
        Self { check_finite: false, clip_norm: 0.0, poison_loss: false, poison_grad: false }
    }
}

/// Deterministic fault-injection schedule (test-only; every fault fires at
/// most once). Threaded through `train_checked_injected` so recovery tests
/// don't depend on real divergence showing up.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Poison the loss with `NaN` at this epoch.
    pub nan_loss_at: Option<usize>,
    /// Poison a gradient with `NaN` at this epoch.
    pub nan_grad_at: Option<usize>,
    /// Panic inside a parallel job at this epoch.
    pub panic_at: Option<usize>,
    /// Truncate the trainer's in-memory rollback checkpoint, so the first
    /// rollback fails with [`TrainError::Checkpoint`].
    pub truncate_checkpoint: bool,
}

/// Deterministic fault-injection schedule for the *serving* read path —
/// the [`FaultPlan`] idea extended from training to inference. A serving
/// engine carrying a plan fails (or panics inside) scheduled read queries so
/// chaos harnesses and tests can prove that engine faults are contained to
/// the offending request: the scheduler must answer with a typed error and
/// keep serving, never crash or wedge the process.
///
/// Counting is engine-local and 1-based: the k-th read query issued against
/// the engine after the plan is installed trips the fault.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeFaultPlan {
    /// Fail every k-th read query with a transient injected error (`k >= 1`).
    pub fail_read_every: Option<u64>,
    /// Panic inside the k-th read query. Fires at most once; the serving
    /// scheduler must catch it, convert it to an error response, and stay up.
    pub panic_read_at: Option<u64>,
}

impl ServeFaultPlan {
    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.fail_read_every.is_none() && self.panic_read_at.is_none()
    }

    /// Evaluates the plan for read query number `count` (1-based). Returns
    /// `true` when that query must fail with an injected error; panics when
    /// the one-shot panic is scheduled for it.
    pub fn should_fail_read(&self, count: u64) -> bool {
        if self.panic_read_at == Some(count) {
            panic!("injected serve-read fault at query {count}");
        }
        matches!(self.fail_read_every, Some(k) if k > 0 && count % k == 0)
    }
}

/// Panics inside a parallel job. The row count × per-row cost clears the
/// pool's dispatch threshold, so with more than one thread configured the
/// panic crosses a worker boundary and exercises payload resurfacing; with
/// one thread it unwinds the calling thread directly. Both paths must reach
/// the trainer's `catch_unwind` as an error, never a hang.
pub(crate) fn detonate_parallel_panic() {
    gcmae_tensor::parallel::par_rows(64, 4096, |i| {
        if i == 0 {
            panic!("injected parallel-job fault");
        }
    });
}
