// Indexed loops over parallel arrays are idiomatic in this numeric code.
#![allow(clippy::needless_range_loop)]
// The fault-tolerant runtime promises structured errors, not panics: library
// code must route failures through `TrainError`/`GraphError`/`CheckpointError`
// instead of unwrapping. Tests may unwrap freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # gcmae-core
//!
//! GCMAE — *Graph Contrastive Masked Autoencoder* (ICDE 2024): a graph
//! self-supervised learner that unifies a masked-autoencoder branch and a
//! contrastive branch behind a shared GNN encoder, trained with
//! `J = L_SCE + α·L_C + λ·L_E + μ·L_Var` (paper Eq. 8).
//!
//! ## Example
//!
//! ```
//! use gcmae_core::{GcmaeConfig, TrainSession};
//! use gcmae_graph::generators::citation::{generate, CitationSpec};
//!
//! let ds = generate(&CitationSpec::cora().scaled(0.02), 0);
//! let cfg = GcmaeConfig { epochs: 3, hidden_dim: 16, proj_dim: 8, ..GcmaeConfig::fast() };
//! let out = TrainSession::new(&cfg).seed(0).run(&ds).expect("unguarded runs cannot fail");
//! assert_eq!(out.embeddings.rows(), ds.num_nodes());
//! ```

pub mod config;
pub mod encoder_variants;
pub mod fault;
pub mod graph_level;
pub mod model;
pub mod session;
pub mod trainer;

pub use config::{
    EncoderChoice, FaultTolerance, GcmaeConfig, LossTerm, Negatives, Objective, SamplerDist,
};
pub use encoder_variants::{train_variant, EncoderVariant};
pub use fault::{FaultPlan, RollbackEvent, ServeFaultPlan, StepFault, StepGuard, TrainError};
pub use graph_level::train_graph_level;
pub use model::{Gcmae, LossBreakdown, StepReport};
pub use session::TrainSession;
pub use trainer::{EpochView, TrainOutput};
