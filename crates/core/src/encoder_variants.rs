//! Encoder-sharing ablation (paper Table 8): shared encoder vs. separate
//! MAE / contrastive encoders vs. fused embeddings.

use gcmae_graph::augment::{drop_nodes, mask_node_features};
use gcmae_graph::Dataset;
use gcmae_nn::{Act, Adam, Encoder, EncoderConfig, GraphOps, Mlp, ParamStore, Session};
use gcmae_tensor::Matrix;

use crate::config::{GcmaeConfig, LossTerm, Negatives};
use crate::model::seeded_rng;
use crate::session::TrainSession;

/// Unguarded full training for one variant config; the unguarded regime
/// cannot fail.
fn embeddings_for(ds: &Dataset, cfg: &GcmaeConfig, seed: u64) -> Matrix {
    match TrainSession::new(cfg).seed(seed).run(ds) {
        Ok(out) => out.embeddings,
        Err(e) => unreachable!("unguarded session cannot fail: {e}"),
    }
}

/// The four encoder designs compared in Table 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncoderVariant {
    /// Only the MAE branch with its own encoder (degenerates to GraphMAE).
    MaeOnly,
    /// Only the contrastive branch with its own encoder.
    ConOnly,
    /// Two independent encoders; embeddings averaged at evaluation.
    Fusion,
    /// The paper's design: one encoder shared by both branches.
    Shared,
}

impl EncoderVariant {
    /// All four designs in the paper's row order.
    pub const ALL: [EncoderVariant; 4] = [Self::MaeOnly, Self::ConOnly, Self::Fusion, Self::Shared];

    /// Row label as printed in Table 8.
    pub fn label(self) -> &'static str {
        match self {
            Self::MaeOnly => "MAE Encoder",
            Self::ConOnly => "Con. Encoder",
            Self::Fusion => "Fusion Encoder",
            Self::Shared => "Shared Encoder",
        }
    }
}

/// Trains the requested variant and returns eval-mode node embeddings.
pub fn train_variant(
    ds: &Dataset,
    cfg: &GcmaeConfig,
    variant: EncoderVariant,
    seed: u64,
) -> Matrix {
    match variant {
        EncoderVariant::Shared => embeddings_for(ds, cfg, seed),
        EncoderVariant::MaeOnly => {
            // GCMAE minus everything contrastive = GraphMAE-style training.
            let cfg = cfg
                .clone()
                .without_contrastive()
                .without_struct_recon()
                .without_discrimination();
            embeddings_for(ds, &cfg, seed)
        }
        EncoderVariant::ConOnly => train_contrastive_only(ds, cfg, seed),
        EncoderVariant::Fusion => {
            let cfg_mae = cfg
                .clone()
                .without_contrastive()
                .without_struct_recon()
                .without_discrimination();
            let mae = embeddings_for(ds, &cfg_mae, seed);
            let con = train_contrastive_only(ds, cfg, seed.wrapping_add(101));
            let mut fused = mae;
            fused.add_assign(&con);
            fused.scale_inplace(0.5);
            fused
        }
    }
}

/// A standalone contrastive encoder: two views (feature masking + node
/// dropping), InfoNCE only — the "Con. Encoder" row.
fn train_contrastive_only(ds: &Dataset, cfg: &GcmaeConfig, seed: u64) -> Matrix {
    let mut rng = seeded_rng(seed);
    let mut store = ParamStore::new();
    let enc_cfg = EncoderConfig {
        kind: cfg.encoder.into(),
        in_dim: ds.feature_dim(),
        hidden_dim: cfg.hidden_dim,
        out_dim: cfg.hidden_dim,
        layers: cfg.layers,
        act: cfg.act(),
        dropout: cfg.dropout,
    };
    let encoder = Encoder::new(&mut store, &enc_cfg, &mut rng);
    let proj1 = Mlp::new(
        &mut store,
        &[cfg.hidden_dim, cfg.hidden_dim, cfg.proj_dim],
        Act::Elu,
        &mut rng,
    );
    let proj2 = Mlp::new(
        &mut store,
        &[cfg.hidden_dim, cfg.hidden_dim, cfg.proj_dim],
        Act::Elu,
        &mut rng,
    );
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let n = ds.num_nodes();
    // Contrastive settings come from the objective's InfoNCE term (falling
    // back to a dense full-anchor loss if the spec has none).
    let (tau, negatives) = cfg
        .objective()
        .terms
        .iter()
        .find_map(|t| match t {
            LossTerm::InfoNce { tau, negatives, .. } => Some((*tau, *negatives)),
            _ => None,
        })
        .unwrap_or((cfg.tau, Negatives::Dense { sample: 0 }));
    for _ in 0..cfg.epochs {
        let mut sess = Session::new();
        let masked = mask_node_features(&ds.features, cfg.p_mask, &mut rng);
        let ops1 = GraphOps::new(&ds.graph);
        let x1 = sess.tape.constant(masked.features);
        let h1 = encoder.forward(&mut sess, &store, x1, &ops1, true, &mut rng);
        let dropped = drop_nodes(&ds.graph, &ds.features, cfg.p_drop, &mut rng);
        let ops2 = GraphOps::new(&dropped.graph);
        let x2 = sess.tape.constant(dropped.features);
        let h2 = encoder.forward(&mut sess, &store, x2, &ops2, true, &mut rng);
        let u = proj1.forward(&mut sess, &store, h1);
        let u = Act::Elu.apply(&mut sess, u);
        let v = proj2.forward(&mut sess, &store, h2);
        let v = Act::Elu.apply(&mut sess, v);
        let loss = match negatives {
            Negatives::Dense { sample } => {
                let (u, v) = if sample > 0 && sample < n {
                    let anchors = gcmae_graph::sampling::sample_nodes(n, sample, &mut rng);
                    (
                        sess.tape.gather_rows(u, anchors.clone()),
                        sess.tape.gather_rows(v, anchors),
                    )
                } else {
                    (u, v)
                };
                sess.tape.info_nce(u, v, tau)
            }
            Negatives::Sampled { k, dist } => {
                let k = k.max(1);
                let table =
                    gcmae_graph::sampling::negative_table(&ds.graph, k, dist.into(), &mut rng);
                sess.tape.info_nce_sampled(u, v, tau, k, &table)
            }
        };
        let mut grads = sess.tape.backward(loss);
        adam.step(&mut store, &sess, &mut grads);
    }
    // eval-mode embeddings
    let ops = GraphOps::new(&ds.graph);
    let mut sess = Session::new();
    let x = sess.tape.constant(ds.features.clone());
    let h = encoder.forward(&mut sess, &store, x, &ops, false, &mut rng);
    sess.tape.value(h).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::citation::{generate, CitationSpec};

    #[test]
    fn all_variants_produce_embeddings() {
        let ds = generate(&CitationSpec::cora().scaled(0.02), 3);
        let cfg = GcmaeConfig {
            hidden_dim: 8,
            proj_dim: 4,
            epochs: 3,
            ..GcmaeConfig::fast()
        };
        for v in EncoderVariant::ALL {
            let e = train_variant(&ds, &cfg, v, 1);
            assert_eq!(e.shape(), (ds.num_nodes(), 8), "{v:?}");
            assert!(e.all_finite(), "{v:?}");
        }
    }

    #[test]
    fn labels_match_table8_rows() {
        let labels: Vec<&str> = EncoderVariant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(
            labels,
            [
                "MAE Encoder",
                "Con. Encoder",
                "Fusion Encoder",
                "Shared Encoder"
            ]
        );
    }
}
