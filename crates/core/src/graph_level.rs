//! Graph-level GCMAE: pre-train on block-diagonal batches of small graphs
//! and read out mean-pooled graph embeddings (Table 7 protocol).

use gcmae_graph::GraphCollection;
use gcmae_nn::Adam;
use gcmae_tensor::Matrix;
use rand::Rng;

use crate::config::GcmaeConfig;
use crate::fault::StepGuard;
use crate::model::{seeded_rng, Gcmae};

/// Pre-trains GCMAE on a collection and returns one mean-pooled embedding
/// per graph (`G × hidden_dim`).
pub fn train_graph_level(
    collection: &GraphCollection,
    cfg: &GcmaeConfig,
    graphs_per_batch: usize,
    seed: u64,
) -> Matrix {
    assert!(graphs_per_batch >= 1);
    let mut rng = seeded_rng(seed);
    let mut model = Gcmae::new(cfg, collection.feature_dim(), &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);
    let g = collection.len();
    let mut order: Vec<usize> = (0..g).collect();
    for _ in 0..cfg.epochs {
        for i in (1..g).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for chunk in order.chunks(graphs_per_batch) {
            let batch = collection.batch(chunk);
            let step = model.step(
                &batch.graph,
                &batch.features,
                &mut adam,
                &mut rng,
                &StepGuard::off(),
            );
            if let Err(f) = step {
                unreachable!("guards disabled but step faulted: {f}");
            }
        }
    }
    readout(&model, collection, graphs_per_batch)
}

/// Mean-pooled eval-mode embeddings for every graph in the collection
/// (RNG-free: eval mode draws no randomness).
pub fn readout(model: &Gcmae, collection: &GraphCollection, graphs_per_batch: usize) -> Matrix {
    let g = collection.len();
    let d = model.config().hidden_dim;
    let mut out = Matrix::zeros(g, d);
    let all: Vec<usize> = (0..g).collect();
    for chunk in all.chunks(graphs_per_batch.max(8)) {
        let batch = collection.batch(chunk);
        let h = model.encode(&batch.graph, &batch.features);
        // mean pool per segment
        let mut counts = vec![0.0f32; chunk.len()];
        let mut pooled = Matrix::zeros(chunk.len(), d);
        for (r, &s) in batch.segments.iter().enumerate() {
            counts[s as usize] += 1.0;
            for (o, &v) in pooled.row_mut(s as usize).iter_mut().zip(h.row(r)) {
                *o += v;
            }
        }
        for (s, &gi) in chunk.iter().enumerate() {
            let inv = 1.0 / counts[s].max(1.0);
            for (o, &v) in out.row_mut(gi).iter_mut().zip(pooled.row(s)) {
                *o = v * inv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::generators::collection::{generate, CollectionSpec};

    #[test]
    fn graph_level_training_produces_one_row_per_graph() {
        let spec = CollectionSpec::mutag().scaled(0.15);
        let c = generate(&spec, 1);
        let cfg = GcmaeConfig {
            hidden_dim: 12,
            proj_dim: 8,
            epochs: 2,
            ..GcmaeConfig::fast()
        }
        .with_objective(crate::config::Objective::paper().with_dense_caps(48, 48));
        let emb = train_graph_level(&c, &cfg, 8, 1);
        assert_eq!(emb.shape(), (c.len(), 12));
        assert!(emb.all_finite());
        // different graphs should get different embeddings
        assert!(emb.row(0) != emb.row(1));
    }
}
