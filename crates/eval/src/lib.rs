// Indexed loops over parallel arrays are idiomatic in this numeric code.
#![allow(clippy::needless_range_loop)]

//! # gcmae-eval
//!
//! Downstream evaluation of frozen self-supervised embeddings: a
//! logistic-regression linear probe, a linear one-vs-rest SVM with k-fold
//! cross-validation (the LIBSVM substitute), k-means++ clustering, link
//! scorers, PCA, and the metrics the paper reports (ACC, macro-F1, NMI,
//! ARI, AUC, AP).

pub mod kmeans;
pub mod link;
pub mod metrics;
pub mod pca;
pub mod probe;
pub mod svm;
pub mod tsne;

pub use kmeans::{kmeans, KmeansResult};
pub use link::{dot_product_eval, finetuned_eval};
pub use pca::pca;
pub use probe::{linear_probe, ProbeConfig, ProbeResult};
pub use tsne::{tsne, TsneConfig};
pub use svm::{cross_validate, LinearSvm, SvmConfig};
