//! K-means++ clustering, applied to frozen node embeddings for the node
//! clustering task (§5.1: "we apply K-means on the node embeddings").

use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KmeansResult {
    /// assignments.
    pub assignments: Vec<usize>,
    /// centroids.
    pub centroids: Matrix,
    /// inertia.
    pub inertia: f64,
}

/// Runs k-means++ with Lloyd iterations until convergence or `max_iters`.
pub fn kmeans(data: &Matrix, k: usize, max_iters: usize, seed: u64) -> KmeansResult {
    let n = data.rows();
    let d = data.cols();
    assert!(k >= 1 && k <= n, "k = {k} out of range for {n} points");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6b6d_6561_6e73);

    // k-means++ seeding
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut min_d2: Vec<f64> = (0..n).map(|i| dist2(data.row(i), centroids.row(0))).collect();
    for c in 1..k {
        let total: f64 = min_d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut t = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &w) in min_d2.iter().enumerate() {
                if t < w {
                    pick = i;
                    break;
                }
                t -= w;
            }
            pick
        };
        centroids.row_mut(c).copy_from_slice(data.row(next));
        for i in 0..n {
            let nd = dist2(data.row(i), centroids.row(c));
            if nd < min_d2[i] {
                min_d2[i] = nd;
            }
        }
    }

    // Lloyd
    let mut assignments = vec![0usize; n];
    let mut inertia = f64::MAX;
    for _ in 0..max_iters {
        let mut changed = false;
        let mut new_inertia = 0.0f64;
        for i in 0..n {
            let (mut best, mut best_d) = (0usize, f64::MAX);
            for c in 0..k {
                let dd = dist2(data.row(i), centroids.row(c));
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
            new_inertia += best_d;
        }
        // recompute centroids; empty clusters get re-seeded from the point
        // farthest from its centroid
        let mut counts = vec![0usize; k];
        let mut sums = Matrix::zeros(k, d);
        for i in 0..n {
            let c = assignments[i];
            counts[c] += 1;
            for (s, &v) in sums.row_mut(c).iter_mut().zip(data.row(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                let far = (0..n)
                    .max_by(|&a, &b| {
                        dist2(data.row(a), centroids.row(assignments[a]))
                            .partial_cmp(&dist2(data.row(b), centroids.row(assignments[b])))
                            .unwrap()
                    })
                    .unwrap();
                centroids.row_mut(c).copy_from_slice(data.row(far));
            } else {
                let inv = 1.0 / counts[c] as f32;
                for (o, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *o = s * inv;
                }
            }
        }
        inertia = new_inertia;
        if !changed {
            break;
        }
    }
    KmeansResult { assignments, centroids, inertia }
}

#[inline]
fn dist2(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::clustering::nmi;

    fn blobs(per: usize, centers: &[(f32, f32)], spread: f32, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = per * centers.len();
        let mut data = Matrix::zeros(n, 2);
        let mut labels = vec![0usize; n];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..per {
                let r = c * per + i;
                data[(r, 0)] = cx + rng.gen_range(-spread..spread);
                data[(r, 1)] = cy + rng.gen_range(-spread..spread);
                labels[r] = c;
            }
        }
        (data, labels)
    }

    #[test]
    fn separable_blobs_recovered() {
        let (data, truth) = blobs(50, &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 0.5, 1);
        let res = kmeans(&data, 3, 50, 1);
        assert!(nmi(&res.assignments, &truth) > 0.99);
    }

    #[test]
    fn deterministic_per_seed() {
        let (data, _) = blobs(30, &[(0.0, 0.0), (5.0, 5.0)], 1.0, 2);
        let a = kmeans(&data, 2, 50, 7);
        let b = kmeans(&data, 2, 50, 7);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (data, _) = blobs(40, &[(0.0, 0.0), (8.0, 0.0), (0.0, 8.0), (8.0, 8.0)], 1.0, 3);
        let i2 = kmeans(&data, 2, 50, 1).inertia;
        let i4 = kmeans(&data, 4, 50, 1).inertia;
        assert!(i4 < i2);
    }

    #[test]
    fn k_equals_one_assigns_everything_together() {
        let (data, _) = blobs(10, &[(0.0, 0.0), (5.0, 5.0)], 0.5, 4);
        let res = kmeans(&data, 1, 10, 1);
        assert!(res.assignments.iter().all(|&a| a == 0));
    }
}
