//! Linear one-vs-rest SVM with hinge loss, trained by SGD — the LIBSVM
//! replacement used for graph classification (paper §5.1: SVM + 5-fold
//! cross-validation on frozen embeddings).

use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::classification::accuracy;

/// SVM hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct SvmConfig {
    /// epochs.
    pub epochs: usize,
    /// lr.
    pub lr: f32,
    /// L2 regularization strength.
    pub reg: f32,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { epochs: 60, lr: 0.05, reg: 1e-4 }
    }
}

/// A trained linear one-vs-rest SVM.
pub struct LinearSvm {
    /// `num_classes × (d + 1)` weights (bias in the last column).
    w: Matrix,
}

impl LinearSvm {
    /// Trains on the listed rows of `x`.
    pub fn fit(
        x: &Matrix,
        y: &[usize],
        rows: &[usize],
        num_classes: usize,
        cfg: &SvmConfig,
        seed: u64,
    ) -> Self {
        let d = x.cols();
        let mut w = Matrix::zeros(num_classes, d + 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51u64);
        let mut order = rows.to_vec();
        for epoch in 0..cfg.epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let lr = cfg.lr / (1.0 + 0.1 * epoch as f32);
            for &r in &order {
                let xi = x.row(r);
                for c in 0..num_classes {
                    let target = if y[r] == c { 1.0f32 } else { -1.0 };
                    let wc = w.row(c);
                    let margin =
                        target * (dot(&wc[..d], xi) + wc[d]);
                    let wc = w.row_mut(c);
                    if margin < 1.0 {
                        for (wv, &xv) in wc[..d].iter_mut().zip(xi) {
                            *wv += lr * (target * xv - cfg.reg * *wv);
                        }
                        wc[d] += lr * target;
                    } else {
                        for wv in wc[..d].iter_mut() {
                            *wv -= lr * cfg.reg * *wv;
                        }
                    }
                }
            }
        }
        Self { w }
    }

    /// Predicted class for each listed row.
    pub fn predict(&self, x: &Matrix, rows: &[usize]) -> Vec<usize> {
        let d = x.cols();
        rows.iter()
            .map(|&r| {
                let xi = x.row(r);
                (0..self.w.rows())
                    .map(|c| {
                        let wc = self.w.row(c);
                        dot(&wc[..d], xi) + wc[d]
                    })
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// 5-fold (or `folds`-fold) cross-validated SVM accuracy: mean and standard
/// deviation across folds — the paper's graph-classification protocol.
pub fn cross_validate(
    x: &Matrix,
    y: &[usize],
    num_classes: usize,
    folds: usize,
    cfg: &SvmConfig,
    seed: u64,
) -> (f64, f64) {
    assert!(folds >= 2, "need at least two folds");
    let n = x.rows();
    assert_eq!(y.len(), n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xcf);
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut accs = vec![];
    for f in 0..folds {
        let (lo, hi) = (f * n / folds, (f + 1) * n / folds);
        let test: Vec<usize> = order[lo..hi].to_vec();
        let train: Vec<usize> = order[..lo].iter().chain(&order[hi..]).copied().collect();
        if test.is_empty() || train.is_empty() {
            continue;
        }
        let svm = LinearSvm::fit(x, y, &train, num_classes, cfg, seed + f as u64);
        let pred = svm.predict(x, &test);
        let truth: Vec<usize> = test.iter().map(|&r| y[r]).collect();
        accs.push(accuracy(&pred, &truth));
    }
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    let var = accs.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / accs.len() as f64;
    (mean, var.sqrt())
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n: usize, classes: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, classes);
        let mut y = vec![0usize; n];
        for i in 0..n {
            let c = i % classes;
            y[i] = c;
            for j in 0..classes {
                x[(i, j)] = if j == c { 2.0 } else { 0.0 } + rng.gen_range(-0.4..0.4);
            }
        }
        (x, y)
    }

    #[test]
    fn fits_separable_data() {
        let (x, y) = separable(90, 3, 1);
        let rows: Vec<usize> = (0..90).collect();
        let svm = LinearSvm::fit(&x, &y, &rows, 3, &SvmConfig::default(), 1);
        let pred = svm.predict(&x, &rows);
        assert!(accuracy(&pred, &y) > 0.95);
    }

    #[test]
    fn cross_validation_on_separable_data() {
        let (x, y) = separable(100, 2, 2);
        let (mean, std) = cross_validate(&x, &y, 2, 5, &SvmConfig::default(), 2);
        assert!(mean > 0.9, "cv accuracy {mean}");
        assert!(std < 0.2);
    }

    #[test]
    fn chance_level_on_random_labels() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Matrix::uniform(120, 4, -1.0, 1.0, &mut rng);
        let y: Vec<usize> = (0..120).map(|_| rng.gen_range(0..3)).collect();
        let (mean, _) = cross_validate(&x, &y, 3, 5, &SvmConfig::default(), 3);
        assert!(mean < 0.6, "random labels should be near 1/3: {mean}");
    }
}
