//! Exact t-SNE (van der Maaten & Hinton, 2008) for 2-D embedding
//! visualization — used by the Figure 1 reproduction. The O(n²) exact
//! formulation is deliberate: the paper visualizes ~2.7k nodes, well within
//! range, and exactness keeps the implementation testable.

use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// t-SNE hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f32,
    /// Gradient-descent iterations.
    pub iters: usize,
    /// Learning rate.
    pub lr: f32,
    /// Early-exaggeration factor applied for the first quarter of training.
    pub exaggeration: f32,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self { perplexity: 30.0, iters: 300, lr: 100.0, exaggeration: 4.0 }
    }
}

/// Embeds `data` (`n × d`) into 2-D.
///
/// # Panics
/// Panics if `n < 4`.
pub fn tsne(data: &Matrix, cfg: &TsneConfig, seed: u64) -> Matrix {
    let n = data.rows();
    assert!(n >= 4, "t-SNE needs at least 4 points");
    let perplexity = cfg.perplexity.min((n as f32 - 1.0) / 3.0).max(2.0);

    // pairwise squared distances in the input space
    let mut d2 = vec![0.0f32; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let dist: f32 = data
                .row(i)
                .iter()
                .zip(data.row(j))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }

    // per-point bandwidths via binary search on perplexity
    let target_entropy = perplexity.ln();
    let mut p = vec![0.0f32; n * n];
    for i in 0..n {
        let row = &d2[i * n..(i + 1) * n];
        let (mut lo, mut hi) = (1e-10f32, 1e10f32);
        let mut beta = 1.0f32;
        for _ in 0..50 {
            // conditional distribution with precision beta
            let mut sum = 0.0f64;
            let mut sum_dp = 0.0f64;
            for (j, &d) in row.iter().enumerate() {
                if j == i {
                    continue;
                }
                let e = (-d * beta).exp() as f64;
                sum += e;
                sum_dp += d as f64 * e;
            }
            if sum <= 0.0 {
                break;
            }
            // H = ln(sum) + beta * E[d]
            let h = (sum.ln() + beta as f64 * sum_dp / sum) as f32;
            if (h - target_entropy).abs() < 1e-4 {
                break;
            }
            if h > target_entropy {
                lo = beta;
                beta = if hi >= 1e10 { beta * 2.0 } else { (beta + hi) / 2.0 };
            } else {
                hi = beta;
                beta = (beta + lo) / 2.0;
            }
        }
        let mut sum = 0.0f32;
        for (j, &d) in row.iter().enumerate() {
            if j != i {
                let e = (-d * beta).exp();
                p[i * n + j] = e;
                sum += e;
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // symmetrize: P = (P + Pᵀ) / 2n, floored
    for i in 0..n {
        for j in i + 1..n {
            let v = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f32)).max(1e-12);
            p[i * n + j] = v;
            p[j * n + i] = v;
        }
    }

    // gradient descent with momentum on the 2-D map
    let mut rng = StdRng::seed_from_u64(seed ^ 0x75e);
    let mut y: Vec<f32> = (0..2 * n).map(|_| rng.gen_range(-1e-2f32..1e-2)).collect();
    let mut vel = vec![0.0f32; 2 * n];
    let mut q = vec![0.0f32; n * n];
    let exag_until = cfg.iters / 4;
    for it in 0..cfg.iters {
        let exag = if it < exag_until { cfg.exaggeration } else { 1.0 };
        // Student-t affinities
        let mut qsum = 0.0f64;
        for i in 0..n {
            for j in i + 1..n {
                let dx = y[2 * i] - y[2 * j];
                let dy = y[2 * i + 1] - y[2 * j + 1];
                let w = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = w;
                q[j * n + i] = w;
                qsum += 2.0 * w as f64;
            }
        }
        let qsum = qsum.max(1e-12) as f32;
        // gradient: 4 Σ_j (p_ij·exag − q_ij/qsum)·w_ij·(y_i − y_j)
        let momentum = if it < exag_until { 0.5 } else { 0.8 };
        for i in 0..n {
            let (mut gx, mut gy) = (0.0f32, 0.0f32);
            for j in 0..n {
                if j == i {
                    continue;
                }
                let w = q[i * n + j];
                let coeff = (exag * p[i * n + j] - w / qsum) * w;
                gx += coeff * (y[2 * i] - y[2 * j]);
                gy += coeff * (y[2 * i + 1] - y[2 * j + 1]);
            }
            vel[2 * i] = momentum * vel[2 * i] - cfg.lr * 4.0 * gx;
            vel[2 * i + 1] = momentum * vel[2 * i + 1] - cfg.lr * 4.0 * gy;
        }
        for (yi, vi) in y.iter_mut().zip(&vel) {
            *yi += vi;
        }
        // re-center
        let (mx, my) = (
            y.iter().step_by(2).sum::<f32>() / n as f32,
            y.iter().skip(1).step_by(2).sum::<f32>() / n as f32,
        );
        for i in 0..n {
            y[2 * i] -= mx;
            y[2 * i + 1] -= my;
        }
    }
    Matrix::from_vec(n, 2, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per: usize, centers: &[(f32, f32, f32)], seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = per * centers.len();
        let mut x = Matrix::zeros(n, 3);
        let mut labels = vec![0usize; n];
        for (c, &(a, b, d)) in centers.iter().enumerate() {
            for i in 0..per {
                let r = c * per + i;
                x[(r, 0)] = a + rng.gen_range(-0.3..0.3);
                x[(r, 1)] = b + rng.gen_range(-0.3..0.3);
                x[(r, 2)] = d + rng.gen_range(-0.3..0.3);
                labels[r] = c;
            }
        }
        (x, labels)
    }

    #[test]
    fn separable_clusters_stay_separated() {
        let (x, labels) = blobs(25, &[(0.0, 0.0, 0.0), (8.0, 0.0, 0.0), (0.0, 8.0, 8.0)], 1);
        let y = tsne(&x, &TsneConfig { iters: 250, ..Default::default() }, 1);
        // mean intra-cluster distance must be well below inter-cluster
        let dist = |a: usize, b: usize| -> f32 {
            let dx = y[(a, 0)] - y[(b, 0)];
            let dy = y[(a, 1)] - y[(b, 1)];
            (dx * dx + dy * dy).sqrt()
        };
        let n = y.rows();
        let (mut intra, mut inter) = ((0.0, 0usize), (0.0, 0usize));
        for a in 0..n {
            for b in a + 1..n {
                if labels[a] == labels[b] {
                    intra = (intra.0 + dist(a, b), intra.1 + 1);
                } else {
                    inter = (inter.0 + dist(a, b), inter.1 + 1);
                }
            }
        }
        let intra = intra.0 / intra.1 as f32;
        let inter = inter.0 / inter.1 as f32;
        assert!(inter > 1.5 * intra, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn output_is_centered_and_finite() {
        let (x, _) = blobs(10, &[(0.0, 0.0, 0.0), (4.0, 4.0, 4.0)], 2);
        let y = tsne(&x, &TsneConfig { iters: 100, ..Default::default() }, 2);
        assert!(y.all_finite());
        let mx: f32 = (0..y.rows()).map(|r| y[(r, 0)]).sum::<f32>() / y.rows() as f32;
        assert!(mx.abs() < 1e-3);
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, _) = blobs(8, &[(0.0, 0.0, 0.0), (5.0, 0.0, 0.0)], 3);
        let cfg = TsneConfig { iters: 50, ..Default::default() };
        let a = tsne(&x, &cfg, 9);
        let b = tsne(&x, &cfg, 9);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }
}
