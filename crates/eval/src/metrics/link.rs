//! Link-prediction metrics: ROC-AUC and Average Precision.

/// ROC-AUC from scores and binary labels, computed via the Mann–Whitney
/// rank statistic with average ranks for ties.
///
/// # Panics
/// Panics unless both classes are present.
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    assert!(pos > 0 && neg > 0, "AUC needs both classes");
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal));
    // average ranks over tie groups (1-based ranks)
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0;
        for &k in &idx[i..=j] {
            if labels[k] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - pos as f64 * (pos as f64 + 1.0) / 2.0;
    u / (pos as f64 * neg as f64)
}

/// Average precision (area under the precision–recall curve via the step
/// interpolation used by scikit-learn).
pub fn average_precision(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    assert!(pos > 0, "AP needs at least one positive");
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut tp = 0usize;
    let mut ap = 0.0f64;
    for (k, &i) in idx.iter().enumerate() {
        if labels[i] {
            tp += 1;
            ap += tp as f64 / (k + 1) as f64;
        }
    }
    ap / pos as f64
}

/// Convenience: scores positive/negative edge lists via `scorer` and
/// returns `(auc, ap)`.
pub fn score_edges(
    pos: &[(usize, usize)],
    neg: &[(usize, usize)],
    mut scorer: impl FnMut(usize, usize) -> f32,
) -> (f64, f64) {
    let mut scores = Vec::with_capacity(pos.len() + neg.len());
    let mut labels = Vec::with_capacity(pos.len() + neg.len());
    for &(u, v) in pos {
        scores.push(scorer(u, v));
        labels.push(true);
    }
    for &(u, v) in neg {
        scores.push(scorer(u, v));
        labels.push(false);
    }
    (roc_auc(&scores, &labels), average_precision(&scores, &labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(roc_auc(&scores, &labels), 1.0);
        assert_eq!(average_precision(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_scores_give_zero_auc() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert_eq!(roc_auc(&scores, &labels), 0.0);
    }

    #[test]
    fn constant_scores_are_chance_level() {
        let scores = [0.5; 10];
        let labels = [true, false, true, false, true, false, true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
        // AP under total ties depends on the (stable) tie order; it must at
        // least stay away from both perfect and zero
        let ap = average_precision(&scores, &labels);
        assert!(ap > 0.4 && ap < 0.8, "ap = {ap}");
    }

    #[test]
    fn auc_known_value_with_ties() {
        // scores: pos {0.8, 0.5}, neg {0.5, 0.2}
        // pairs: (0.8 vs 0.5)=1, (0.8 vs 0.2)=1, (0.5 vs 0.5)=0.5, (0.5 vs 0.2)=1 → 3.5/4
        let scores = [0.8, 0.5, 0.5, 0.2];
        let labels = [true, true, false, false];
        assert!((roc_auc(&scores, &labels) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn ap_known_value() {
        // ranking: pos, neg, pos → AP = (1/1 + 2/3)/2 = 0.8333
        let scores = [0.9, 0.8, 0.7];
        let labels = [true, false, true];
        assert!((average_precision(&scores, &labels) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn score_edges_plumbs_through() {
        let pos = [(0, 1), (1, 2)];
        let neg = [(0, 3), (2, 3)];
        let (auc, ap) =
            score_edges(&pos, &neg, |u, v| if matches!((u, v), (0, 1) | (1, 2)) { 1.0 } else { 0.0 });
        assert_eq!(auc, 1.0);
        assert_eq!(ap, 1.0);
    }
}
