//! Clustering metrics: Normalized Mutual Information (NMI) and Adjusted
//! Rand Index (ARI), the two measures the paper reports for node clustering.

/// Contingency counts between two labelings.
fn contingency(a: &[usize], b: &[usize]) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty labeling");
    let ka = a.iter().max().unwrap() + 1;
    let kb = b.iter().max().unwrap() + 1;
    let mut table = vec![vec![0.0f64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1.0;
    }
    let rows: Vec<f64> = table.iter().map(|r| r.iter().sum()).collect();
    let cols: Vec<f64> = (0..kb).map(|j| table.iter().map(|r| r[j]).sum()).collect();
    (table, rows, cols)
}

/// NMI with arithmetic-mean normalization: `2·I(a;b)/(H(a)+H(b))`.
pub fn nmi(a: &[usize], b: &[usize]) -> f64 {
    let n = a.len() as f64;
    let (table, rows, cols) = contingency(a, b);
    let mut mi = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            if c > 0.0 {
                mi += (c / n) * ((c * n) / (rows[i] * cols[j])).ln();
            }
        }
    }
    let entropy = |m: &[f64]| -> f64 {
        m.iter().filter(|&&x| x > 0.0).map(|&x| -(x / n) * (x / n).ln()).sum()
    };
    let (ha, hb) = (entropy(&rows), entropy(&cols));
    if ha + hb == 0.0 {
        // both labelings are constant: identical by definition
        1.0
    } else {
        (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
    }
}

/// Adjusted Rand Index.
pub fn ari(a: &[usize], b: &[usize]) -> f64 {
    let n = a.len() as f64;
    let (table, rows, cols) = contingency(a, b);
    let comb2 = |x: f64| x * (x - 1.0) / 2.0;
    let sum_ij: f64 = table.iter().flatten().map(|&c| comb2(c)).sum();
    let sum_a: f64 = rows.iter().map(|&c| comb2(c)).sum();
    let sum_b: f64 = cols.iter().map(|&c| comb2(c)).sum();
    let expected = sum_a * sum_b / comb2(n);
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        // degenerate: e.g. both constant labelings
        if sum_ij == max_index {
            1.0
        } else {
            0.0
        }
    } else {
        (sum_ij - expected) / (max_index - expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identical_labelings_are_perfect() {
        let l = [0, 0, 1, 1, 2, 2];
        assert!((nmi(&l, &l) - 1.0).abs() < 1e-12);
        assert!((ari(&l, &l) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permuted_cluster_ids_are_still_perfect() {
        let a = [0, 0, 1, 1, 2, 2];
        let b = [2, 2, 0, 0, 1, 1];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
        assert!((ari(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_labelings_score_near_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: Vec<usize> = (0..2000).map(|_| rng.gen_range(0..4)).collect();
        let b: Vec<usize> = (0..2000).map(|_| rng.gen_range(0..4)).collect();
        assert!(nmi(&a, &b) < 0.02, "nmi = {}", nmi(&a, &b));
        assert!(ari(&a, &b).abs() < 0.02, "ari = {}", ari(&a, &b));
    }

    #[test]
    fn partial_agreement_is_intermediate() {
        let truth = [0, 0, 0, 0, 1, 1, 1, 1];
        let half = [0, 0, 0, 1, 1, 1, 1, 0]; // 2 mistakes
        let n = nmi(&truth, &half);
        let r = ari(&truth, &half);
        assert!(n > 0.05 && n < 0.95, "nmi = {n}");
        assert!(r > 0.0 && r < 1.0, "ari = {r}");
    }

    #[test]
    fn ari_known_value() {
        // sklearn example: ari([0,0,1,2], [0,0,1,1]) = 0.57142857
        let r = ari(&[0, 0, 1, 2], &[0, 0, 1, 1]);
        assert!((r - 0.571_428_57).abs() < 1e-6, "ari = {r}");
    }
}
