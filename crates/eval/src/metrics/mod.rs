//! Accuracy measures for the four graph tasks (paper §5.1).

pub mod classification;
pub mod clustering;
pub mod link;
