//! Classification metrics: accuracy and F1.

/// Fraction of positions where `pred == truth`.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty predictions");
    let hit = pred.iter().zip(truth).filter(|(a, b)| a == b).count();
    hit as f64 / pred.len() as f64
}

/// Macro-averaged F1 over `num_classes` classes (classes absent from both
/// `pred` and `truth` are skipped).
pub fn macro_f1(pred: &[usize], truth: &[usize], num_classes: usize) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fnn = vec![0usize; num_classes];
    for (&p, &t) in pred.iter().zip(truth) {
        if p == t {
            tp[p] += 1;
        } else {
            fp[p] += 1;
            fnn[t] += 1;
        }
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for c in 0..num_classes {
        if tp[c] + fp[c] + fnn[c] == 0 {
            continue;
        }
        let f1 = 2.0 * tp[c] as f64 / (2.0 * tp[c] as f64 + fp[c] as f64 + fnn[c] as f64);
        total += f1;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Micro-averaged F1 (equals accuracy for single-label classification).
pub fn micro_f1(pred: &[usize], truth: &[usize]) -> f64 {
    accuracy(pred, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[0, 1, 2]), 1.0 / 3.0);
    }

    #[test]
    fn macro_f1_perfect_and_worst() {
        assert_eq!(macro_f1(&[0, 1, 0, 1], &[0, 1, 0, 1], 2), 1.0);
        assert_eq!(macro_f1(&[1, 0, 1, 0], &[0, 1, 0, 1], 2), 0.0);
    }

    #[test]
    fn macro_f1_penalizes_minority_errors_more_than_accuracy() {
        // 9 of class 0 right, 1 of class 1 wrong
        let truth: Vec<usize> = [vec![0; 9], vec![1; 1]].concat();
        let pred = vec![0; 10];
        let acc = accuracy(&pred, &truth);
        let f1 = macro_f1(&pred, &truth, 2);
        assert!(f1 < acc, "macro F1 {f1} should be below accuracy {acc}");
    }

    #[test]
    fn micro_equals_accuracy() {
        let p = [0, 1, 1, 2];
        let t = [0, 1, 2, 2];
        assert_eq!(micro_f1(&p, &t), accuracy(&p, &t));
    }
}
