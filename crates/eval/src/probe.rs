//! Linear probes over frozen embeddings.
//!
//! A multinomial logistic regression trained with Adam: the standard
//! protocol for evaluating self-supervised node embeddings (the paper tunes
//! "a separate model" per downstream task; LIBSVM is replaced by this probe
//! and by [`crate::svm`], see DESIGN.md).

use gcmae_graph::NodeSplit;
use gcmae_nn::{Adam, Linear, ParamStore, Session};
use gcmae_tensor::ops::softmax_ce::predict;
use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::classification::{accuracy, macro_f1};

/// Probe hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct ProbeConfig {
    /// epochs.
    pub epochs: usize,
    /// lr.
    pub lr: f32,
    /// weight decay.
    pub weight_decay: f32,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self { epochs: 150, lr: 0.05, weight_decay: 1e-4 }
    }
}

/// Probe result on the test split.
#[derive(Clone, Copy, Debug)]
pub struct ProbeResult {
    /// accuracy.
    pub accuracy: f64,
    /// macro f1.
    pub macro_f1: f64,
}

/// Trains a logistic-regression probe on `embeddings[train]` and evaluates
/// on `embeddings[test]` (validation is used for early selection of the
/// best epoch).
pub fn linear_probe(
    embeddings: &Matrix,
    labels: &[usize],
    num_classes: usize,
    split: &NodeSplit,
    cfg: &ProbeConfig,
    seed: u64,
) -> ProbeResult {
    assert_eq!(embeddings.rows(), labels.len(), "embedding/label mismatch");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0092_06be);
    let mut store = ParamStore::new();
    let lin = Linear::new(&mut store, embeddings.cols(), num_classes, true, &mut rng);
    let mut adam = Adam::new(cfg.lr, cfg.weight_decay);

    let train_labels: Vec<usize> = split.train.iter().map(|&v| labels[v]).collect();
    let val_labels: Vec<usize> = split.val.iter().map(|&v| labels[v]).collect();
    let test_labels: Vec<usize> = split.test.iter().map(|&v| labels[v]).collect();

    let mut best_val = -1.0f64;
    let mut best_test = ProbeResult { accuracy: 0.0, macro_f1: 0.0 };
    for _ in 0..cfg.epochs {
        let mut sess = Session::new();
        let x = sess.tape.constant(embeddings.clone());
        let logits = lin.forward(&mut sess, &store, x);
        let loss = sess.tape.softmax_ce(logits, split.train.clone(), train_labels.clone());
        let logits_val = sess.tape.value(logits);
        // evaluate before the update (logits from current weights)
        let preds = predict(logits_val);
        let val_acc = if split.val.is_empty() {
            1.0
        } else {
            let vp: Vec<usize> = split.val.iter().map(|&v| preds[v]).collect();
            accuracy(&vp, &val_labels)
        };
        if val_acc > best_val {
            best_val = val_acc;
            let tp: Vec<usize> = split.test.iter().map(|&v| preds[v]).collect();
            best_test = ProbeResult {
                accuracy: accuracy(&tp, &test_labels),
                macro_f1: macro_f1(&tp, &test_labels, num_classes),
            };
        }
        let mut grads = sess.tape.backward(loss);
        adam.step(&mut store, &sess, &mut grads);
    }
    best_test
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Linearly separable two-class embeddings.
    fn toy(n: usize, seed: u64) -> (Matrix, Vec<usize>, NodeSplit) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 3);
        let mut y = vec![0usize; n];
        for i in 0..n {
            let c = i % 2;
            y[i] = c;
            let base = if c == 0 { -1.0 } else { 1.0 };
            for j in 0..3 {
                x[(i, j)] = base + rng.gen_range(-0.3..0.3);
            }
        }
        let split = NodeSplit {
            train: (0..n / 2).collect(),
            val: (n / 2..n * 3 / 4).collect(),
            test: (n * 3 / 4..n).collect(),
        };
        (x, y, split)
    }

    #[test]
    fn separable_data_reaches_high_accuracy() {
        let (x, y, split) = toy(80, 1);
        let r = linear_probe(&x, &y, 2, &split, &ProbeConfig::default(), 1);
        assert!(r.accuracy > 0.95, "accuracy {}", r.accuracy);
        assert!(r.macro_f1 > 0.95);
    }

    #[test]
    fn random_embeddings_are_near_chance() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200;
        let x = Matrix::uniform(n, 4, -1.0, 1.0, &mut rng);
        let y: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        let split = NodeSplit {
            train: (0..100).collect(),
            val: (100..150).collect(),
            test: (150..200).collect(),
        };
        let r = linear_probe(&x, &y, 2, &split, &ProbeConfig::default(), 2);
        assert!(r.accuracy < 0.8, "random data should not be very separable: {}", r.accuracy);
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y, split) = toy(60, 3);
        let a = linear_probe(&x, &y, 2, &split, &ProbeConfig::default(), 5);
        let b = linear_probe(&x, &y, 2, &split, &ProbeConfig::default(), 5);
        assert_eq!(a.accuracy, b.accuracy);
    }
}
