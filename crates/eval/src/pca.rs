//! Principal component analysis via power iteration with deflation — the
//! 2-D projection used as the t-SNE substitute for Figure 1 (see DESIGN.md).

use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Projects `data` (`n × d`) onto its top `k` principal components.
pub fn pca(data: &Matrix, k: usize, seed: u64) -> Matrix {
    let (n, d) = data.shape();
    assert!(k >= 1 && k <= d, "k out of range");
    // center
    let mut means = vec![0.0f32; d];
    for r in 0..n {
        for (m, &v) in means.iter_mut().zip(data.row(r)) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f32;
    }
    let mut centered = data.clone();
    for r in 0..n {
        for (v, &m) in centered.row_mut(r).iter_mut().zip(&means) {
            *v -= m;
        }
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0x9ca);
    let mut components: Vec<Vec<f32>> = vec![];
    let mut work = centered.clone();
    for _ in 0..k {
        // power iteration on Xᵀ X (implicitly)
        let mut v = Matrix::uniform(d, 1, -1.0, 1.0, &mut rng).into_vec();
        normalize(&mut v);
        for _ in 0..60 {
            // u = X v (n), then v' = Xᵀ u (d)
            let mut u = vec![0.0f32; n];
            for r in 0..n {
                u[r] = dot(work.row(r), &v);
            }
            let mut nv = vec![0.0f32; d];
            for r in 0..n {
                let ur = u[r];
                if ur == 0.0 {
                    continue;
                }
                for (o, &x) in nv.iter_mut().zip(work.row(r)) {
                    *o += ur * x;
                }
            }
            normalize(&mut nv);
            v = nv;
        }
        // deflate: X ← X − (X v) vᵀ
        for r in 0..n {
            let proj = dot(work.row(r), &v);
            for (x, &vv) in work.row_mut(r).iter_mut().zip(&v) {
                *x -= proj * vv;
            }
        }
        components.push(v);
    }

    let mut out = Matrix::zeros(n, k);
    for r in 0..n {
        for (c, comp) in components.iter().enumerate() {
            out[(r, c)] = dot(centered.row(r), comp);
        }
    }
    out
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn normalize(v: &mut [f32]) {
    let n = dot(v, v).sqrt().max(1e-12);
    for x in v {
        *x /= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn recovers_dominant_direction() {
        // points spread along (1,1,0) with small noise
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200;
        let mut data = Matrix::zeros(n, 3);
        for r in 0..n {
            let t: f32 = rng.gen_range(-5.0..5.0);
            data[(r, 0)] = t + rng.gen_range(-0.1..0.1);
            data[(r, 1)] = t + rng.gen_range(-0.1..0.1);
            data[(r, 2)] = rng.gen_range(-0.1..0.1);
        }
        let p = pca(&data, 2, 1);
        // variance of the first component ≈ variance of sqrt(2)·t ≫ second
        let var = |c: usize| -> f32 {
            let m: f32 = (0..n).map(|r| p[(r, c)]).sum::<f32>() / n as f32;
            (0..n).map(|r| (p[(r, c)] - m).powi(2)).sum::<f32>() / n as f32
        };
        assert!(var(0) > 10.0 * var(1), "v0={} v1={}", var(0), var(1));
    }

    #[test]
    fn components_are_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = Matrix::uniform(50, 4, 5.0, 6.0, &mut rng);
        let p = pca(&data, 2, 2);
        for c in 0..2 {
            let m: f32 = (0..50).map(|r| p[(r, c)]).sum::<f32>() / 50.0;
            assert!(m.abs() < 1e-3, "component {c} mean {m}");
        }
    }

    #[test]
    fn separable_clusters_stay_separable_in_2d() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100;
        let mut data = Matrix::zeros(n, 8);
        for r in 0..n {
            let c = r % 2;
            for j in 0..8 {
                data[(r, j)] = if c == 0 { -2.0 } else { 2.0 } + rng.gen_range(-0.5..0.5);
            }
        }
        let p = pca(&data, 2, 3);
        // clusters separate on PC1
        let m0: f32 = (0..n).step_by(2).map(|r| p[(r, 0)]).sum::<f32>() / 50.0;
        let m1: f32 = (1..n).step_by(2).map(|r| p[(r, 0)]).sum::<f32>() / 50.0;
        assert!((m0 - m1).abs() > 2.0, "m0={m0} m1={m1}");
    }
}
