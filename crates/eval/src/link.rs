//! Link-prediction evaluation on frozen representations.
//!
//! Two scorers, matching the paper's protocol (§5.1: "we fine-tune the final
//! layer of the model using cross-entropy following MaskGAE"):
//! * [`dot_product_eval`] — raw inner-product scores,
//! * [`finetuned_eval`] — a logistic head over the Hadamard edge features,
//!   trained on the training edges plus sampled negatives.

pub use gcmae_graph::sampling::sample_non_edges;
use gcmae_graph::LinkSplit;
use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::link::score_edges;

/// AUC/AP of the raw dot-product scorer on the test edges.
pub fn dot_product_eval(z: &Matrix, split: &LinkSplit) -> (f64, f64) {
    score_edges(&split.test_pos, &split.test_neg, |u, v| dot(z.row(u), z.row(v)))
}

/// Trains a logistic head on Hadamard edge features of the training graph
/// and returns test AUC/AP.
pub fn finetuned_eval(z: &Matrix, split: &LinkSplit, seed: u64) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11f7);
    let d = z.cols();
    let train_pos: Vec<(usize, usize)> = split.train_graph.undirected_edges().collect();
    let train_neg = sample_non_edges(&split.train_graph, train_pos.len(), &mut rng);

    // logistic regression on w·(z_u ⊙ z_v) + b by SGD
    let mut w = vec![0.0f32; d];
    let mut b = 0.0f32;
    let lr = 0.05f32;
    let mut order: Vec<(usize, usize, f32)> = train_pos
        .iter()
        .map(|&(u, v)| (u, v, 1.0))
        .chain(train_neg.iter().map(|&(u, v)| (u, v, 0.0)))
        .collect();
    let mut feat = vec![0.0f32; d];
    for epoch in 0..30 {
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let lr = lr / (1.0 + 0.15 * epoch as f32);
        for &(u, v, t) in &order {
            for ((f, &a), &bb) in feat.iter_mut().zip(z.row(u)).zip(z.row(v)) {
                *f = a * bb;
            }
            let logit = dot(&w, &feat) + b;
            let p = 1.0 / (1.0 + (-logit).exp());
            let g = p - t;
            for (wv, &fv) in w.iter_mut().zip(&feat) {
                *wv -= lr * (g * fv + 1e-5 * *wv);
            }
            b -= lr * g;
        }
    }
    score_edges(&split.test_pos, &split.test_neg, |u, v| {
        let mut s = b;
        for ((&a, &bb), &wv) in z.row(u).iter().zip(z.row(v)).zip(&w) {
            s += wv * a * bb;
        }
        s
    })
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_graph::splits::link_split;
    use gcmae_graph::Graph;

    /// Two cliques joined by one bridge; embeddings = clique indicator.
    fn setup() -> (Matrix, LinkSplit, Graph) {
        let mut edges = vec![];
        for i in 0..10usize {
            for j in i + 1..10 {
                edges.push((i, j));
                edges.push((i + 10, j + 10));
            }
        }
        edges.push((0, 10));
        let g = Graph::from_edges(20, &edges);
        let mut z = Matrix::zeros(20, 2);
        for i in 0..20 {
            z[(i, if i < 10 { 0 } else { 1 })] = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(1);
        let split = link_split(&g, 0.05, 0.15, &mut rng);
        (z, split, g)
    }

    #[test]
    fn structured_embeddings_score_high_auc() {
        let (z, split, _) = setup();
        let (auc, ap) = dot_product_eval(&z, &split);
        // most test negatives cross cliques (score 0), positives are within
        assert!(auc > 0.8, "auc {auc}");
        assert!(ap > 0.8, "ap {ap}");
    }

    #[test]
    fn finetuning_beats_or_matches_dot_product() {
        let (z, split, _) = setup();
        let (auc_dot, _) = dot_product_eval(&z, &split);
        let (auc_ft, _) = finetuned_eval(&z, &split, 3);
        assert!(auc_ft >= auc_dot - 0.05, "finetuned {auc_ft} vs dot {auc_dot}");
    }

    #[test]
    fn sampled_non_edges_are_valid() {
        let (_, _, g) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let negs = sample_non_edges(&g, 30, &mut rng);
        assert_eq!(negs.len(), 30);
        for &(u, v) in &negs {
            assert!(!g.has_edge(u, v));
            assert_ne!(u, v);
        }
    }
}
