//! Train/validation/test splits for nodes (classification) and edges (link
//! prediction).

use std::collections::HashSet;

use rand::Rng;

use crate::csr::Graph;

/// Node split for classification probes.
#[derive(Clone, Debug)]
pub struct NodeSplit {
    /// train.
    pub train: Vec<usize>,
    /// val.
    pub val: Vec<usize>,
    /// test.
    pub test: Vec<usize>,
}

/// Planetoid-style split: `per_class_train` training nodes per class,
/// `num_val` validation nodes, remainder test.
pub fn planetoid_split<R: Rng>(
    labels: &[usize],
    num_classes: usize,
    per_class_train: usize,
    num_val: usize,
    rng: &mut R,
) -> NodeSplit {
    let n = labels.len();
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut taken = vec![false; n];
    let mut per_class = vec![0usize; num_classes];
    let mut train = vec![];
    for &v in &order {
        let c = labels[v];
        if per_class[c] < per_class_train {
            per_class[c] += 1;
            taken[v] = true;
            train.push(v);
        }
    }
    let mut val = vec![];
    let mut test = vec![];
    for &v in &order {
        if taken[v] {
            continue;
        }
        if val.len() < num_val {
            val.push(v);
        } else {
            test.push(v);
        }
    }
    NodeSplit { train, val, test }
}

/// Fraction-based split (`train_frac`/`val_frac`, rest test).
pub fn fraction_split<R: Rng>(
    n: usize,
    train_frac: f32,
    val_frac: f32,
    rng: &mut R,
) -> NodeSplit {
    assert!(train_frac + val_frac < 1.0, "fractions must leave room for test");
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let tr = ((n as f32 * train_frac) as usize).max(1);
    let va = ((n as f32 * val_frac) as usize).max(1);
    NodeSplit {
        train: order[..tr].to_vec(),
        val: order[tr..tr + va].to_vec(),
        test: order[tr + va..].to_vec(),
    }
}

/// Edge split for link prediction: held-out positive edges are removed from
/// the training graph; negatives are sampled non-edges.
#[derive(Clone, Debug)]
pub struct LinkSplit {
    /// Graph with val/test positives removed.
    pub train_graph: Graph,
    /// val pos.
    pub val_pos: Vec<(usize, usize)>,
    /// val neg.
    pub val_neg: Vec<(usize, usize)>,
    /// test pos.
    pub test_pos: Vec<(usize, usize)>,
    /// test neg.
    pub test_neg: Vec<(usize, usize)>,
}

/// Standard 85/5/10-style link split: `val_frac` and `test_frac` of the
/// undirected edges are held out, with an equal number of sampled non-edges.
pub fn link_split<R: Rng>(g: &Graph, val_frac: f32, test_frac: f32, rng: &mut R) -> LinkSplit {
    assert!(val_frac + test_frac < 1.0, "held-out fractions too large");
    let mut edges: Vec<(usize, usize)> = g.undirected_edges().collect();
    let m = edges.len();
    for i in (1..m).rev() {
        edges.swap(i, rng.gen_range(0..=i));
    }
    let n_val = ((m as f32 * val_frac) as usize).max(1);
    let n_test = ((m as f32 * test_frac) as usize).max(1);
    let val_pos = edges[..n_val].to_vec();
    let test_pos = edges[n_val..n_val + n_test].to_vec();
    let train_edges = &edges[n_val + n_test..];
    let train_graph = Graph::from_edges(g.num_nodes(), train_edges);

    let sample_negatives = |count: usize, rng: &mut R, used: &mut HashSet<(usize, usize)>| {
        let n = g.num_nodes();
        let mut out = Vec::with_capacity(count);
        let mut guard = 0usize;
        while out.len() < count && guard < count * 200 {
            guard += 1;
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v || g.has_edge(u, v) {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if used.insert(key) {
                out.push(key);
            }
        }
        out
    };
    let mut used = HashSet::new();
    let val_neg = sample_negatives(n_val, rng, &mut used);
    let test_neg = sample_negatives(n_test, rng, &mut used);
    LinkSplit { train_graph, val_pos, val_neg, test_pos, test_neg }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planetoid_split_balances_classes() {
        let mut rng = StdRng::seed_from_u64(1);
        let labels: Vec<usize> = (0..100).map(|v| v % 4).collect();
        let s = planetoid_split(&labels, 4, 5, 20, &mut rng);
        assert_eq!(s.train.len(), 20);
        for c in 0..4 {
            assert_eq!(s.train.iter().filter(|&&v| labels[v] == c).count(), 5);
        }
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), 100);
        // disjoint
        let mut all: Vec<usize> =
            s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn fraction_split_covers_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = fraction_split(50, 0.1, 0.2, &mut rng);
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), 50);
        assert_eq!(s.train.len(), 5);
        assert_eq!(s.val.len(), 10);
    }

    #[test]
    fn link_split_removes_held_out_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        let edges: Vec<(usize, usize)> = (0..40).map(|i| (i, (i + 1) % 41)).collect();
        let g = Graph::from_edges(41, &edges);
        let s = link_split(&g, 0.05, 0.10, &mut rng);
        assert_eq!(
            s.train_graph.num_edges() + s.val_pos.len() + s.test_pos.len(),
            g.num_edges()
        );
        for &(u, v) in s.test_pos.iter().chain(&s.val_pos) {
            assert!(!s.train_graph.has_edge(u, v), "held-out edge leaked");
            assert!(g.has_edge(u, v));
        }
        for &(u, v) in s.test_neg.iter().chain(&s.val_neg) {
            assert!(!g.has_edge(u, v), "negative is a real edge");
            assert_ne!(u, v);
        }
        assert_eq!(s.test_neg.len(), s.test_pos.len());
    }

    #[test]
    fn link_split_negatives_are_unique() {
        let mut rng = StdRng::seed_from_u64(4);
        let edges: Vec<(usize, usize)> = (0..30).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(31, &edges);
        let s = link_split(&g, 0.1, 0.1, &mut rng);
        let mut all = s.val_neg.clone();
        all.extend(&s.test_neg);
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len);
    }
}
