//! Graph data augmentations used by the MAE and contrastive branches.
//!
//! All augmentations are pure: they return new views and never mutate the
//! input graph or features.

use gcmae_tensor::{Matrix, SharedCsr};
use rand::Rng;

use crate::csr::Graph;

/// Result of node-feature masking (paper Eq. 9): masked rows are zeroed and
/// their indices recorded for the reconstruction loss.
#[derive(Clone, Debug)]
pub struct MaskedFeatures {
    /// features.
    pub features: Matrix,
    /// masked.
    pub masked: Vec<usize>,
}

/// Masks each node's feature row independently with probability `rate`
/// (Bernoulli node sampling, as in GraphMAE/GCMAE). Guarantees at least one
/// masked and one visible node.
pub fn mask_node_features<R: Rng>(x: &Matrix, rate: f32, rng: &mut R) -> MaskedFeatures {
    assert!((0.0..=1.0).contains(&rate), "mask rate out of range");
    let n = x.rows();
    assert!(n >= 2, "need at least two nodes to mask");
    let mut masked: Vec<usize> = (0..n).filter(|_| rng.gen::<f32>() < rate).collect();
    if masked.is_empty() {
        masked.push(rng.gen_range(0..n));
    }
    if masked.len() == n {
        masked.remove(rng.gen_range(0..n));
    }
    let mut features = x.clone();
    for &r in &masked {
        features.row_mut(r).fill(0.0);
    }
    MaskedFeatures { features, masked }
}

/// Result of node dropping: dropped nodes keep their rows (zeroed) so the
/// view stays aligned with the original node indexing.
#[derive(Clone, Debug)]
pub struct DroppedNodes {
    /// graph.
    pub graph: Graph,
    /// features.
    pub features: Matrix,
    /// dropped.
    pub dropped: Vec<usize>,
}

/// Drops each node independently with probability `rate`: its feature row is
/// zeroed and its incident edges removed (the contrastive view `T₂`).
pub fn drop_nodes<R: Rng>(g: &Graph, x: &Matrix, rate: f32, rng: &mut R) -> DroppedNodes {
    assert!((0.0..=1.0).contains(&rate), "drop rate out of range");
    let n = g.num_nodes();
    let mut flags = vec![false; n];
    let mut dropped = vec![];
    for (v, f) in flags.iter_mut().enumerate() {
        if rng.gen::<f32>() < rate {
            *f = true;
            dropped.push(v);
        }
    }
    if dropped.len() == n {
        let keep = rng.gen_range(0..n);
        flags[keep] = false;
        dropped.retain(|&v| v != keep);
    }
    let graph = g.isolate_nodes(&flags);
    let mut features = x.clone();
    for &r in &dropped {
        features.row_mut(r).fill(0.0);
    }
    DroppedNodes { graph, features, dropped }
}

/// Removes each undirected edge independently with probability `rate`
/// (GRACE's topology augmentation).
pub fn drop_edges<R: Rng>(g: &Graph, rate: f32, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&rate), "drop rate out of range");
    let kept: Vec<(usize, usize)> =
        g.undirected_edges().filter(|_| rng.gen::<f32>() >= rate).collect();
    Graph::from_edges(g.num_nodes(), &kept)
}

/// Zeroes each feature *dimension* independently with probability `rate`
/// (GRACE's attribute augmentation).
pub fn mask_feature_dims<R: Rng>(x: &Matrix, rate: f32, rng: &mut R) -> Matrix {
    assert!((0.0..=1.0).contains(&rate), "mask rate out of range");
    let d = x.cols();
    let keep: Vec<bool> = (0..d).map(|_| rng.gen::<f32>() >= rate).collect();
    let mut out = x.clone();
    for r in 0..x.rows() {
        for (v, &k) in out.row_mut(r).iter_mut().zip(&keep) {
            if !k {
                *v = 0.0;
            }
        }
    }
    out
}

/// Randomly permutes feature rows (DGI's corruption function).
pub fn shuffle_rows<R: Rng>(x: &Matrix, rng: &mut R) -> Matrix {
    let n = x.rows();
    let mut perm: Vec<usize> = (0..n).collect();
    // Fisher–Yates
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    x.gather_rows(&perm)
}

/// Approximate personalized-PageRank diffusion (MVGRL's second view):
/// truncated power series `Σ_k α(1−α)^k T^k` with `T = D̃^{-1}(A+I)`, keeping
/// the `topk` largest entries per row and row-normalizing.
pub fn ppr_diffusion(g: &Graph, alpha: f32, iters: usize, topk: usize) -> SharedCsr {
    assert!((0.0..1.0).contains(&alpha), "alpha must be in (0,1)");
    let n = g.num_nodes();
    let (t, _) = g.mean_norm();
    // Per-row push: start with e_i, apply T iteratively, accumulate.
    let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(n * topk);
    let mut cur = vec![0.0f32; n];
    let mut next = vec![0.0f32; n];
    for i in 0..n {
        cur.fill(0.0);
        cur[i] = 1.0;
        let mut acc: Vec<(usize, f32)> = vec![(i, alpha)];
        let mut weight = alpha;
        for _ in 0..iters {
            weight *= 1.0 - alpha;
            next.fill(0.0);
            for (u, &cv) in cur.iter().enumerate() {
                if cv == 0.0 {
                    continue;
                }
                let (cols, vals) = (t.row(u).0, t.row(u).1);
                for (&c, &v) in cols.iter().zip(vals) {
                    next[c as usize] += cv * v;
                }
            }
            std::mem::swap(&mut cur, &mut next);
            for (u, &cv) in cur.iter().enumerate() {
                if cv > 1e-6 {
                    acc.push((u, weight * cv));
                }
            }
        }
        // merge, keep topk, normalize
        acc.sort_unstable_by_key(|&(u, _)| u);
        let mut merged: Vec<(usize, f32)> = vec![];
        for (u, v) in acc {
            match merged.last_mut() {
                Some((lu, lv)) if *lu == u => *lv += v,
                _ => merged.push((u, v)),
            }
        }
        merged.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        merged.truncate(topk);
        let total: f32 = merged.iter().map(|&(_, v)| v).sum();
        for (u, v) in merged {
            triplets.push((i, u, v / total.max(1e-8)));
        }
    }
    std::sync::Arc::new(gcmae_tensor::CsrMatrix::from_triplets(n, n, &triplets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cycle(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn feature_masking_zeroes_selected_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Matrix::full(10, 3, 1.0);
        let m = mask_node_features(&x, 0.5, &mut rng);
        assert!(!m.masked.is_empty() && m.masked.len() < 10);
        for &r in &m.masked {
            assert!(m.features.row(r).iter().all(|&v| v == 0.0));
        }
        let visible = (0..10).find(|v| !m.masked.contains(v)).unwrap();
        assert_eq!(m.features.row(visible), x.row(visible));
    }

    #[test]
    fn masking_never_masks_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Matrix::full(4, 2, 1.0);
        for _ in 0..50 {
            let m = mask_node_features(&x, 1.0, &mut rng);
            assert!(m.masked.len() < 4);
            let m0 = mask_node_features(&x, 0.0, &mut rng);
            assert_eq!(m0.masked.len(), 1, "at least one node is always masked");
        }
    }

    #[test]
    fn node_dropping_preserves_alignment() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = cycle(8);
        let x = Matrix::from_fn(8, 2, |r, _| r as f32 + 1.0);
        let d = drop_nodes(&g, &x, 0.4, &mut rng);
        assert_eq!(d.graph.num_nodes(), 8);
        assert_eq!(d.features.rows(), 8);
        for &v in &d.dropped {
            assert_eq!(d.graph.degree(v), 0);
            assert!(d.features.row(v).iter().all(|&f| f == 0.0));
        }
    }

    #[test]
    fn edge_dropping_rate_zero_and_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = cycle(10);
        assert_eq!(drop_edges(&g, 0.0, &mut rng).num_edges(), 10);
        assert_eq!(drop_edges(&g, 1.0, &mut rng).num_edges(), 0);
    }

    #[test]
    fn dim_masking_zeroes_whole_columns() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Matrix::full(6, 10, 1.0);
        let m = mask_feature_dims(&x, 0.5, &mut rng);
        for c in 0..10 {
            let col: Vec<f32> = (0..6).map(|r| m[(r, c)]).collect();
            assert!(col.iter().all(|&v| v == 0.0) || col.iter().all(|&v| v == 1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = Matrix::from_fn(7, 1, |r, _| r as f32);
        let s = shuffle_rows(&x, &mut rng);
        let mut vals: Vec<f32> = s.as_slice().to_vec();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, (0..7).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    fn ppr_rows_are_stochastic_and_local() {
        let g = cycle(12);
        let d = ppr_diffusion(&g, 0.2, 8, 6);
        for r in 0..12 {
            let (_, vals) = d.row(r);
            let s: f32 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
            assert!(vals.len() <= 6);
        }
        // the diffusion should reach beyond the 1-hop neighborhood
        let (cols, _) = d.row(0);
        assert!(cols.iter().any(|&c| c != 0 && c != 1 && c != 11));
    }
}
