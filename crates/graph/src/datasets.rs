//! Dataset containers: single attributed graphs (node-level tasks) and
//! collections of small graphs (graph-level tasks).

use std::sync::Arc;

use gcmae_tensor::Matrix;

use crate::csr::Graph;

/// A single attributed, labeled graph (node classification / clustering /
/// link prediction).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// name.
    pub name: String,
    /// graph.
    pub graph: Graph,
    /// `n × d` node features.
    pub features: Matrix,
    /// Class label per node.
    pub labels: Vec<usize>,
    /// num classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Basic shape invariants; call after constructing a dataset by hand.
    pub fn validate(&self) {
        assert_eq!(self.features.rows(), self.graph.num_nodes(), "feature rows != nodes");
        assert_eq!(self.labels.len(), self.graph.num_nodes(), "labels != nodes");
        assert!(
            self.labels.iter().all(|&l| l < self.num_classes),
            "label out of range"
        );
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Restricts the dataset to the induced subgraph over `nodes`.
    pub fn induced(&self, nodes: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            graph: self.graph.induced_subgraph(nodes),
            features: self.features.gather_rows(nodes),
            labels: nodes.iter().map(|&v| self.labels[v]).collect(),
            num_classes: self.num_classes,
        }
    }
}

/// A labeled collection of small graphs (graph classification).
#[derive(Clone, Debug)]
pub struct GraphCollection {
    /// name.
    pub name: String,
    /// graphs.
    pub graphs: Vec<Graph>,
    /// Per-graph node features, aligned with `graphs`.
    pub features: Vec<Matrix>,
    /// Class label per graph.
    pub labels: Vec<usize>,
    /// num classes.
    pub num_classes: usize,
}

/// Several small graphs merged into one block-diagonal graph so a single
/// GNN forward pass covers the whole batch. `segments[r]` maps node row `r`
/// back to its position in the `indices` list passed to
/// [`GraphCollection::batch`].
#[derive(Clone, Debug)]
pub struct BatchedGraphs {
    /// graph.
    pub graph: Graph,
    /// features.
    pub features: Matrix,
    /// segments.
    pub segments: Arc<Vec<u32>>,
    /// num graphs.
    pub num_graphs: usize,
}

impl GraphCollection {
    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// `true` when the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Feature dimensionality (uniform across the collection).
    pub fn feature_dim(&self) -> usize {
        self.features.first().map_or(0, Matrix::cols)
    }

    /// Mean node count across graphs.
    pub fn avg_nodes(&self) -> f32 {
        if self.graphs.is_empty() {
            return 0.0;
        }
        self.graphs.iter().map(Graph::num_nodes).sum::<usize>() as f32 / self.len() as f32
    }

    /// Shape invariants.
    pub fn validate(&self) {
        assert_eq!(self.graphs.len(), self.features.len());
        assert_eq!(self.graphs.len(), self.labels.len());
        let d = self.feature_dim();
        for (g, f) in self.graphs.iter().zip(&self.features) {
            assert_eq!(g.num_nodes(), f.rows(), "feature rows != nodes");
            assert_eq!(f.cols(), d, "inconsistent feature dims");
        }
        assert!(self.labels.iter().all(|&l| l < self.num_classes));
    }

    /// Merges the graphs at `indices` into one block-diagonal batch.
    pub fn batch(&self, indices: &[usize]) -> BatchedGraphs {
        assert!(!indices.is_empty(), "empty batch");
        let total_nodes: usize = indices.iter().map(|&i| self.graphs[i].num_nodes()).sum();
        let d = self.feature_dim();
        let mut features = Matrix::zeros(total_nodes, d);
        let mut segments = Vec::with_capacity(total_nodes);
        let mut edges = vec![];
        let mut offset = 0usize;
        for (slot, &gi) in indices.iter().enumerate() {
            let g = &self.graphs[gi];
            let f = &self.features[gi];
            for (u, v) in g.undirected_edges() {
                edges.push((u + offset, v + offset));
            }
            for r in 0..g.num_nodes() {
                features.row_mut(offset + r).copy_from_slice(f.row(r));
                segments.push(slot as u32);
            }
            offset += g.num_nodes();
        }
        BatchedGraphs {
            graph: Graph::from_edges(total_nodes, &edges),
            features,
            segments: Arc::new(segments),
            num_graphs: indices.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_collection() -> GraphCollection {
        let g0 = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let g1 = Graph::from_edges(2, &[(0, 1)]);
        GraphCollection {
            name: "tiny".into(),
            graphs: vec![g0, g1],
            features: vec![Matrix::full(3, 2, 1.0), Matrix::full(2, 2, 2.0)],
            labels: vec![0, 1],
            num_classes: 2,
        }
    }

    #[test]
    fn batch_is_block_diagonal() {
        let c = tiny_collection();
        c.validate();
        let b = c.batch(&[0, 1]);
        assert_eq!(b.graph.num_nodes(), 5);
        assert_eq!(b.graph.num_edges(), 3);
        assert!(b.graph.has_edge(3, 4));
        assert!(!b.graph.has_edge(2, 3), "no cross-graph edge");
        assert_eq!(b.segments.as_slice(), &[0, 0, 0, 1, 1]);
        assert_eq!(b.features.row(3), &[2.0, 2.0]);
    }

    #[test]
    fn batch_respects_index_order() {
        let c = tiny_collection();
        let b = c.batch(&[1, 0]);
        assert_eq!(b.segments.as_slice(), &[0, 0, 1, 1, 1]);
        assert_eq!(b.features.row(0), &[2.0, 2.0]);
    }

    #[test]
    fn induced_dataset_realigns_labels() {
        let d = Dataset {
            name: "t".into(),
            graph: Graph::from_edges(4, &[(0, 1), (2, 3)]),
            features: Matrix::from_fn(4, 1, |r, _| r as f32),
            labels: vec![0, 1, 0, 1],
            num_classes: 2,
        };
        d.validate();
        let s = d.induced(&[2, 3]);
        s.validate();
        assert_eq!(s.labels, vec![0, 1]);
        assert_eq!(s.features.row(0), &[2.0]);
        assert!(s.graph.has_edge(0, 1));
    }
}
