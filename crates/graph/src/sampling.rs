//! Subgraph sampling for mini-batch training on large graphs (paper §4.4:
//! "we sample multiple sub-graphs from the original graph for
//! reconstruction").

use rand::Rng;

use crate::csr::Graph;
use crate::datasets::Dataset;

/// Samples `k` distinct node ids uniformly (partial Fisher–Yates).
///
/// Both code paths consume the same RNG draws and return the same ids; the
/// sparse path merely avoids materializing all of `0..n` when `k << n`, so
/// switching paths never changes a seeded training trajectory.
pub fn sample_nodes<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    // When most of the range gets touched anyway, the flat vector is cheaper
    // than hashing.
    if k.saturating_mul(4) >= n {
        sample_nodes_dense(n, k, rng)
    } else {
        sample_nodes_sparse(n, k, rng)
    }
}

/// Full-vector partial Fisher–Yates: O(n) time and space.
fn sample_nodes_dense<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids
}

/// Virtual partial Fisher–Yates over an implicit identity array: only the
/// displaced entries live in a small map, so time and space are O(k). Draws
/// and output are identical to [`sample_nodes_dense`].
fn sample_nodes_sparse<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let mut displaced: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::with_capacity(2 * k);
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let j = rng.gen_range(i..n);
        let vi = displaced.get(&i).copied().unwrap_or(i);
        let vj = displaced.get(&j).copied().unwrap_or(j);
        // swap the virtual entries at i and j; position i is final after
        // this step (later steps only touch positions > i).
        displaced.insert(i, vj);
        displaced.insert(j, vi);
        out.push(vj);
    }
    out
}

/// Collects the distinct nodes touched by `walks` random walks of length
/// `len` from random start nodes, capped at `max_nodes`.
pub fn random_walk_nodes<R: Rng>(
    g: &Graph,
    walks: usize,
    len: usize,
    max_nodes: usize,
    rng: &mut R,
) -> Vec<usize> {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut out = vec![];
    'outer: for _ in 0..walks {
        let mut cur = rng.gen_range(0..n);
        for _ in 0..=len {
            if !seen[cur] {
                seen[cur] = true;
                out.push(cur);
                if out.len() >= max_nodes {
                    break 'outer;
                }
            }
            let nbrs = g.neighbors(cur);
            if nbrs.is_empty() {
                break;
            }
            cur = nbrs[rng.gen_range(0..nbrs.len())] as usize;
        }
    }
    out
}

/// Samples `count` distinct non-edges (negative samples) of `g`.
pub fn sample_non_edges<R: Rng>(g: &Graph, count: usize, rng: &mut R) -> Vec<(usize, usize)> {
    let n = g.num_nodes();
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    let mut guard = 0usize;
    while out.len() < count && guard < count.saturating_mul(200).max(1000) {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || g.has_edge(u, v) {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

/// A sampled subgraph batch: the induced dataset plus the original node ids.
#[derive(Clone, Debug)]
pub struct SubgraphBatch {
    /// nodes.
    pub nodes: Vec<usize>,
    /// data.
    pub data: Dataset,
}

/// Uniform induced-subgraph batch of (at most) `size` nodes.
pub fn uniform_subgraph<R: Rng>(ds: &Dataset, size: usize, rng: &mut R) -> SubgraphBatch {
    let nodes = sample_nodes(ds.num_nodes(), size, rng);
    SubgraphBatch { data: ds.induced(&nodes), nodes }
}

/// Random-walk induced-subgraph batch of (at most) `size` nodes — preserves
/// more edges than uniform sampling on sparse graphs.
pub fn walk_subgraph<R: Rng>(ds: &Dataset, size: usize, rng: &mut R) -> SubgraphBatch {
    let walks = (size / 8).max(1);
    let mut nodes = random_walk_nodes(&ds.graph, walks, 16, size, rng);
    if nodes.len() < size.min(ds.num_nodes()) {
        // top up with uniform nodes
        let mut in_set = vec![false; ds.num_nodes()];
        for &v in &nodes {
            in_set[v] = true;
        }
        for v in sample_nodes(ds.num_nodes(), ds.num_nodes(), rng) {
            if nodes.len() >= size {
                break;
            }
            if !in_set[v] {
                in_set[v] = true;
                nodes.push(v);
            }
        }
    }
    SubgraphBatch { data: ds.induced(&nodes), nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset(n: usize) -> Dataset {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Dataset {
            name: "toy".into(),
            graph: Graph::from_edges(n, &edges),
            features: Matrix::from_fn(n, 2, |r, c| (r * 2 + c) as f32),
            labels: (0..n).map(|v| v % 2).collect(),
            num_classes: 2,
        }
    }

    #[test]
    fn sample_nodes_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_nodes(20, 8, &mut rng);
        assert_eq!(s.len(), 8);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "duplicates in sample");
        assert_eq!(sample_nodes(5, 50, &mut rng).len(), 5);
    }

    #[test]
    fn sample_nodes_sparse_matches_dense_bitwise() {
        // Same seed -> same draws -> same ids, for both k<<n (sparse path)
        // and the dense cutoff, across several seeds.
        for seed in 0..20u64 {
            for (n, k) in [(1000, 7), (1000, 100), (64, 60), (5, 5), (1, 1)] {
                let mut r1 = StdRng::seed_from_u64(seed);
                let mut r2 = StdRng::seed_from_u64(seed);
                let dense = sample_nodes_dense(n, k, &mut r1);
                let sparse = sample_nodes_sparse(n, k, &mut r2);
                assert_eq!(dense, sparse, "seed {seed} n {n} k {k}");
            }
        }
    }

    #[test]
    fn sample_nodes_small_k_stays_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let s = sample_nodes(10_000, 5, &mut rng);
            assert_eq!(s.len(), 5);
            assert!(s.iter().all(|&v| v < 10_000));
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "duplicates in {s:?}");
        }
        assert!(sample_nodes(100, 0, &mut rng).is_empty());
        assert!(sample_nodes(0, 10, &mut rng).is_empty());
    }

    #[test]
    fn random_walk_nodes_respects_max_nodes_cap() {
        let ds = toy_dataset(200);
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            for cap in [1usize, 7, 50] {
                let nodes = random_walk_nodes(&ds.graph, 40, 16, cap, &mut rng);
                assert!(nodes.len() <= cap, "cap {cap} violated: {}", nodes.len());
                let mut sorted = nodes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), nodes.len(), "walk nodes must be distinct");
            }
        }
        // Plenty of walks on a small graph: the cap binds exactly.
        let mut rng = StdRng::seed_from_u64(11);
        let nodes = random_walk_nodes(&toy_dataset(30).graph, 100, 16, 10, &mut rng);
        assert_eq!(nodes.len(), 10);
    }

    #[test]
    fn uniform_subgraph_is_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = toy_dataset(30);
        let b = uniform_subgraph(&ds, 10, &mut rng);
        assert_eq!(b.nodes.len(), 10);
        assert_eq!(b.data.num_nodes(), 10);
        for (i, &v) in b.nodes.iter().enumerate() {
            assert_eq!(b.data.labels[i], ds.labels[v]);
            assert_eq!(b.data.features.row(i), ds.features.row(v));
        }
    }

    #[test]
    fn walk_subgraph_keeps_more_edges_than_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = toy_dataset(400);
        let mut walk_edges = 0usize;
        let mut unif_edges = 0usize;
        for _ in 0..10 {
            walk_edges += walk_subgraph(&ds, 50, &mut rng).data.graph.num_edges();
            unif_edges += uniform_subgraph(&ds, 50, &mut rng).data.graph.num_edges();
        }
        assert!(
            walk_edges > unif_edges,
            "walk {walk_edges} should beat uniform {unif_edges} on a path graph"
        );
    }

    #[test]
    fn walk_subgraph_tops_up_to_requested_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let ds = toy_dataset(100);
        let b = walk_subgraph(&ds, 60, &mut rng);
        assert_eq!(b.nodes.len(), 60);
    }
}
