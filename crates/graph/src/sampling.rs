//! Subgraph sampling for mini-batch training on large graphs (paper §4.4:
//! "we sample multiple sub-graphs from the original graph for
//! reconstruction").

use rand::Rng;

use crate::csr::Graph;
use crate::datasets::Dataset;

/// Samples `k` distinct node ids uniformly (partial Fisher–Yates).
pub fn sample_nodes<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let k = k.min(n);
    let mut ids: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids
}

/// Collects the distinct nodes touched by `walks` random walks of length
/// `len` from random start nodes, capped at `max_nodes`.
pub fn random_walk_nodes<R: Rng>(
    g: &Graph,
    walks: usize,
    len: usize,
    max_nodes: usize,
    rng: &mut R,
) -> Vec<usize> {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut out = vec![];
    'outer: for _ in 0..walks {
        let mut cur = rng.gen_range(0..n);
        for _ in 0..=len {
            if !seen[cur] {
                seen[cur] = true;
                out.push(cur);
                if out.len() >= max_nodes {
                    break 'outer;
                }
            }
            let nbrs = g.neighbors(cur);
            if nbrs.is_empty() {
                break;
            }
            cur = nbrs[rng.gen_range(0..nbrs.len())] as usize;
        }
    }
    out
}

/// Samples `count` distinct non-edges (negative samples) of `g`.
pub fn sample_non_edges<R: Rng>(g: &Graph, count: usize, rng: &mut R) -> Vec<(usize, usize)> {
    let n = g.num_nodes();
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    let mut guard = 0usize;
    while out.len() < count && guard < count.saturating_mul(200).max(1000) {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || g.has_edge(u, v) {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

/// A sampled subgraph batch: the induced dataset plus the original node ids.
#[derive(Clone, Debug)]
pub struct SubgraphBatch {
    /// nodes.
    pub nodes: Vec<usize>,
    /// data.
    pub data: Dataset,
}

/// Uniform induced-subgraph batch of (at most) `size` nodes.
pub fn uniform_subgraph<R: Rng>(ds: &Dataset, size: usize, rng: &mut R) -> SubgraphBatch {
    let nodes = sample_nodes(ds.num_nodes(), size, rng);
    SubgraphBatch { data: ds.induced(&nodes), nodes }
}

/// Random-walk induced-subgraph batch of (at most) `size` nodes — preserves
/// more edges than uniform sampling on sparse graphs.
pub fn walk_subgraph<R: Rng>(ds: &Dataset, size: usize, rng: &mut R) -> SubgraphBatch {
    let walks = (size / 8).max(1);
    let mut nodes = random_walk_nodes(&ds.graph, walks, 16, size, rng);
    if nodes.len() < size.min(ds.num_nodes()) {
        // top up with uniform nodes
        let mut in_set = vec![false; ds.num_nodes()];
        for &v in &nodes {
            in_set[v] = true;
        }
        for v in sample_nodes(ds.num_nodes(), ds.num_nodes(), rng) {
            if nodes.len() >= size {
                break;
            }
            if !in_set[v] {
                in_set[v] = true;
                nodes.push(v);
            }
        }
    }
    SubgraphBatch { data: ds.induced(&nodes), nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset(n: usize) -> Dataset {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Dataset {
            name: "toy".into(),
            graph: Graph::from_edges(n, &edges),
            features: Matrix::from_fn(n, 2, |r, c| (r * 2 + c) as f32),
            labels: (0..n).map(|v| v % 2).collect(),
            num_classes: 2,
        }
    }

    #[test]
    fn sample_nodes_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_nodes(20, 8, &mut rng);
        assert_eq!(s.len(), 8);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "duplicates in sample");
        assert_eq!(sample_nodes(5, 50, &mut rng).len(), 5);
    }

    #[test]
    fn uniform_subgraph_is_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = toy_dataset(30);
        let b = uniform_subgraph(&ds, 10, &mut rng);
        assert_eq!(b.nodes.len(), 10);
        assert_eq!(b.data.num_nodes(), 10);
        for (i, &v) in b.nodes.iter().enumerate() {
            assert_eq!(b.data.labels[i], ds.labels[v]);
            assert_eq!(b.data.features.row(i), ds.features.row(v));
        }
    }

    #[test]
    fn walk_subgraph_keeps_more_edges_than_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = toy_dataset(400);
        let mut walk_edges = 0usize;
        let mut unif_edges = 0usize;
        for _ in 0..10 {
            walk_edges += walk_subgraph(&ds, 50, &mut rng).data.graph.num_edges();
            unif_edges += uniform_subgraph(&ds, 50, &mut rng).data.graph.num_edges();
        }
        assert!(
            walk_edges > unif_edges,
            "walk {walk_edges} should beat uniform {unif_edges} on a path graph"
        );
    }

    #[test]
    fn walk_subgraph_tops_up_to_requested_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let ds = toy_dataset(100);
        let b = walk_subgraph(&ds, 60, &mut rng);
        assert_eq!(b.nodes.len(), 60);
    }
}
