//! Subgraph and negative sampling for mini-batch training on large graphs
//! (paper §4.4: "we sample multiple sub-graphs from the original graph for
//! reconstruction") and for the sampled O(N·k) objectives.
//!
//! Every sampler here is **rejection-free**: no retry loops whose acceptance
//! probability depends on the graph, so small or dense graphs see the same
//! unbiased distributions as large sparse ones, in a bounded number of RNG
//! draws. Distinct-id draws all run through one shared core,
//! [`DistinctSampler`] (a virtual partial Fisher–Yates), used by
//! [`sample_nodes`], the per-anchor [`negative_table`], and
//! [`sample_non_edges`].

use rand::Rng;

use crate::csr::Graph;
use crate::datasets::Dataset;

/// Shared rejection-free O(k) distinct-id sampler: a partial Fisher–Yates
/// over an *implicit* identity array `[0, n)`. Only the displaced entries
/// live in a small map, so each `k`-draw costs O(k) time and space no matter
/// how large `n` is, and exactly `k` RNG draws are consumed.
///
/// The struct exists so per-anchor callers (the negative-table builder draws
/// `n` times) can reuse one map allocation across calls; a one-shot call via
/// [`DistinctSampler::default`] is equally correct.
#[derive(Default)]
pub struct DistinctSampler {
    displaced: std::collections::HashMap<usize, usize>,
}

impl DistinctSampler {
    /// Emits `min(k, n)` distinct ids drawn uniformly from `0..n`, in draw
    /// order. Draws (and therefore seeded trajectories) are identical to a
    /// materialized partial Fisher–Yates over `0..n`.
    pub fn sample<R: Rng>(&mut self, n: usize, k: usize, rng: &mut R, mut emit: impl FnMut(usize)) {
        let k = k.min(n);
        if k == 0 {
            return;
        }
        self.displaced.clear();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            let vi = self.displaced.get(&i).copied().unwrap_or(i);
            let vj = self.displaced.get(&j).copied().unwrap_or(j);
            // Swap the virtual entries at i and j; position i is final after
            // this step (later steps only touch positions > i).
            self.displaced.insert(i, vj);
            self.displaced.insert(j, vi);
            emit(vj);
        }
    }
}

/// Samples `k` distinct node ids uniformly (partial Fisher–Yates).
///
/// Both code paths consume the same RNG draws and return the same ids; the
/// sparse path merely avoids materializing all of `0..n` when `k << n`, so
/// switching paths never changes a seeded training trajectory.
pub fn sample_nodes<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    // When most of the range gets touched anyway, the flat vector is cheaper
    // than hashing.
    if k.saturating_mul(4) >= n {
        sample_nodes_dense(n, k, rng)
    } else {
        sample_nodes_sparse(n, k, rng)
    }
}

/// Full-vector partial Fisher–Yates: O(n) time and space. Same draws as the
/// [`DistinctSampler`] core, cheaper constant factor when `k ~ n`.
fn sample_nodes_dense<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids
}

/// O(k) path: delegates to the shared [`DistinctSampler`] core.
fn sample_nodes_sparse<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let mut out = Vec::with_capacity(k);
    DistinctSampler::default().sample(n, k, rng, |v| out.push(v));
    out
}

/// How per-anchor negatives are drawn for the sampled objectives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegativeSampling {
    /// Each anchor draws `k` *distinct* ids uniformly from all nodes.
    Uniform,
    /// Each anchor draws `k` ids (with replacement) proportionally to node
    /// degree — the word2vec-style unigram scheme GraphMAE-family methods
    /// use; high-degree nodes appear as negatives more often. Falls back to
    /// uniform-with-replacement on an edgeless graph.
    Degree,
}

/// Degree-proportional node sampler: one cumulative-sum table, then each
/// draw is a single RNG call plus a binary search — rejection-free O(log n).
pub struct DegreeSampler {
    cum: Vec<u64>,
    total: u64,
    n: usize,
}

impl DegreeSampler {
    /// Builds the cumulative-degree table for `g`.
    pub fn new(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0u64;
        for v in 0..n {
            acc += g.degree(v) as u64;
            cum.push(acc);
        }
        Self { cum, total: acc, n }
    }

    /// Draws one node id with probability proportional to its degree.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        if self.total == 0 {
            return rng.gen_range(0..self.n.max(1));
        }
        let t = rng.gen_range(0..self.total);
        self.cum.partition_point(|&c| c <= t)
    }
}

/// Builds the per-anchor negative table for the sampled objectives: `k` ids
/// per anchor, row-major (`n * k` entries; anchor `i` owns
/// `ids[i*k .. (i+1)*k]`).
///
/// Draws come only from `rng` in anchor order, so a table built from a
/// per-epoch RNG stream is reproducible on resume regardless of thread
/// count. Entries are *not* filtered here — an id equal to its anchor (or,
/// for adjacency reconstruction, a true neighbor) is skipped and counted as
/// a collision inside the loss kernels, keeping this builder O(n·k) with no
/// graph-dependent retry loops.
pub fn negative_table<R: Rng>(
    g: &Graph,
    k: usize,
    dist: NegativeSampling,
    rng: &mut R,
) -> Vec<u32> {
    let n = g.num_nodes();
    let mut ids = Vec::with_capacity(n * k);
    match dist {
        NegativeSampling::Uniform => {
            let mut sampler = DistinctSampler::default();
            for _ in 0..n {
                sampler.sample(n, k, rng, |v| ids.push(v as u32));
                // A graph smaller than k+1 nodes cannot supply k distinct
                // negatives; pad with the anchor-collision sentinel 0 so the
                // table stays rectangular (the kernels skip collisions).
                while ids.len() % k.max(1) != 0 {
                    ids.push(0);
                }
            }
        }
        NegativeSampling::Degree => {
            let sampler = DegreeSampler::new(g);
            for _ in 0..n * k {
                ids.push(sampler.sample(rng) as u32);
            }
        }
    }
    ids
}

/// Collects the distinct nodes touched by `walks` random walks of length
/// `len` from random start nodes, capped at `max_nodes`.
pub fn random_walk_nodes<R: Rng>(
    g: &Graph,
    walks: usize,
    len: usize,
    max_nodes: usize,
    rng: &mut R,
) -> Vec<usize> {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut out = vec![];
    'outer: for _ in 0..walks {
        let mut cur = rng.gen_range(0..n);
        for _ in 0..=len {
            if !seen[cur] {
                seen[cur] = true;
                out.push(cur);
                if out.len() >= max_nodes {
                    break 'outer;
                }
            }
            let nbrs = g.neighbors(cur);
            if nbrs.is_empty() {
                break;
            }
            cur = nbrs[rng.gen_range(0..nbrs.len())] as usize;
        }
    }
    out
}

/// Samples `count` distinct non-edges `(u, v)` with `u < v`, uniformly over
/// *all* non-edges of `g`, rejection-free.
///
/// The non-edge space is rank-indexed: row `u` owns the non-neighbors
/// `v > u`, so a cumulative table maps a flat index to a pair in O(log n)
/// (binary search for the row, then a binary search over the sorted CSR row
/// for the v-offset). Distinct flat indices come from the shared
/// [`DistinctSampler`] core. The old implementation retried random pairs
/// until enough misses accumulated, which both biased small dense graphs
/// (the guard could give up early) and could never return the *whole*
/// complement; this one returns exactly `min(count, total_non_edges)` pairs.
pub fn sample_non_edges<R: Rng>(g: &Graph, count: usize, rng: &mut R) -> Vec<(usize, usize)> {
    let n = g.num_nodes();
    // cum[u] = number of non-edges (u', v) with u' <= u, v > u'.
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0u64;
    for u in 0..n {
        let nbrs = g.neighbors(u);
        let later_neighbors = nbrs.len() - nbrs.partition_point(|&w| (w as usize) <= u);
        acc += (n - u - 1) as u64 - later_neighbors as u64;
        cum.push(acc);
    }
    let total = acc as usize;
    let count = count.min(total);
    let mut out = Vec::with_capacity(count);
    DistinctSampler::default().sample(total, count, rng, |t| {
        let t = t as u64;
        let u = cum.partition_point(|&c| c <= t);
        let offset = t - if u == 0 { 0 } else { cum[u - 1] };
        out.push((u, nth_non_neighbor_after(g, u, offset as usize)));
    });
    out
}

/// The `j`-th (0-indexed) node `v > u` with `v ∉ N(u)`, found by binary
/// search: the count of such nodes `<= w` is `(w - u) - |{x ∈ N(u): u < x
/// <= w}|`, monotone in `w`.
fn nth_non_neighbor_after(g: &Graph, u: usize, j: usize) -> usize {
    let nbrs = g.neighbors(u);
    let first_later = nbrs.partition_point(|&w| (w as usize) <= u);
    let (mut lo, mut hi) = (u + 1, g.num_nodes());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let later_le_mid =
            nbrs[first_later..].partition_point(|&w| (w as usize) <= mid);
        let non_nbrs_le_mid = (mid - u) - later_le_mid;
        if non_nbrs_le_mid >= j + 1 {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// A sampled subgraph batch: the induced dataset plus the original node ids.
#[derive(Clone, Debug)]
pub struct SubgraphBatch {
    /// nodes.
    pub nodes: Vec<usize>,
    /// data.
    pub data: Dataset,
}

/// Uniform induced-subgraph batch of (at most) `size` nodes.
pub fn uniform_subgraph<R: Rng>(ds: &Dataset, size: usize, rng: &mut R) -> SubgraphBatch {
    let nodes = sample_nodes(ds.num_nodes(), size, rng);
    SubgraphBatch { data: ds.induced(&nodes), nodes }
}

/// Random-walk induced-subgraph batch of (at most) `size` nodes — preserves
/// more edges than uniform sampling on sparse graphs.
pub fn walk_subgraph<R: Rng>(ds: &Dataset, size: usize, rng: &mut R) -> SubgraphBatch {
    let walks = (size / 8).max(1);
    let mut nodes = random_walk_nodes(&ds.graph, walks, 16, size, rng);
    if nodes.len() < size.min(ds.num_nodes()) {
        // top up with uniform nodes
        let mut in_set = vec![false; ds.num_nodes()];
        for &v in &nodes {
            in_set[v] = true;
        }
        for v in sample_nodes(ds.num_nodes(), ds.num_nodes(), rng) {
            if nodes.len() >= size {
                break;
            }
            if !in_set[v] {
                in_set[v] = true;
                nodes.push(v);
            }
        }
    }
    SubgraphBatch { data: ds.induced(&nodes), nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset(n: usize) -> Dataset {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Dataset {
            name: "toy".into(),
            graph: Graph::from_edges(n, &edges),
            features: Matrix::from_fn(n, 2, |r, c| (r * 2 + c) as f32),
            labels: (0..n).map(|v| v % 2).collect(),
            num_classes: 2,
        }
    }

    #[test]
    fn sample_nodes_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_nodes(20, 8, &mut rng);
        assert_eq!(s.len(), 8);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "duplicates in sample");
        assert_eq!(sample_nodes(5, 50, &mut rng).len(), 5);
    }

    #[test]
    fn sample_nodes_sparse_matches_dense_bitwise() {
        // Same seed -> same draws -> same ids, for both k<<n (sparse path)
        // and the dense cutoff, across several seeds.
        for seed in 0..20u64 {
            for (n, k) in [(1000, 7), (1000, 100), (64, 60), (5, 5), (1, 1)] {
                let mut r1 = StdRng::seed_from_u64(seed);
                let mut r2 = StdRng::seed_from_u64(seed);
                let dense = sample_nodes_dense(n, k, &mut r1);
                let sparse = sample_nodes_sparse(n, k, &mut r2);
                assert_eq!(dense, sparse, "seed {seed} n {n} k {k}");
            }
        }
    }

    #[test]
    fn sample_nodes_small_k_stays_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let s = sample_nodes(10_000, 5, &mut rng);
            assert_eq!(s.len(), 5);
            assert!(s.iter().all(|&v| v < 10_000));
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "duplicates in {s:?}");
        }
        assert!(sample_nodes(100, 0, &mut rng).is_empty());
        assert!(sample_nodes(0, 10, &mut rng).is_empty());
    }

    #[test]
    fn distinct_sampler_is_uniform_within_bounds() {
        // Distribution-bounds property for the shared core: over many
        // 1-of-n draws every id lands near 1/n.
        let n = 16;
        let trials = 40_000;
        let mut counts = vec![0usize; n];
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = DistinctSampler::default();
        for _ in 0..trials {
            s.sample(n, 1, &mut rng, |v| counts[v] += 1);
        }
        let expect = trials as f64 / n as f64;
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > 0.8 * expect && (c as f64) < 1.2 * expect,
                "id {v} drawn {c} times, expected ~{expect}"
            );
        }
    }

    #[test]
    fn negative_table_uniform_rows_are_distinct_and_deterministic() {
        let ds = toy_dataset(50);
        let (n, k) = (50usize, 6usize);
        let t1 = negative_table(&ds.graph, k, NegativeSampling::Uniform, &mut StdRng::seed_from_u64(3));
        let t2 = negative_table(&ds.graph, k, NegativeSampling::Uniform, &mut StdRng::seed_from_u64(3));
        assert_eq!(t1, t2, "same seed must give the same table");
        assert_eq!(t1.len(), n * k);
        for a in 0..n {
            let row = &t1[a * k..(a + 1) * k];
            assert!(row.iter().all(|&v| (v as usize) < n));
            let mut sorted = row.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "anchor {a} negatives must be distinct: {row:?}");
        }
    }

    #[test]
    fn degree_sampler_tracks_degree_distribution() {
        // Star graph + one isolated node: the hub holds half the total
        // degree mass, the isolated node none.
        let n = 10usize;
        let edges: Vec<(usize, usize)> = (1..n - 1).map(|v| (0, v)).collect();
        let g = Graph::from_edges(n, &edges);
        let s = DegreeSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 40_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            counts[s.sample(&mut rng)] += 1;
        }
        let hub = counts[0] as f64 / trials as f64;
        assert!((hub - 0.5).abs() < 0.05, "hub frequency {hub} should be ~0.5");
        assert_eq!(counts[n - 1], 0, "zero-degree node must never be drawn");
        let leaf_expect = 0.5 / (n - 2) as f64;
        for (v, &c) in counts.iter().enumerate().take(n - 1).skip(1) {
            let f = c as f64 / trials as f64;
            assert!(
                (f - leaf_expect).abs() < 0.6 * leaf_expect,
                "leaf {v} frequency {f} vs expected {leaf_expect}"
            );
        }
        // Edgeless graph: falls back to uniform instead of spinning.
        let empty = Graph::from_edges(4, &[]);
        let s = DegreeSampler::new(&empty);
        let v = s.sample(&mut rng);
        assert!(v < 4);
    }

    #[test]
    fn random_walk_nodes_respects_max_nodes_cap() {
        let ds = toy_dataset(200);
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            for cap in [1usize, 7, 50] {
                let nodes = random_walk_nodes(&ds.graph, 40, 16, cap, &mut rng);
                assert!(nodes.len() <= cap, "cap {cap} violated: {}", nodes.len());
                let mut sorted = nodes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), nodes.len(), "walk nodes must be distinct");
            }
        }
        // Plenty of walks on a small graph: the cap binds exactly.
        let mut rng = StdRng::seed_from_u64(11);
        let nodes = random_walk_nodes(&toy_dataset(30).graph, 100, 16, 10, &mut rng);
        assert_eq!(nodes.len(), 10);
    }

    #[test]
    fn sample_non_edges_is_exact_on_dense_graphs() {
        // A near-complete graph used to starve the old rejection loop; the
        // rank-indexed sampler enumerates the complement exactly.
        let n = 8usize;
        let mut edges = vec![];
        for u in 0..n {
            for v in u + 1..n {
                // leave out exactly three pairs
                if !matches!((u, v), (0, 7) | (2, 5) | (3, 4)) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n, &edges);
        let mut rng = StdRng::seed_from_u64(5);
        let mut got = sample_non_edges(&g, 100, &mut rng);
        got.sort_unstable();
        assert_eq!(got, vec![(0, 7), (2, 5), (3, 4)]);
    }

    #[test]
    fn sample_non_edges_valid_distinct_and_unbiased() {
        let ds = toy_dataset(12);
        let g = &ds.graph;
        let total_non_edges = 12 * 11 / 2 - g.num_edges();
        let mut rng = StdRng::seed_from_u64(6);
        let s = sample_non_edges(g, 20, &mut rng);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), s.len(), "pairs must be distinct");
        for &(u, v) in &s {
            assert!(u < v && v < 12 && !g.has_edge(u, v), "bad pair ({u},{v})");
        }
        // Distribution bounds: each non-edge shows up near-uniformly across
        // many single draws.
        let mut counts = std::collections::HashMap::new();
        let trials = 20_000;
        for _ in 0..trials {
            let p = sample_non_edges(g, 1, &mut rng)[0];
            *counts.entry(p).or_insert(0usize) += 1;
        }
        let expect = trials as f64 / total_non_edges as f64;
        assert_eq!(counts.len(), total_non_edges, "every non-edge must be reachable");
        for (p, c) in counts {
            assert!(
                (c as f64) > 0.6 * expect && (c as f64) < 1.4 * expect,
                "pair {p:?} drawn {c} times, expected ~{expect}"
            );
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        #[test]
        fn negative_table_structurally_valid(
            n in 1usize..60,
            k in 0usize..12,
            seed in proptest::prelude::any::<u64>(),
            degree_dist in proptest::prelude::any::<bool>(),
        ) {
            let edges: Vec<(usize, usize)> =
                (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
            let g = Graph::from_edges(n, &edges);
            let dist = if degree_dist { NegativeSampling::Degree } else { NegativeSampling::Uniform };
            let t = negative_table(&g, k, dist, &mut StdRng::seed_from_u64(seed));
            proptest::prop_assert_eq!(t.len(), n * k);
            proptest::prop_assert!(t.iter().all(|&v| (v as usize) < n));
        }

        #[test]
        fn sample_non_edges_always_valid_and_exact(
            n in 2usize..24,
            count in 0usize..40,
            seed in proptest::prelude::any::<u64>(),
            extra in proptest::collection::vec((0usize..24, 0usize..24), 0..40),
        ) {
            let mut edges: Vec<(usize, usize)> =
                (0..n - 1).map(|i| (i, i + 1)).collect();
            edges.extend(extra.into_iter().filter(|&(u, v)| u < n && v < n && u != v));
            let g = Graph::from_edges(n, &edges);
            let total = n * (n - 1) / 2 - g.num_edges();
            let s = sample_non_edges(&g, count, &mut StdRng::seed_from_u64(seed));
            proptest::prop_assert_eq!(s.len(), count.min(total));
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            proptest::prop_assert_eq!(sorted.len(), s.len());
            for (u, v) in s {
                proptest::prop_assert!(u < v && v < n && !g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn uniform_subgraph_is_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = toy_dataset(30);
        let b = uniform_subgraph(&ds, 10, &mut rng);
        assert_eq!(b.nodes.len(), 10);
        assert_eq!(b.data.num_nodes(), 10);
        for (i, &v) in b.nodes.iter().enumerate() {
            assert_eq!(b.data.labels[i], ds.labels[v]);
            assert_eq!(b.data.features.row(i), ds.features.row(v));
        }
    }

    #[test]
    fn walk_subgraph_keeps_more_edges_than_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = toy_dataset(400);
        let mut walk_edges = 0usize;
        let mut unif_edges = 0usize;
        for _ in 0..10 {
            walk_edges += walk_subgraph(&ds, 50, &mut rng).data.graph.num_edges();
            unif_edges += uniform_subgraph(&ds, 50, &mut rng).data.graph.num_edges();
        }
        assert!(
            walk_edges > unif_edges,
            "walk {walk_edges} should beat uniform {unif_edges} on a path graph"
        );
    }

    #[test]
    fn walk_subgraph_tops_up_to_requested_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let ds = toy_dataset(100);
        let b = walk_subgraph(&ds, 60, &mut rng);
        assert_eq!(b.nodes.len(), 60);
    }
}
