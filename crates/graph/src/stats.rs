//! Dataset statistics (the paper's Tables 2 and 3).

use std::fmt;

use crate::datasets::{Dataset, GraphCollection};

/// Statistics of a node-level dataset (Table 2 row).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetStats {
    /// nodes.
    pub nodes: usize,
    /// Directed adjacency entries (papers report 2× the undirected count).
    pub edges: usize,
    /// features.
    pub features: usize,
    /// classes.
    pub classes: usize,
}

impl DatasetStats {
    /// Computes the statistics of a dataset.
    pub fn of(ds: &Dataset) -> Self {
        Self {
            nodes: ds.num_nodes(),
            edges: ds.graph.num_directed_edges(),
            features: ds.feature_dim(),
            classes: ds.num_classes,
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes | {} edges | {} features | {} classes",
            self.nodes, self.edges, self.features, self.classes
        )
    }
}

/// Statistics of a graph-level collection (Table 3 row).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CollectionStats {
    /// graphs.
    pub graphs: usize,
    /// classes.
    pub classes: usize,
    /// avg nodes.
    pub avg_nodes: f32,
}

impl CollectionStats {
    /// Computes the statistics of a collection.
    pub fn of(c: &GraphCollection) -> Self {
        Self { graphs: c.len(), classes: c.num_classes, avg_nodes: c.avg_nodes() }
    }
}

impl fmt::Display for CollectionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} graphs | {} classes | {:.1} avg nodes", self.graphs, self.classes, self.avg_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::citation::{generate, CitationSpec};

    #[test]
    fn stats_reflect_generated_dataset() {
        let spec = CitationSpec::cora().scaled(0.05);
        let ds = generate(&spec, 1);
        let s = DatasetStats::of(&ds);
        assert_eq!(s.nodes, spec.nodes);
        assert_eq!(s.features, 1433);
        assert_eq!(s.classes, 7);
        assert!(s.to_string().contains("nodes"));
    }
}
