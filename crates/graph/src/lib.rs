// Indexed loops over parallel arrays are idiomatic in this numeric code.
#![allow(clippy::needless_range_loop)]

//! # gcmae-graph
//!
//! Graph substrate for the GCMAE reproduction: immutable CSR graphs,
//! synthetic dataset generators matched to the paper's Tables 2–3,
//! augmentations (feature masking, node/edge dropping, shuffling, PPR
//! diffusion), subgraph sampling, and node/edge splits.
//!
//! ## Example
//!
//! ```
//! use gcmae_graph::generators::citation::{generate, CitationSpec};
//!
//! let ds = generate(&CitationSpec::cora().scaled(0.05), 42);
//! assert_eq!(ds.num_classes, 7);
//! assert!(ds.graph.num_edges() > 0);
//! ```

pub mod augment;
pub mod csr;
pub mod datasets;
pub mod generators;
pub mod sampling;
pub mod splits;
pub mod stats;

pub use csr::{Graph, GraphError};
pub use datasets::{BatchedGraphs, Dataset, GraphCollection};
pub use splits::{LinkSplit, NodeSplit};
