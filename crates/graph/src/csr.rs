//! Immutable undirected graph stored as a symmetric CSR adjacency.

use std::sync::Arc;

use gcmae_tensor::{CsrMatrix, SharedCsr};

/// Why a proposed graph was rejected by the validated constructors
/// ([`Graph::try_from_edges`], [`Graph::try_from_adjacency`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a node `>= num_nodes`.
    EndpointOutOfRange {
        /// Index of the offending edge in the input list.
        edge: usize,
        /// The out-of-range endpoint.
        node: usize,
        /// Declared node count.
        num_nodes: usize,
    },
    /// The adjacency matrix is not square.
    NotSquare {
        /// rows.
        rows: usize,
        /// cols.
        cols: usize,
    },
    /// The adjacency has a diagonal entry.
    SelfLoop {
        /// The node with the self loop.
        node: usize,
    },
    /// A CSR row's column indices are not strictly increasing.
    UnsortedRow {
        /// The unsorted row.
        row: usize,
    },
    /// A CSR row lists the same neighbor twice.
    DuplicateNeighbor {
        /// The row with the duplicate.
        row: usize,
        /// The repeated neighbor.
        neighbor: usize,
    },
    /// Directed entry `(from, to)` has no reverse `(to, from)`.
    MissingReverse {
        /// Source of the one-directional entry.
        from: usize,
        /// Target of the one-directional entry.
        to: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Self::EndpointOutOfRange { edge, node, num_nodes } => write!(
                f,
                "edge {edge} references node {node}, but the graph has only {num_nodes} nodes"
            ),
            Self::NotSquare { rows, cols } => {
                write!(f, "adjacency must be square, got {rows}x{cols}")
            }
            Self::SelfLoop { node } => write!(f, "self loop at node {node}"),
            Self::UnsortedRow { row } => {
                write!(f, "adjacency row {row} has unsorted column indices")
            }
            Self::DuplicateNeighbor { row, neighbor } => {
                write!(f, "adjacency row {row} lists neighbor {neighbor} more than once")
            }
            Self::MissingReverse { from, to } => {
                write!(f, "edge ({from},{to}) missing its reverse ({to},{from})")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected graph: a symmetric, binary CSR adjacency without self loops.
///
/// All augmentations and samplers produce new [`Graph`] values; the structure
/// itself is never mutated after construction.
#[derive(Clone, Debug, PartialEq)]
pub struct Graph {
    adj: SharedCsr,
}

impl Graph {
    /// Builds a graph from a symmetric adjacency.
    ///
    /// # Panics
    /// Panics if the matrix fails [`Graph::try_from_adjacency`] validation.
    pub fn from_adjacency(adj: CsrMatrix) -> Self {
        Self::try_from_adjacency(adj).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validated form of [`Graph::from_adjacency`]: checks that the matrix is
    /// square, every row's column indices are sorted and duplicate-free, no
    /// diagonal entry exists, and every directed entry has its reverse.
    pub fn try_from_adjacency(adj: CsrMatrix) -> Result<Self, GraphError> {
        if adj.rows() != adj.cols() {
            return Err(GraphError::NotSquare { rows: adj.rows(), cols: adj.cols() });
        }
        for r in 0..adj.rows() {
            let (cols, _) = adj.row(r);
            for (i, &c) in cols.iter().enumerate() {
                let c = c as usize;
                if c == r {
                    return Err(GraphError::SelfLoop { node: r });
                }
                if i > 0 {
                    let prev = cols[i - 1] as usize;
                    if prev == c {
                        return Err(GraphError::DuplicateNeighbor { row: r, neighbor: c });
                    }
                    if prev > c {
                        return Err(GraphError::UnsortedRow { row: r });
                    }
                }
                if !adj.contains(c, r) {
                    return Err(GraphError::MissingReverse { from: r, to: c });
                }
            }
        }
        Ok(Self { adj: Arc::new(adj) })
    }

    /// Builds a graph from undirected edges `(u, v)`; duplicates and self
    /// loops are dropped.
    ///
    /// # Panics
    /// Panics if an edge references a node `>= n`; use
    /// [`Graph::try_from_edges`] to handle untrusted input.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        Self::try_from_edges(n, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validated form of [`Graph::from_edges`]: returns a descriptive error
    /// for out-of-range endpoints instead of panicking deep inside the CSR
    /// builder. Duplicate edges and self loops are dropped, as in
    /// [`Graph::from_edges`].
    pub fn try_from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let mut triplets = Vec::with_capacity(edges.len() * 2);
        for (i, &(u, v)) in edges.iter().enumerate() {
            for node in [u, v] {
                if node >= n {
                    return Err(GraphError::EndpointOutOfRange { edge: i, node, num_nodes: n });
                }
            }
            if u == v {
                continue;
            }
            triplets.push((u, v, 1.0));
            triplets.push((v, u, 1.0));
        }
        let mut adj = CsrMatrix::from_triplets(n, n, &triplets);
        // from_triplets sums duplicates; re-binarize.
        let values = vec![1.0; adj.nnz()];
        adj = CsrMatrix::new(
            n,
            n,
            adj.indptr().to_vec(),
            adj.indices().to_vec(),
            values,
        );
        Ok(Self { adj: Arc::new(adj) })
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.rows()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.nnz() / 2
    }

    /// Number of directed adjacency entries (2 × edges), as papers usually
    /// report for citation graphs.
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.adj.nnz()
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj.row_nnz(v)
    }

    /// Neighbors of node `v` (sorted).
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        self.adj.row(v).0
    }

    /// `true` if `(u, v)` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj.contains(u, v)
    }

    /// Iterator over directed edge pairs `(u, v)` (each undirected edge
    /// appears twice).
    pub fn directed_edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj.iter().map(|(r, c, _)| (r, c))
    }

    /// Iterator over undirected edges with `u < v`.
    pub fn undirected_edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.directed_edges().filter(|&(u, v)| u < v)
    }

    /// The raw binary adjacency (shared).
    #[inline]
    pub fn adjacency(&self) -> SharedCsr {
        self.adj.clone()
    }

    /// Adjacency with self loops added (values 1), e.g. for GAT attention.
    pub fn adjacency_with_self_loops(&self) -> SharedCsr {
        let n = self.num_nodes();
        let mut triplets: Vec<(usize, usize, f32)> =
            self.adj.iter().map(|(r, c, _)| (r, c, 1.0)).collect();
        for i in 0..n {
            triplets.push((i, i, 1.0));
        }
        Arc::new(CsrMatrix::from_triplets(n, n, &triplets))
    }

    /// Symmetric GCN normalization `D̃^{-1/2}(A+I)D̃^{-1/2}`.
    ///
    /// The result is symmetric, so the same handle serves forward and
    /// backward sparse products.
    pub fn gcn_norm(&self) -> SharedCsr {
        let n = self.num_nodes();
        let mut deg = vec![1.0f32; n]; // self loop
        for v in 0..n {
            deg[v] += self.degree(v) as f32;
        }
        let inv_sqrt: Vec<f32> = deg.iter().map(|&d| 1.0 / d.sqrt()).collect();
        let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(self.adj.nnz() + n);
        for (r, c, _) in self.adj.iter() {
            triplets.push((r, c, inv_sqrt[r] * inv_sqrt[c]));
        }
        for i in 0..n {
            triplets.push((i, i, inv_sqrt[i] * inv_sqrt[i]));
        }
        Arc::new(CsrMatrix::from_triplets(n, n, &triplets))
    }

    /// Row-stochastic mean normalization `D̃^{-1}(A+I)` and its transpose
    /// (needed for the backward sparse product).
    pub fn mean_norm(&self) -> (SharedCsr, SharedCsr) {
        let n = self.num_nodes();
        let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(self.adj.nnz() + n);
        for v in 0..n {
            let inv = 1.0 / (self.degree(v) + 1) as f32;
            for &u in self.neighbors(v) {
                triplets.push((v, u as usize, inv));
            }
            triplets.push((v, v, inv));
        }
        let fwd = CsrMatrix::from_triplets(n, n, &triplets);
        let bwd = fwd.transposed();
        (Arc::new(fwd), Arc::new(bwd))
    }

    /// Nodes at exactly `k` hops from `start` (BFS ring), used by the
    /// Figure 4 long-range-similarity experiment.
    pub fn k_hop_ring(&self, start: usize, k: usize) -> Vec<usize> {
        let n = self.num_nodes();
        let mut dist = vec![usize::MAX; n];
        dist[start] = 0;
        let mut frontier = vec![start];
        for d in 1..=k {
            let mut next = vec![];
            for &u in &frontier {
                for &v in self.neighbors(u) {
                    let v = v as usize;
                    if dist[v] == usize::MAX {
                        dist[v] = d;
                        next.push(v);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        (0..n).filter(|&v| dist[v] == k).collect()
    }

    /// Induced subgraph over `nodes`; returns the subgraph (nodes renumbered
    /// in the order given). `nodes` must not contain duplicates.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> Graph {
        let n = self.num_nodes();
        let mut position = vec![usize::MAX; n];
        for (i, &v) in nodes.iter().enumerate() {
            assert!(position[v] == usize::MAX, "duplicate node {v}");
            position[v] = i;
        }
        let mut edges = vec![];
        for (i, &v) in nodes.iter().enumerate() {
            for &u in self.neighbors(v) {
                let p = position[u as usize];
                if p != usize::MAX && p > i {
                    edges.push((i, p));
                }
            }
        }
        Graph::from_edges(nodes.len(), &edges)
    }

    /// Graph with the listed nodes removed (used by the node-dropping
    /// augmentation); returns the new graph over the *same* node count with
    /// dropped nodes isolated, preserving row alignment with features.
    pub fn isolate_nodes(&self, dropped: &[bool]) -> Graph {
        assert_eq!(dropped.len(), self.num_nodes());
        let edges: Vec<(usize, usize)> = self
            .undirected_edges()
            .filter(|&(u, v)| !dropped[u] && !dropped[v])
            .collect();
        Graph::from_edges(self.num_nodes(), &edges)
    }

    /// Returns a new graph with the given undirected edges added, plus the
    /// sorted list of nodes whose adjacency rows changed.
    ///
    /// This is the incremental path used by the serving subsystem: untouched
    /// CSR row slices are copied wholesale and only the rows of affected
    /// endpoints are re-merged, instead of rebuilding from a full triplet
    /// list. Self loops, already-present edges, and duplicates within the
    /// batch are dropped — the same policy as [`Graph::try_from_edges`] — and
    /// the resulting CSR goes through [`CsrMatrix::new`] validation.
    pub fn add_edges(&self, edges: &[(usize, usize)]) -> Result<(Graph, Vec<usize>), GraphError> {
        let n = self.num_nodes();
        // New neighbors per affected row, deduplicated against the existing
        // adjacency and within the batch.
        let mut adds: std::collections::BTreeMap<usize, Vec<u32>> = std::collections::BTreeMap::new();
        for (i, &(u, v)) in edges.iter().enumerate() {
            for node in [u, v] {
                if node >= n {
                    return Err(GraphError::EndpointOutOfRange { edge: i, node, num_nodes: n });
                }
            }
            if u == v || self.has_edge(u, v) {
                continue;
            }
            // Both directions are always inserted together, so checking one
            // direction catches batch duplicates in either orientation.
            if adds.get(&u).is_some_and(|l| l.contains(&(v as u32))) {
                continue;
            }
            adds.entry(u).or_default().push(v as u32);
            adds.entry(v).or_default().push(u as u32);
        }
        if adds.is_empty() {
            return Ok((self.clone(), Vec::new()));
        }

        let old_indptr = self.adj.indptr();
        let old_indices = self.adj.indices();
        let extra: usize = adds.values().map(Vec::len).sum();
        let mut indices: Vec<u32> = Vec::with_capacity(old_indices.len() + extra);
        let mut copied = 0usize;
        for (&r, new_cols) in adds.iter_mut() {
            let (s, e) = (old_indptr[r], old_indptr[r + 1]);
            indices.extend_from_slice(&old_indices[copied..s]);
            new_cols.sort_unstable();
            // Merge the sorted existing row with the sorted additions; no
            // equal pair is possible (existing edges were filtered above).
            let (mut a, mut b) = (s, 0);
            while a < e && b < new_cols.len() {
                if old_indices[a] < new_cols[b] {
                    indices.push(old_indices[a]);
                    a += 1;
                } else {
                    indices.push(new_cols[b]);
                    b += 1;
                }
            }
            indices.extend_from_slice(&old_indices[a..e]);
            indices.extend_from_slice(&new_cols[b..]);
            copied = e;
        }
        indices.extend_from_slice(&old_indices[copied..]);

        let mut indptr = Vec::with_capacity(n + 1);
        indptr.push(0);
        let mut shift = 0usize;
        for r in 0..n {
            if let Some(cols) = adds.get(&r) {
                shift += cols.len();
            }
            indptr.push(old_indptr[r + 1] + shift);
        }
        let values = vec![1.0f32; indices.len()];
        let adj = CsrMatrix::new(n, n, indptr, indices, values);
        let affected: Vec<usize> = adds.keys().copied().collect();
        Ok((Graph { adj: Arc::new(adj) }, affected))
    }

    /// Returns a new graph with one node appended (id `num_nodes()`),
    /// connected to the listed existing nodes, plus the sorted list of
    /// affected nodes (the new node and its neighbors).
    ///
    /// The new node has the largest id, so every existing row stays sorted
    /// with at most one trailing entry appended; duplicates in `neighbors`
    /// are dropped. The resulting CSR goes through [`CsrMatrix::new`]
    /// validation.
    pub fn add_node(&self, neighbors: &[usize]) -> Result<(Graph, Vec<usize>), GraphError> {
        let n = self.num_nodes();
        for (i, &v) in neighbors.iter().enumerate() {
            if v >= n {
                return Err(GraphError::EndpointOutOfRange { edge: i, node: v, num_nodes: n });
            }
        }
        let mut nbrs: Vec<usize> = neighbors.to_vec();
        nbrs.sort_unstable();
        nbrs.dedup();

        let old_indptr = self.adj.indptr();
        let old_indices = self.adj.indices();
        let mut indices: Vec<u32> = Vec::with_capacity(old_indices.len() + 2 * nbrs.len());
        let mut indptr = Vec::with_capacity(n + 2);
        indptr.push(0);
        let mut next_nbr = 0usize;
        for r in 0..n {
            indices.extend_from_slice(&old_indices[old_indptr[r]..old_indptr[r + 1]]);
            if next_nbr < nbrs.len() && nbrs[next_nbr] == r {
                indices.push(n as u32);
                next_nbr += 1;
            }
            indptr.push(indices.len());
        }
        indices.extend(nbrs.iter().map(|&v| v as u32));
        indptr.push(indices.len());
        let values = vec![1.0f32; indices.len()];
        let adj = CsrMatrix::new(n + 1, n + 1, indptr, indices, values);
        let mut affected = nbrs;
        affected.push(n);
        Ok((Graph { adj: Arc::new(adj) }, affected))
    }

    /// Closed `k`-hop neighborhood of a seed set: every node reachable from a
    /// seed in at most `k` hops, seeds included, sorted ascending. Used to
    /// bound cache invalidation after an incremental update.
    ///
    /// # Panics
    /// Panics if a seed is out of range.
    pub fn k_hop_closed(&self, seeds: &[usize], k: usize) -> Vec<usize> {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut frontier = Vec::with_capacity(seeds.len());
        for &s in seeds {
            assert!(s < n, "seed {s} out of range for {n} nodes");
            if !std::mem::replace(&mut seen[s], true) {
                frontier.push(s);
            }
        }
        for _ in 0..k {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.neighbors(u) {
                    let v = v as usize;
                    if !std::mem::replace(&mut seen[v], true) {
                        next.push(v);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        (0..n).filter(|&v| seen[v]).collect()
    }

    /// Mean node degree.
    pub fn avg_degree(&self) -> f32 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.adj.nnz() as f32 / self.num_nodes() as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn counts_and_degrees() {
        let g = path(4);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_directed_edges(), 6);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn duplicate_and_self_edges_dropped() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn gcn_norm_rows_reflect_degrees() {
        let g = path(3);
        let norm = g.gcn_norm();
        // middle node: degree 2 + self loop = 3; end nodes: 2
        // entry (0,1) = 1/sqrt(2*3)
        let dense = norm.to_dense();
        assert!((dense[(0, 1)] - 1.0 / (6.0f32).sqrt()).abs() < 1e-6);
        assert!((dense[(0, 0)] - 0.5).abs() < 1e-6);
        // symmetry
        assert!((dense[(1, 0)] - dense[(0, 1)]).abs() < 1e-7);
    }

    #[test]
    fn mean_norm_rows_sum_to_one() {
        let g = path(4);
        let (fwd, bwd) = g.mean_norm();
        let dense = fwd.to_dense();
        for r in 0..4 {
            let s: f32 = (0..4).map(|c| dense[(r, c)]).sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
        assert_eq!(bwd.to_dense(), dense.transposed());
    }

    #[test]
    fn k_hop_ring_on_path() {
        let g = path(6);
        assert_eq!(g.k_hop_ring(0, 3), vec![3]);
        assert_eq!(g.k_hop_ring(2, 2), vec![0, 4]);
        assert!(g.k_hop_ring(0, 9).is_empty());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let s = g.induced_subgraph(&[0, 1, 4]);
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_edges(), 2); // (0,1) and (0,4)
        assert!(s.has_edge(0, 1));
        assert!(s.has_edge(0, 2)); // node 4 renumbered to 2
    }

    #[test]
    fn isolate_nodes_removes_incident_edges() {
        let g = path(4);
        let iso = g.isolate_nodes(&[false, true, false, false]);
        assert_eq!(iso.num_nodes(), 4);
        assert_eq!(iso.num_edges(), 1); // only (2,3) survives
        assert_eq!(iso.degree(1), 0);
    }

    #[test]
    fn self_loops_added_once() {
        let g = path(3);
        let sl = g.adjacency_with_self_loops();
        assert_eq!(sl.nnz(), g.num_directed_edges() + 3);
        for i in 0..3 {
            assert!(sl.contains(i, i));
        }
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn from_adjacency_rejects_self_loops() {
        let adj = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        let _ = Graph::from_adjacency(adj);
    }

    #[test]
    fn try_from_edges_reports_out_of_range_endpoint() {
        let err = Graph::try_from_edges(3, &[(0, 1), (1, 7)]).unwrap_err();
        assert_eq!(err, GraphError::EndpointOutOfRange { edge: 1, node: 7, num_nodes: 3 });
        assert!(err.to_string().contains("node 7"));
        // valid input still builds
        let g = Graph::try_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn try_from_adjacency_rejects_each_invalid_shape() {
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 1, 1.0)]);
        assert_eq!(
            Graph::try_from_adjacency(rect).unwrap_err(),
            GraphError::NotSquare { rows: 2, cols: 3 }
        );

        let diag = CsrMatrix::from_triplets(2, 2, &[(1, 1, 1.0)]);
        assert_eq!(
            Graph::try_from_adjacency(diag).unwrap_err(),
            GraphError::SelfLoop { node: 1 }
        );

        let one_way = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert_eq!(
            Graph::try_from_adjacency(one_way).unwrap_err(),
            GraphError::MissingReverse { from: 0, to: 1 }
        );

        // hand-built CSR with an unsorted row
        let unsorted = CsrMatrix::new(3, 3, vec![0, 2, 3, 4], vec![2, 1, 0, 0], vec![1.0; 4]);
        assert_eq!(
            Graph::try_from_adjacency(unsorted).unwrap_err(),
            GraphError::UnsortedRow { row: 0 }
        );

        // hand-built CSR with a duplicate neighbor
        let dup = CsrMatrix::new(2, 2, vec![0, 2, 4], vec![1, 1, 0, 0], vec![1.0; 4]);
        assert_eq!(
            Graph::try_from_adjacency(dup).unwrap_err(),
            GraphError::DuplicateNeighbor { row: 0, neighbor: 1 }
        );
    }

    #[test]
    fn add_edges_matches_full_rebuild() {
        let base_edges = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 4)];
        let g = Graph::from_edges(6, &base_edges);
        let new_edges = [(0, 2), (4, 5), (2, 2), (0, 1), (0, 2), (2, 0), (3, 5)];
        let (inc, affected) = g.add_edges(&new_edges).unwrap();
        // Exactly the same CSR as rebuilding from the combined edge list.
        let mut all: Vec<(usize, usize)> = base_edges.to_vec();
        all.extend_from_slice(&new_edges);
        let rebuilt = Graph::from_edges(6, &all);
        assert_eq!(inc, rebuilt);
        // Affected = endpoints of the edges that actually landed.
        assert_eq!(affected, vec![0, 2, 3, 4, 5]);
        // Original is untouched.
        assert!(!g.has_edge(0, 2));
        assert!(inc.has_edge(0, 2) && inc.has_edge(5, 4));
    }

    #[test]
    fn add_edges_noop_batch_returns_same_graph() {
        let g = path(4);
        let (same, affected) = g.add_edges(&[(0, 1), (2, 2)]).unwrap();
        assert_eq!(same, g);
        assert!(affected.is_empty());
    }

    #[test]
    fn add_edges_rejects_out_of_range() {
        let g = path(3);
        let err = g.add_edges(&[(0, 2), (1, 5)]).unwrap_err();
        assert_eq!(err, GraphError::EndpointOutOfRange { edge: 1, node: 5, num_nodes: 3 });
    }

    #[test]
    fn add_node_appends_and_links() {
        let g = path(3);
        let (bigger, affected) = g.add_node(&[0, 2, 0]).unwrap();
        assert_eq!(bigger.num_nodes(), 4);
        assert_eq!(bigger.num_edges(), g.num_edges() + 2);
        assert!(bigger.has_edge(3, 0) && bigger.has_edge(3, 2));
        assert!(!bigger.has_edge(3, 1));
        assert_eq!(affected, vec![0, 2, 3]);
        // Equivalent to a full rebuild with the new node's edges.
        let rebuilt = Graph::from_edges(4, &[(0, 1), (1, 2), (3, 0), (3, 2)]);
        assert_eq!(bigger, rebuilt);
        // Isolated node: no neighbors.
        let (iso, affected) = g.add_node(&[]).unwrap();
        assert_eq!(iso.num_nodes(), 4);
        assert_eq!(iso.degree(3), 0);
        assert_eq!(affected, vec![3]);
    }

    #[test]
    fn add_node_rejects_out_of_range_neighbor() {
        let g = path(3);
        let err = g.add_node(&[1, 3]).unwrap_err();
        assert_eq!(err, GraphError::EndpointOutOfRange { edge: 1, node: 3, num_nodes: 3 });
    }

    #[test]
    fn k_hop_closed_on_path() {
        let g = path(6);
        assert_eq!(g.k_hop_closed(&[0], 0), vec![0]);
        assert_eq!(g.k_hop_closed(&[2], 1), vec![1, 2, 3]);
        assert_eq!(g.k_hop_closed(&[0, 5], 1), vec![0, 1, 4, 5]);
        assert_eq!(g.k_hop_closed(&[2], 99), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn try_from_adjacency_accepts_valid_symmetric_matrix() {
        let adj = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let g = Graph::try_from_adjacency(adj).unwrap();
        assert_eq!(g.num_edges(), 1);
    }
}
