//! Multi-graph generators for graph classification, matching the paper's
//! Table 3 datasets (IMDB-B, IMDB-M, COLLAB, MUTAG, REDDIT-B, NCI1).
//!
//! Each class is tied to a structural family so that the graph label is a
//! function of topology, as in the TU benchmarks: dense ego-like graphs vs.
//! hub-dominated graphs vs. multi-community graphs vs. tree-like molecules.
//! Node features are clipped degree one-hots, the standard featurization for
//! datasets without node attributes.

use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::datasets::GraphCollection;

/// A structural family for one class of graphs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Family {
    /// Erdős–Rényi on top of a random spanning tree (target mean degree).
    /// Random.
    Random {
        /// Target mean degree.
        mean_degree: f32,
    },
    /// Preferential attachment: each new node links to `m` earlier nodes
    /// weighted by degree (hub-dominated).
    /// Hub.
    Hub {
        /// Links added per new node.
        m: usize,
    },
    /// `k` dense communities with sparse inter-community links.
    /// Communities.
    Communities {
        /// Number of communities.
        k: usize,
    },
    /// Random tree plus a few chords (molecule-like).
    /// Molecule.
    Molecule {
        /// Extra chord edges per node.
        chords: f32,
    },
}

/// Parameters of a graph-classification collection.
#[derive(Clone, Debug)]
pub struct CollectionSpec {
    /// name.
    pub name: &'static str,
    /// num graphs.
    pub num_graphs: usize,
    /// avg nodes.
    pub avg_nodes: usize,
    /// One family per class.
    pub families: Vec<Family>,
    /// Degree one-hot feature bins.
    pub degree_bins: usize,
}

impl CollectionSpec {
    /// Number of classes (one structural family each).
    pub fn classes(&self) -> usize {
        self.families.len()
    }

    /// Scales the number of graphs (and, for very large graphs, node counts)
    /// by `f` for fast benches.
    pub fn scaled(mut self, f: f64) -> Self {
        self.num_graphs = ((self.num_graphs as f64 * f) as usize).max(self.classes() * 10);
        if self.avg_nodes > 100 {
            self.avg_nodes = ((self.avg_nodes as f64 * f.max(0.25)) as usize).max(40);
        }
        self
    }

    /// IMDB-B: 1,000 graphs / 2 classes / 19.8 avg nodes.
    pub fn imdb_b() -> Self {
        Self {
            name: "IMDB-B",
            num_graphs: 1000,
            avg_nodes: 20,
            families: vec![Family::Random { mean_degree: 4.0 }, Family::Hub { m: 3 }],
            degree_bins: 24,
        }
    }

    /// IMDB-M: 1,500 graphs / 3 classes / 13 avg nodes.
    pub fn imdb_m() -> Self {
        Self {
            name: "IMDB-M",
            num_graphs: 1500,
            avg_nodes: 13,
            families: vec![
                Family::Random { mean_degree: 3.0 },
                Family::Hub { m: 2 },
                Family::Communities { k: 2 },
            ],
            degree_bins: 16,
        }
    }

    /// COLLAB: 5,000 graphs / 3 classes / 74.5 avg nodes.
    pub fn collab() -> Self {
        Self {
            name: "COLLAB",
            num_graphs: 5000,
            avg_nodes: 75,
            families: vec![
                Family::Random { mean_degree: 6.0 },
                Family::Hub { m: 4 },
                Family::Communities { k: 3 },
            ],
            degree_bins: 32,
        }
    }

    /// MUTAG: 188 graphs / 2 classes / 17.9 avg nodes.
    pub fn mutag() -> Self {
        Self {
            name: "MUTAG",
            num_graphs: 188,
            avg_nodes: 18,
            families: vec![Family::Molecule { chords: 0.15 }, Family::Molecule { chords: 0.6 }],
            degree_bins: 8,
        }
    }

    /// REDDIT-B: 2,000 graphs / 2 classes / 429.7 avg nodes.
    pub fn reddit_b() -> Self {
        Self {
            name: "REDDIT-B",
            num_graphs: 2000,
            avg_nodes: 430,
            families: vec![Family::Hub { m: 1 }, Family::Communities { k: 2 }],
            degree_bins: 32,
        }
    }

    /// NCI1: 4,110 graphs / 2 classes / 29.8 avg nodes.
    pub fn nci1() -> Self {
        Self {
            name: "NCI1",
            num_graphs: 4110,
            avg_nodes: 30,
            families: vec![Family::Molecule { chords: 0.1 }, Family::Molecule { chords: 0.45 }],
            degree_bins: 8,
        }
    }
}

/// Generates the collection deterministically from `seed`.
pub fn generate(spec: &CollectionSpec, seed: u64) -> GraphCollection {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0_11ec_7104);
    let k = spec.classes();
    let mut graphs = Vec::with_capacity(spec.num_graphs);
    let mut features = Vec::with_capacity(spec.num_graphs);
    let mut labels = Vec::with_capacity(spec.num_graphs);
    for i in 0..spec.num_graphs {
        let class = i % k;
        let lo = (spec.avg_nodes / 2).max(4);
        let hi = (spec.avg_nodes * 3).div_ceil(2).max(lo + 1);
        let n = rng.gen_range(lo..=hi);
        let g = generate_graph(spec.families[class], n, &mut rng);
        features.push(degree_one_hot(&g, spec.degree_bins));
        graphs.push(g);
        labels.push(class);
    }
    let c = GraphCollection {
        name: spec.name.to_string(),
        graphs,
        features,
        labels,
        num_classes: k,
    };
    c.validate();
    c
}

/// Generates a single graph from a structural family.
pub fn generate_graph(family: Family, n: usize, rng: &mut StdRng) -> Graph {
    let n = n.max(3);
    match family {
        Family::Random { mean_degree } => {
            let mut edges = spanning_tree(n, rng);
            let extra = ((mean_degree / 2.0 - 1.0).max(0.0) * n as f32) as usize;
            for _ in 0..extra {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    edges.push((u, v));
                }
            }
            valid_graph(family, n, &edges)
        }
        Family::Hub { m } => {
            // Preferential attachment over a seed triangle.
            let mut edges: Vec<(usize, usize)> = vec![(0, 1), (1, 2), (0, 2)];
            let mut targets: Vec<usize> = vec![0, 1, 1, 2, 2, 0];
            for v in 3..n {
                for _ in 0..m.max(1) {
                    let t = targets[rng.gen_range(0..targets.len())];
                    if t != v {
                        edges.push((v, t));
                        targets.push(t);
                        targets.push(v);
                    }
                }
            }
            valid_graph(family, n, &edges)
        }
        Family::Communities { k } => {
            let k = k.max(2).min(n / 2);
            let mut edges = vec![];
            // dense blocks
            for b in 0..k {
                let (s, e) = (b * n / k, (b + 1) * n / k);
                let block: Vec<usize> = (s..e).collect();
                // spanning path + random intra edges
                for w in block.windows(2) {
                    edges.push((w[0], w[1]));
                }
                let intra = block.len() * 2;
                for _ in 0..intra {
                    let u = block[rng.gen_range(0..block.len())];
                    let v = block[rng.gen_range(0..block.len())];
                    if u != v {
                        edges.push((u, v));
                    }
                }
            }
            // sparse inter-community bridges
            for b in 0..k - 1 {
                let u = rng.gen_range(b * n / k..(b + 1) * n / k);
                let v = rng.gen_range((b + 1) * n / k..(b + 2) * n / k);
                edges.push((u, v));
            }
            valid_graph(family, n, &edges)
        }
        Family::Molecule { chords } => {
            let mut edges = spanning_tree(n, rng);
            let extra = (chords * n as f32).round() as usize;
            for _ in 0..extra {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    edges.push((u, v));
                }
            }
            valid_graph(family, n, &edges)
        }
    }
}

fn spanning_tree(n: usize, rng: &mut StdRng) -> Vec<(usize, usize)> {
    (1..n).map(|v| (v, rng.gen_range(0..v))).collect()
}

/// Builds a validated graph; a generator bug (endpoint out of range) is a
/// programmer error, so it panics with the structural detail instead of the
/// generic constructor message.
fn valid_graph(family: Family, n: usize, edges: &[(usize, usize)]) -> Graph {
    Graph::try_from_edges(n, edges)
        .unwrap_or_else(|e| panic!("{family:?} generator produced an invalid graph: {e}"))
}

/// Clipped degree one-hot features, the standard featurization for TU
/// datasets without node attributes.
pub fn degree_one_hot(g: &Graph, bins: usize) -> Matrix {
    let mut x = Matrix::zeros(g.num_nodes(), bins);
    for v in 0..g.num_nodes() {
        let b = g.degree(v).min(bins - 1);
        x[(v, b)] = 1.0;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let spec = CollectionSpec::mutag();
        let a = generate(&spec, 1);
        let b = generate(&spec, 1);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.graphs[0].num_edges(), b.graphs[0].num_edges());
    }

    #[test]
    fn table3_statistics_match() {
        let specs = [
            (CollectionSpec::imdb_b(), 1000, 2),
            (CollectionSpec::imdb_m(), 1500, 3),
            (CollectionSpec::collab(), 5000, 3),
            (CollectionSpec::mutag(), 188, 2),
            (CollectionSpec::reddit_b(), 2000, 2),
            (CollectionSpec::nci1(), 4110, 2),
        ];
        for (s, graphs, classes) in specs {
            assert_eq!(s.num_graphs, graphs, "{}", s.name);
            assert_eq!(s.classes(), classes, "{}", s.name);
        }
    }

    #[test]
    fn avg_nodes_near_spec() {
        let spec = CollectionSpec::imdb_b().scaled(0.2);
        let c = generate(&spec, 2);
        let avg = c.avg_nodes();
        assert!(
            (avg - spec.avg_nodes as f32).abs() < spec.avg_nodes as f32 * 0.3,
            "avg {avg} vs {}",
            spec.avg_nodes
        );
    }

    #[test]
    fn families_are_structurally_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let hub = generate_graph(Family::Hub { m: 2 }, 40, &mut rng);
        let rnd = generate_graph(Family::Random { mean_degree: 4.0 }, 40, &mut rng);
        let max_deg_hub = (0..40).map(|v| hub.degree(v)).max().unwrap();
        let max_deg_rnd = (0..40).map(|v| rnd.degree(v)).max().unwrap();
        assert!(max_deg_hub > max_deg_rnd, "hub graphs must have heavier hubs");
    }

    #[test]
    fn degree_features_are_one_hot() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generate_graph(Family::Random { mean_degree: 3.0 }, 20, &mut rng);
        let x = degree_one_hot(&g, 8);
        for r in 0..20 {
            let s: f32 = x.row(r).iter().sum();
            assert_eq!(s, 1.0, "row {r} not one-hot");
        }
    }

    #[test]
    fn molecule_chords_add_cycles() {
        let mut rng = StdRng::seed_from_u64(5);
        let sparse = generate_graph(Family::Molecule { chords: 0.0 }, 30, &mut rng);
        let dense = generate_graph(Family::Molecule { chords: 0.9 }, 30, &mut rng);
        assert_eq!(sparse.num_edges(), 29, "tree has n-1 edges");
        assert!(dense.num_edges() > sparse.num_edges());
    }
}
