//! Synthetic dataset generators.
//!
//! Real planetoid/TU downloads are unavailable offline, so every dataset the
//! paper evaluates on is replaced by a generator that matches its published
//! statistics (Tables 2 and 3) and reproduces the properties the paper's
//! analysis relies on: homophilous community structure, power-law-ish
//! degrees, sparse low-discrimination bag-of-words features, and (for the
//! graph-level sets) class-determined topology. See DESIGN.md for the full
//! substitution argument.

pub mod citation;
pub mod collection;
