//! Degree-corrected stochastic-block-model citation-network generator with
//! class-conditional sparse bag-of-words features.
//!
//! Presets match the statistics of the four node-level datasets in the
//! paper's Table 2 (Cora, Citeseer, PubMed, Reddit).

use std::collections::HashSet;

use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::datasets::Dataset;

/// Parameters of a citation-style graph.
#[derive(Clone, Debug)]
pub struct CitationSpec {
    /// name.
    pub name: &'static str,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges (papers report the directed count, 2×).
    pub edges: usize,
    /// Bag-of-words feature dimensionality.
    pub feature_dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Fraction of edges that stay within a class (edge homophily).
    pub homophily: f32,
    /// Mean number of word draws per node.
    pub words_per_node: usize,
    /// Topic vocabulary size per class.
    pub topic_words: usize,
    /// Probability a word draw comes from the node's class topic.
    pub topic_prob: f32,
    /// Fraction of each topic window shared with the neighboring class
    /// (higher overlap → less discriminative features, as in real
    /// bag-of-words corpora where classes share vocabulary).
    pub topic_overlap: f32,
}

impl CitationSpec {
    /// Scales nodes/edges by `f` (for tests and fast benches); feature and
    /// class structure are preserved.
    pub fn scaled(mut self, f: f64) -> Self {
        self.nodes = ((self.nodes as f64 * f) as usize).max(self.classes * 8);
        self.edges = ((self.edges as f64 * f) as usize).max(self.nodes);
        self
    }

    /// Cora: 2,708 nodes / 10,556 directed edges / 1,433 features / 7 classes.
    pub fn cora() -> Self {
        Self {
            name: "Cora",
            nodes: 2708,
            edges: 5278,
            feature_dim: 1433,
            classes: 7,
            homophily: 0.81,
            words_per_node: 18,
            topic_words: 200,
            topic_prob: 0.45,
            topic_overlap: 0.65,
        }
    }

    /// Citeseer: 3,327 nodes / 9,228 directed edges / 3,703 features / 6 classes.
    pub fn citeseer() -> Self {
        Self {
            name: "Citeseer",
            nodes: 3327,
            edges: 4614,
            feature_dim: 3703,
            classes: 6,
            homophily: 0.74,
            words_per_node: 31,
            topic_words: 520,
            topic_prob: 0.55,
            topic_overlap: 0.5,
        }
    }

    /// PubMed: 19,717 nodes / 88,651 directed edges / 500 features / 3 classes.
    pub fn pubmed() -> Self {
        Self {
            name: "PubMed",
            nodes: 19717,
            edges: 44326,
            feature_dim: 500,
            classes: 3,
            homophily: 0.80,
            words_per_node: 50,
            topic_words: 160,
            topic_prob: 0.55,
            topic_overlap: 0.55,
        }
    }

    /// Reddit: 232,965 nodes / 11,606,919 directed edges / 602 features /
    /// 41 classes. Run through [`CitationSpec::scaled`] before generating —
    /// the harness uses `scaled(0.05)` by default (see DESIGN.md).
    pub fn reddit() -> Self {
        Self {
            name: "Reddit",
            nodes: 232_965,
            edges: 5_803_459,
            feature_dim: 602,
            classes: 41,
            homophily: 0.78,
            words_per_node: 60,
            topic_words: 48,
            topic_prob: 0.6,
            topic_overlap: 0.4,
        }
    }

    /// Synthetic web-scale preset: 1,000,000 nodes / 8M undirected edges /
    /// 128 features / 16 classes. The million-node target for the sampled
    /// O(N·k) objectives (see DESIGN.md "Sampled objectives"); generation
    /// takes the sort-dedup edge path, so it stays a few seconds.
    pub fn web_scale() -> Self {
        Self {
            name: "WebScale-1M",
            nodes: 1_000_000,
            edges: 8_000_000,
            feature_dim: 128,
            classes: 16,
            homophily: 0.7,
            words_per_node: 24,
            topic_words: 24,
            topic_prob: 0.6,
            topic_overlap: 0.4,
        }
    }
}

/// Above this many requested edges, [`generate`] switches from the
/// rejection `HashSet` to batched draw + sort-dedup on packed `u64` keys:
/// O(E log E) time and 8 bytes per candidate instead of hashing every draw.
const SORT_DEDUP_EDGES: usize = 1_000_000;

/// Generates a dataset from a spec, deterministically from `seed`.
pub fn generate(spec: &CitationSpec, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_c17a_710f);
    let n = spec.nodes;
    let k = spec.classes;

    // Class assignment: uniform.
    let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    let mut by_class: Vec<Vec<usize>> = vec![vec![]; k];
    for (v, &c) in labels.iter().enumerate() {
        by_class[c].push(v);
    }

    // Degree propensities: Pareto-ish tail, θ = u^{-1/2} clipped.
    let theta: Vec<f32> = (0..n)
        .map(|_| {
            let u: f32 = rng.gen_range(0.01f32..1.0);
            u.powf(-0.5).min(12.0)
        })
        .collect();

    // Per-class prefix sums for weighted node sampling.
    let class_cdf: Vec<Vec<f32>> = by_class
        .iter()
        .map(|nodes| {
            let mut acc = 0.0;
            nodes
                .iter()
                .map(|&v| {
                    acc += theta[v];
                    acc
                })
                .collect()
        })
        .collect();
    let class_weight: Vec<f32> = class_cdf.iter().map(|c| c.last().copied().unwrap_or(0.0)).collect();
    let total_weight: f32 = class_weight.iter().sum();

    let sample_from_class = |c: usize, rng: &mut StdRng| -> usize {
        let cdf = &class_cdf[c];
        let t = rng.gen_range(0.0..*cdf.last().expect("empty class"));
        let idx = cdf.partition_point(|&x| x < t).min(cdf.len() - 1);
        by_class[c][idx]
    };
    let sample_class = |rng: &mut StdRng| -> usize {
        let t = rng.gen_range(0.0..total_weight);
        let mut acc = 0.0;
        for (c, &w) in class_weight.iter().enumerate() {
            acc += w;
            if t < acc {
                return c;
            }
        }
        k - 1
    };

    let draw_pair = |rng: &mut StdRng| -> (usize, usize) {
        if rng.gen::<f32>() < spec.homophily {
            let c = sample_class(rng);
            (sample_from_class(c, rng), sample_from_class(c, rng))
        } else {
            let c1 = sample_class(rng);
            let mut c2 = sample_class(rng);
            let mut guard = 0;
            while c2 == c1 && guard < 16 {
                c2 = sample_class(rng);
                guard += 1;
            }
            (sample_from_class(c1, rng), sample_from_class(c2, rng))
        }
    };

    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(spec.edges);
    if spec.edges >= SORT_DEDUP_EDGES {
        // Million-edge path: draw in bulk, dedup by sorting packed keys.
        // The rejection HashSet below costs a hash probe per draw and tens
        // of bytes per entry; at web scale that dominates generation.
        let mut keys: Vec<u64> = Vec::with_capacity(spec.edges + spec.edges / 8);
        let mut need = spec.edges;
        while need > 0 {
            // Oversample for the duplicate/self-loop loss; the loop refills
            // in the rare case the overshoot wasn't enough.
            for _ in 0..need + need / 8 + 16 {
                let (u, v) = draw_pair(&mut rng);
                if u != v {
                    keys.push(((u.min(v) as u64) << 32) | u.max(v) as u64);
                }
            }
            keys.sort_unstable();
            keys.dedup();
            need = spec.edges.saturating_sub(keys.len());
        }
        // Drop the surplus uniformly at random — plain truncation after the
        // sort would bias the kept edges toward low node ids.
        for i in 0..spec.edges {
            let j = rng.gen_range(i..keys.len());
            keys.swap(i, j);
        }
        keys.truncate(spec.edges);
        edges.extend(keys.iter().map(|&key| ((key >> 32) as usize, (key & 0xffff_ffff) as usize)));
    } else {
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(spec.edges * 2);
        let max_attempts = spec.edges.saturating_mul(50).max(1000);
        let mut attempts = 0usize;
        while edges.len() < spec.edges && attempts < max_attempts {
            attempts += 1;
            let (u, v) = draw_pair(&mut rng);
            if u == v {
                continue;
            }
            let key = (u.min(v) as u32, u.max(v) as u32);
            if seen.insert(key) {
                edges.push((u, v));
            }
        }
    }
    let graph = Graph::try_from_edges(n, &edges)
        .unwrap_or_else(|e| panic!("citation generator produced an invalid graph: {e}"));

    // Topic vocabularies: contiguous windows that overlap between
    // neighboring classes, mirroring how real bag-of-words topics share
    // vocabulary; the overlap keeps raw features only weakly separable.
    let d = spec.feature_dim;
    let topic_span = spec.topic_words.min(d);
    let stride = ((topic_span as f32) * (1.0 - spec.topic_overlap)).max(1.0) as usize;
    let max_start = d.saturating_sub(topic_span);
    let topics: Vec<usize> = (0..k).map(|c| (c * stride).min(max_start)).collect();

    let mut features = Matrix::zeros(n, d);
    for v in 0..n {
        let c = labels[v];
        let w_draws = (spec.words_per_node as f32
            * rng.gen_range(0.5f32..1.5))
        .round()
        .max(1.0) as usize;
        for _ in 0..w_draws {
            let word = if rng.gen::<f32>() < spec.topic_prob {
                topics[c] + rng.gen_range(0..topic_span)
            } else {
                rng.gen_range(0..d)
            };
            features[(v, word)] = 1.0;
        }
    }

    let ds = Dataset {
        name: spec.name.to_string(),
        graph,
        features,
        labels,
        num_classes: k,
    };
    ds.validate();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CitationSpec {
        CitationSpec::cora().scaled(0.1)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small(), 1);
        let b = generate(&small(), 1);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert!(a.features.max_abs_diff(&b.features) == 0.0);
        let c = generate(&small(), 2);
        assert_ne!(a.labels, c.labels);
    }

    #[test]
    fn edge_count_close_to_spec() {
        let spec = small();
        let d = generate(&spec, 3);
        let e = d.graph.num_edges();
        assert!(
            (e as f32 - spec.edges as f32).abs() / (spec.edges as f32) < 0.05,
            "edges {e} vs spec {}",
            spec.edges
        );
    }

    #[test]
    fn homophily_is_respected() {
        let spec = small();
        let d = generate(&spec, 4);
        let intra = d
            .graph
            .undirected_edges()
            .filter(|&(u, v)| d.labels[u] == d.labels[v])
            .count();
        let frac = intra as f32 / d.graph.num_edges() as f32;
        assert!(
            (frac - spec.homophily).abs() < 0.08,
            "intra-class fraction {frac} vs target {}",
            spec.homophily
        );
    }

    #[test]
    fn features_are_sparse_and_class_informative() {
        let spec = small();
        let d = generate(&spec, 5);
        // sparsity
        let nnz = d.features.as_slice().iter().filter(|&&v| v != 0.0).count();
        let per_node = nnz as f32 / d.num_nodes() as f32;
        assert!(per_node > 4.0 && per_node < 3.0 * spec.words_per_node as f32);
        // class centroids should differ more across classes than within
        let k = d.num_classes;
        let dim = d.feature_dim();
        let mut centroids = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for v in 0..d.num_nodes() {
            let c = d.labels[v];
            counts[c] += 1;
            for (acc, &x) in centroids[c].iter_mut().zip(d.features.row(v)) {
                *acc += x;
            }
        }
        for (c, cent) in centroids.iter_mut().enumerate() {
            for x in cent.iter_mut() {
                *x /= counts[c].max(1) as f32;
            }
        }
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        let d01 = dist(&centroids[0], &centroids[1]);
        assert!(d01 > 0.01, "centroids must be separable, got {d01}");
    }

    #[test]
    fn web_scale_preset_reaches_a_million_nodes() {
        let w = CitationSpec::web_scale();
        assert!(w.nodes >= 1_000_000);
        // generate a scaled copy through the sort-dedup path by forcing a
        // smaller threshold is not possible from here; instead check the
        // scaled small copy still round-trips the usual invariants
        let small = w.scaled(0.001);
        let d = generate(&small, 9);
        assert_eq!(d.num_nodes(), small.nodes);
        assert_eq!(d.num_classes, 16);
        assert!(d.graph.num_edges() > 0);
    }

    #[test]
    fn sort_dedup_path_matches_spec_and_stays_deterministic() {
        // Clear the SORT_DEDUP_EDGES threshold with a small node count so
        // the test exercises the bulk path in milliseconds.
        let spec = CitationSpec {
            name: "dense-bulk",
            nodes: 20_000,
            edges: SORT_DEDUP_EDGES,
            feature_dim: 8,
            classes: 4,
            homophily: 0.7,
            words_per_node: 2,
            topic_words: 4,
            topic_prob: 0.5,
            topic_overlap: 0.25,
        };
        let a = generate(&spec, 11);
        assert_eq!(a.graph.num_edges(), spec.edges);
        let b = generate(&spec, 11);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.labels, b.labels);
        // undirected, no self loops, no duplicates: count unique keys
        let mut keys: Vec<u64> = a
            .graph
            .undirected_edges()
            .map(|(u, v)| ((u.min(v) as u64) << 32) | u.max(v) as u64)
            .collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate undirected edges");
        assert!(a
            .graph
            .undirected_edges()
            .all(|(u, v)| u != v), "self loop generated");
    }

    #[test]
    fn presets_match_table2() {
        let c = CitationSpec::cora();
        assert_eq!((c.nodes, c.edges * 2, c.feature_dim, c.classes), (2708, 10556, 1433, 7));
        let s = CitationSpec::citeseer();
        assert_eq!((s.nodes, s.edges * 2, s.feature_dim, s.classes), (3327, 9228, 3703, 6));
        let p = CitationSpec::pubmed();
        assert_eq!((p.nodes, p.feature_dim, p.classes), (19717, 500, 3));
        let r = CitationSpec::reddit();
        assert_eq!((r.nodes, r.feature_dim, r.classes), (232_965, 602, 41));
    }

    #[test]
    fn scaled_keeps_structure() {
        let s = CitationSpec::pubmed().scaled(0.01);
        assert!(s.nodes < 300);
        assert_eq!(s.classes, 3);
        assert_eq!(s.feature_dim, 500);
        let d = generate(&s, 6);
        assert_eq!(d.num_nodes(), s.nodes);
    }
}
