//! Shard processes and the in-process tier harness.
//!
//! A *shard* is just the existing [`Server`] stack pointed at a partition
//! slice: the induced subgraph + gathered features from a per-shard GSRB
//! bundle, an ownership mask so `top_k_owned` answers only what the shard
//! owns, and the same WAL/deadline/dedup machinery as an unsharded server
//! (its WAL replays with the halo bit preserved, so a restarted shard still
//! knows which residents are replicas).
//!
//! [`ShardTier`] wires a full tier inside one process — S shard servers
//! plus a [`Gateway`] on loopback — which is what the integration tests,
//! the scaling bench, and CI use. The `gcmae-gateway` binary drives the
//! same pieces as separate processes for real deployments.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use crate::ann::AnnParams;
use crate::bundle::{load_bundle, BundleError};
use crate::engine::{Engine, EngineError};
use crate::gateway::{Gateway, GatewayError, GatewayOptions};
use crate::partition::{halo_depth_for, Partition, PartitionError, PartitionMode};
use crate::server::{Server, ServerOptions};
use crate::wal::{replay, DedupTable, Wal, WalError};

/// Tier construction failure.
#[derive(Debug)]
pub enum TierError {
    /// The model bundle (full or per-shard) failed to parse.
    Bundle(BundleError),
    /// A shard engine rejected its slice.
    Engine(EngineError),
    /// The partitioner rejected the layout.
    Partition(PartitionError),
    /// A shard (or gateway) WAL failed to open or replay.
    Wal(WalError),
    /// A shard server failed to bind.
    Io(std::io::Error),
    /// The gateway failed to start.
    Gateway(GatewayError),
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::Bundle(e) => write!(f, "bundle: {e}"),
            TierError::Engine(e) => write!(f, "engine: {e}"),
            TierError::Partition(e) => write!(f, "partition: {e}"),
            TierError::Wal(e) => write!(f, "wal: {e}"),
            TierError::Io(e) => write!(f, "io: {e}"),
            TierError::Gateway(e) => write!(f, "gateway: {e}"),
        }
    }
}

impl std::error::Error for TierError {}

impl From<BundleError> for TierError {
    fn from(e: BundleError) -> Self {
        TierError::Bundle(e)
    }
}
impl From<EngineError> for TierError {
    fn from(e: EngineError) -> Self {
        TierError::Engine(e)
    }
}
impl From<PartitionError> for TierError {
    fn from(e: PartitionError) -> Self {
        TierError::Partition(e)
    }
}
impl From<WalError> for TierError {
    fn from(e: WalError) -> Self {
        TierError::Wal(e)
    }
}
impl From<std::io::Error> for TierError {
    fn from(e: std::io::Error) -> Self {
        TierError::Io(e)
    }
}
impl From<GatewayError> for TierError {
    fn from(e: GatewayError) -> Self {
        TierError::Gateway(e)
    }
}

/// In-process tier configuration.
pub struct TierOptions {
    /// How owned sets are chosen.
    pub mode: PartitionMode,
    /// Halo replication depth; `None` derives the provably-sufficient
    /// [`halo_depth_for`] from the bundle's encoder depth.
    pub halo_depth: Option<usize>,
    /// Per-shard scheduler coalescing cap.
    pub max_batch: usize,
    /// Directory for durability: per-shard `shard<i>.wal` plus the
    /// gateway's `gateway.wal`. Existing logs are replayed (shard restart
    /// semantics); `None` runs the tier without WALs.
    pub wal_dir: Option<PathBuf>,
    /// Gateway reader connections per shard.
    pub read_connections: usize,
    /// Gateway shard-facing client identity seed. With `wal_dir` set the
    /// default (constant) seed is correct across relaunches: the restarted
    /// gateway probes each shard for the last repair frame this identity
    /// delivered and resumes its sequences from there. Without a WAL,
    /// override with a per-lifetime value — a reused identity would
    /// collide with the previous lifetime's shard-side sequences.
    pub client_seed: u64,
    /// ANN index parameters installed on every shard engine; `None` keeps
    /// [`AnnParams::default`]. Parity tests raise `ef_search` past the
    /// shard size so `sim_top_k` degenerates to an exhaustive (exact) scan.
    pub ann: Option<AnnParams>,
}

impl Default for TierOptions {
    fn default() -> Self {
        Self {
            mode: PartitionMode::Bfs,
            halo_depth: None,
            max_batch: 32,
            wal_dir: None,
            read_connections: 4,
            client_seed: 0x7469_6572_3a31_2121, // "tier:1!!"
            ann: None,
        }
    }
}

/// A full serving tier in one process: S shard [`Server`]s and one
/// [`Gateway`], all on loopback ephemeral ports.
pub struct ShardTier {
    partition: Partition,
    servers: Vec<Server>,
    gateway: Option<Gateway>,
    shard_addrs: Vec<String>,
}

impl ShardTier {
    /// Partitions the bundle's graph into `shards` slices, starts one
    /// server per slice (ownership mask installed before WAL replay, so
    /// replayed halo mutations keep the mask truthful), and fronts them
    /// with a gateway.
    pub fn launch(bundle: &[u8], shards: usize, opts: TierOptions) -> Result<ShardTier, TierError> {
        let (model, graph, features) = load_bundle(bundle)?;
        let halo_depth = opts
            .halo_depth
            .unwrap_or_else(|| halo_depth_for(model.encoder_layers()));
        let partition = Partition::build(&graph, shards, opts.mode, halo_depth)?;

        let mut servers = Vec::with_capacity(shards);
        let mut shard_addrs = Vec::with_capacity(shards);
        for s in 0..shards {
            let slice = partition.shard_bundle(&model, &graph, &features, s);
            let (sm, sg, sf) = load_bundle(&slice)?;
            let mut engine = Engine::new(sm, sg, sf)?;
            engine.set_owned(partition.shards[s].owned.clone())?;
            if let Some(params) = opts.ann {
                engine.set_ann_params(params);
            }
            let (wal, dedup) = match &opts.wal_dir {
                Some(dir) => {
                    let (wal, records) = Wal::open(dir.join(format!("shard{s}.wal")))?;
                    let dedup = replay(&mut engine, &records)?;
                    (Some(wal), dedup)
                }
                None => (None, DedupTable::new()),
            };
            let server = Server::start_with(
                engine,
                "127.0.0.1:0",
                ServerOptions {
                    max_batch: opts.max_batch,
                    read_timeout: Some(Duration::from_millis(500)),
                    wal,
                    dedup,
                    ..ServerOptions::default()
                },
            )?;
            shard_addrs.push(server.addr().to_string());
            servers.push(server);
        }

        let gateway = Gateway::start(
            graph,
            &features,
            &partition,
            &shard_addrs,
            "127.0.0.1:0",
            GatewayOptions {
                read_connections: opts.read_connections,
                wal_path: opts.wal_dir.as_ref().map(|d| d.join("gateway.wal")),
                read_timeout: Some(Duration::from_millis(500)),
                write_timeout: Some(Duration::from_secs(10)),
                stop_shards: false,
                client_seed: opts.client_seed,
            },
        )?;

        Ok(ShardTier {
            partition,
            servers,
            gateway: Some(gateway),
            shard_addrs,
        })
    }

    /// The gateway's client-facing address.
    pub fn gateway_addr(&self) -> SocketAddr {
        self.gateway.as_ref().expect("gateway runs until shutdown").addr()
    }

    /// Per-shard server addresses, in shard order.
    pub fn shard_addrs(&self) -> &[String] {
        &self.shard_addrs
    }

    /// The tier layout.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.servers.len()
    }

    /// Blocks until a client sends `shutdown` to the gateway, then drains
    /// the shard servers.
    pub fn run_until_shutdown(mut self) {
        if let Some(gateway) = self.gateway.take() {
            gateway.run_until_shutdown();
        }
        for server in self.servers.drain(..) {
            let _ = server.shutdown();
        }
    }

    /// Graceful drain: gateway first (its shard connections close), then
    /// each shard server; returns the drained shard engines in shard order
    /// for post-mortem inspection.
    pub fn shutdown(mut self) -> Vec<Engine> {
        if let Some(gateway) = self.gateway.take() {
            gateway.shutdown();
        }
        self.servers.drain(..).filter_map(Server::shutdown).collect()
    }
}
