//! Incremental HNSW-style ANN index over the quantized embedding store.
//!
//! Candidate generation for `sim_top_k`: a layered proximity graph searched
//! greedily from a single entry point. Layer 0 holds every indexed node with
//! up to `2 * m` links in a flat array; upper layers hold a geometrically
//! thinning subset (deterministic seeded level assignment, so two engines
//! fed the same insert sequence build byte-identical graphs — shard parity
//! tests rely on this). All scores read the quantized rows only; callers
//! re-score the returned candidate set against exact f32 rows, so index
//! error can cost recall but never corrupts a returned score.
//!
//! Maintenance rides on the embedding cache's epoch fence: the engine
//! inserts a node right after its row lands in the cache (insert-on-warm)
//! and removes it when the cache invalidates the row, reinserting on the
//! next warm. Removal unlinks the node from its neighbors, so tombstones
//! never accumulate and searches need no deleted-node filtering.
//!
//! When the indexed population is no larger than the search beam the index
//! degenerates to a scan that returns *every* resident node — combined with
//! exact re-scoring this makes `sim_top_k` exact whenever
//! `ef_search >= resident`, which is what the bit-parity suites pin.

use std::collections::HashMap;

use crate::cache::QuantStore;

/// Construction and search knobs for [`AnnIndex`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnnParams {
    /// Max links per node on layers above 0 (layer 0 allows `2 * m`).
    pub m: usize,
    /// Beam width while building: candidates considered per inserted node.
    pub ef_construction: usize,
    /// Beam width while searching: candidate-set size handed to re-scoring.
    pub ef_search: usize,
    /// Seed for the deterministic level assignment.
    pub seed: u64,
}

impl Default for AnnParams {
    fn default() -> Self {
        Self { m: 12, ef_construction: 80, ef_search: 96, seed: 0x5eed_cafe }
    }
}

/// Cumulative counters exposed through the `stats` op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnnStats {
    /// Nodes inserted (including reinserts after invalidation).
    pub inserts: u64,
    /// Nodes unlinked by cache invalidation.
    pub removals: u64,
    /// Searches served (brute-force degenerate scans included).
    pub searches: u64,
    /// Graph nodes expanded across all searches and inserts.
    pub hops: u64,
    /// Nodes currently indexed.
    pub indexed: usize,
    /// Resident bytes of the index structure (links + level tables).
    pub resident_bytes: usize,
}

/// A `(score, id)` pair ordered score-major with the smaller id winning
/// ties, so every heap decision is deterministic.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Scored(f32, u32);

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(other.1.cmp(&self.1))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Highest level a node may occupy (`levels` above this are pointless for
/// any graph that fits in memory).
const MAX_LEVEL: u8 = 15;

/// Incremental HNSW-style index. See the module docs for the contract.
#[derive(Debug)]
pub struct AnnIndex {
    params: AnnParams,
    /// Layer-0 links, `m0` slots per node.
    links0: Vec<u32>,
    /// Occupied layer-0 slots per node.
    len0: Vec<u8>,
    /// Assigned level per node (fixed by the seed, stable across reinserts).
    level: Vec<u8>,
    in_index: Vec<bool>,
    /// Links on layers >= 1, keyed by node; `upper[&v][l]` is level `l + 1`.
    upper: HashMap<u32, Vec<Vec<u32>>>,
    entry: Option<u32>,
    top_level: u8,
    count: usize,
    inserts: u64,
    removals: u64,
    searches: u64,
    hops: u64,
    /// Dequantized-row scratch, reused across inserts.
    scratch: Vec<f32>,
    /// Second scratch for neighbor-selection candidates (held while
    /// `scratch` is lent out as the insert/prune pivot).
    scratch2: Vec<f32>,
    /// Visited-set scratch: `visit_mark[v] == visit_gen` means seen.
    visit_mark: Vec<u32>,
    visit_gen: u32,
}

impl AnnIndex {
    /// Empty index over `n` node slots of `d`-wide rows.
    pub fn new(n: usize, d: usize, params: AnnParams) -> Self {
        let m0 = params.m * 2;
        Self {
            params,
            links0: vec![0; n * m0],
            len0: vec![0; n],
            level: vec![0; n],
            in_index: vec![false; n],
            upper: HashMap::new(),
            entry: None,
            top_level: 0,
            count: 0,
            inserts: 0,
            removals: 0,
            searches: 0,
            hops: 0,
            scratch: vec![0.0; d],
            scratch2: vec![0.0; d],
            visit_mark: vec![0; n],
            visit_gen: 0,
        }
    }

    /// Active parameters.
    pub fn params(&self) -> AnnParams {
        self.params
    }

    /// Nodes currently indexed.
    pub fn indexed(&self) -> usize {
        self.count
    }

    /// True when `node` is in the index.
    pub fn contains(&self, node: usize) -> bool {
        self.in_index[node]
    }

    /// Counter snapshot (includes the current memory footprint).
    pub fn stats(&self) -> AnnStats {
        AnnStats {
            inserts: self.inserts,
            removals: self.removals,
            searches: self.searches,
            hops: self.hops,
            indexed: self.count,
            resident_bytes: self.bytes(),
        }
    }

    /// Resident bytes of the index structure: flat layer-0 table, level and
    /// membership maps, and the upper-layer link lists (counting the `Vec`
    /// headers the map entries pay for).
    pub fn bytes(&self) -> usize {
        let mut b = self.links0.len() * 4
            + self.len0.len()
            + self.level.len()
            + self.in_index.len()
            + self.visit_mark.len() * 4;
        for lists in self.upper.values() {
            b += 48; // map entry + outer Vec header
            for l in lists {
                b += 24 + l.capacity() * 4;
            }
        }
        b
    }

    /// Deterministic level for `node`: geometric with ratio `1/m`, derived
    /// from the seed so the same node always lands on the same level.
    fn level_for(&self, node: usize) -> u8 {
        let h = splitmix64(self.params.seed ^ (node as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let u = (((h >> 11) | 1) as f64) * (1.0 / (1u64 << 53) as f64);
        let ml = 1.0 / (self.params.m.max(2) as f64).ln();
        ((-u.ln() * ml) as usize).min(MAX_LEVEL as usize) as u8
    }

    fn m_for(&self, level: u8) -> usize {
        if level == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    fn links(&self, node: u32, level: u8) -> &[u32] {
        if level == 0 {
            let m0 = self.params.m * 2;
            let base = node as usize * m0;
            &self.links0[base..base + self.len0[node as usize] as usize]
        } else {
            self.upper
                .get(&node)
                .and_then(|lists| lists.get(level as usize - 1))
                .map_or(&[], Vec::as_slice)
        }
    }

    fn set_links(&mut self, node: u32, level: u8, new: &[u32]) {
        if level == 0 {
            let m0 = self.params.m * 2;
            debug_assert!(new.len() <= m0);
            let base = node as usize * m0;
            self.links0[base..base + new.len()].copy_from_slice(new);
            self.len0[node as usize] = new.len() as u8;
        } else {
            let lists = self.upper.entry(node).or_default();
            while lists.len() < level as usize {
                lists.push(Vec::new());
            }
            lists[level as usize - 1] = new.to_vec();
        }
    }

    fn push_link(&mut self, node: u32, level: u8, target: u32) {
        if level == 0 {
            let m0 = self.params.m * 2;
            let base = node as usize * m0;
            let len = self.len0[node as usize] as usize;
            debug_assert!(len < m0);
            self.links0[base + len] = target;
            self.len0[node as usize] = (len + 1) as u8;
        } else {
            let lists = self.upper.entry(node).or_default();
            while lists.len() < level as usize {
                lists.push(Vec::new());
            }
            lists[level as usize - 1].push(target);
        }
    }

    fn next_visit_gen(&mut self) -> u32 {
        self.visit_gen = self.visit_gen.wrapping_add(1);
        if self.visit_gen == 0 {
            self.visit_mark.iter_mut().for_each(|m| *m = 0);
            self.visit_gen = 1;
        }
        self.visit_gen
    }

    /// Greedy closest-point walk on one layer, used while descending.
    fn greedy_step(
        &mut self,
        store: &QuantStore,
        anchor: &[f32],
        anchor_sum: f32,
        mut ep: u32,
        level: u8,
    ) -> u32 {
        let mut best = store.approx_dot(anchor, anchor_sum, ep as usize);
        loop {
            let mut improved = false;
            let nbrs: Vec<u32> = self.links(ep, level).to_vec();
            for v in nbrs {
                self.hops += 1;
                let s = store.approx_dot(anchor, anchor_sum, v as usize);
                if s > best || (s == best && v < ep) {
                    best = s;
                    ep = v;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Beam search on one layer: returns up to `ef` results, best first.
    fn search_layer(
        &mut self,
        store: &QuantStore,
        anchor: &[f32],
        anchor_sum: f32,
        entries: &[u32],
        ef: usize,
        level: u8,
    ) -> Vec<Scored> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let vgen = self.next_visit_gen();
        let mut candidates: BinaryHeap<Scored> = BinaryHeap::new();
        let mut results: BinaryHeap<Reverse<Scored>> = BinaryHeap::new();
        for &e in entries {
            if self.visit_mark[e as usize] == vgen {
                continue;
            }
            self.visit_mark[e as usize] = vgen;
            let s = Scored(store.approx_dot(anchor, anchor_sum, e as usize), e);
            candidates.push(s);
            results.push(Reverse(s));
            if results.len() > ef {
                results.pop();
            }
        }
        while let Some(cand) = candidates.pop() {
            let worst = results.peek().map_or(f32::NEG_INFINITY, |r| r.0 .0);
            if results.len() >= ef && cand.0 < worst {
                break;
            }
            self.hops += 1;
            let nbrs: Vec<u32> = self.links(cand.1, level).to_vec();
            for v in nbrs {
                if self.visit_mark[v as usize] == vgen {
                    continue;
                }
                self.visit_mark[v as usize] = vgen;
                let s = Scored(store.approx_dot(anchor, anchor_sum, v as usize), v);
                let worst = results.peek().map_or(f32::NEG_INFINITY, |r| r.0 .0);
                if results.len() < ef || s.0 > worst {
                    candidates.push(s);
                    results.push(Reverse(s));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Scored> = results.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    /// HNSW neighbor-selection heuristic: walk `ranked` (best first by
    /// similarity to the base row, id-deduped) and keep a candidate only
    /// when it is more similar to the base than to every neighbor already
    /// kept; skipped candidates back-fill any remaining slots. Plain
    /// keep-m-closest seals each natural cluster into a clique and
    /// disconnects the layer graph — this variant preserves the bridges
    /// between clusters that make greedy routing work.
    fn select_neighbors(&mut self, store: &QuantStore, ranked: &[Scored], m: usize) -> Vec<u32> {
        let mut keep: Vec<u32> = Vec::with_capacity(m);
        let mut skipped: Vec<u32> = Vec::new();
        let mut cand = std::mem::take(&mut self.scratch2);
        cand.resize(store.dim(), 0.0);
        for &Scored(sim_base, c) in ranked {
            if keep.len() >= m {
                break;
            }
            store.dequantize_into(c as usize, &mut cand);
            let cand_sum: f32 = cand.iter().sum();
            let bridges = keep
                .iter()
                .all(|&a| sim_base > store.approx_dot(&cand, cand_sum, a as usize));
            if bridges {
                keep.push(c);
            } else {
                skipped.push(c);
            }
        }
        for c in skipped {
            if keep.len() >= m {
                break;
            }
            keep.push(c);
        }
        self.scratch2 = cand;
        keep
    }

    /// Inserts `node`, whose quantized row must already be resident in
    /// `store`. Reinserting an indexed node first unlinks the old copy.
    pub fn insert(&mut self, node: usize, store: &QuantStore) {
        assert!(store.contains(node), "ann insert needs a quantized row for {node}");
        if self.in_index[node] {
            self.remove(node);
            self.removals -= 1; // internal relink, not a cache invalidation
        }
        self.inserts += 1;
        self.count += 1;
        self.in_index[node] = true;
        let lvl = self.level_for(node);
        self.level[node] = lvl;
        let Some(mut ep) = self.entry else {
            self.entry = Some(node as u32);
            self.top_level = lvl;
            return;
        };
        // Anchor on the *quantized* row: construction geometry must match
        // what searches will see.
        let mut anchor = std::mem::take(&mut self.scratch);
        anchor.resize(store.dim(), 0.0);
        store.dequantize_into(node, &mut anchor);
        let anchor_sum: f32 = anchor.iter().sum();

        let top = self.top_level;
        for lc in (lvl + 1..=top).rev() {
            ep = self.greedy_step(store, &anchor, anchor_sum, ep, lc);
        }
        let mut entries = vec![ep];
        for lc in (0..=lvl.min(top)).rev() {
            let found =
                self.search_layer(store, &anchor, anchor_sum, &entries, self.params.ef_construction, lc);
            let m = self.m_for(lc);
            let cands: Vec<Scored> =
                found.iter().copied().filter(|s| s.1 as usize != node).collect();
            let neighbors = self.select_neighbors(store, &cands, m);
            self.set_links(node as u32, lc, &neighbors);
            for &v in &neighbors {
                if self.links(v, lc).len() < self.m_for(lc) {
                    self.push_link(v, lc, node as u32);
                } else {
                    self.prune_with(store, v, lc, node as u32);
                }
            }
            entries = found.iter().map(|s| s.1).collect();
            if entries.is_empty() {
                entries = vec![ep];
            }
        }
        if lvl > self.top_level {
            self.top_level = lvl;
            self.entry = Some(node as u32);
        }
        self.scratch = anchor;
    }

    /// Re-selects `v`'s links on `level` from its current links plus
    /// `extra`, applying the same selection heuristic as insertion so a
    /// full neighbor list sheds redundant in-cluster links before bridges.
    fn prune_with(&mut self, store: &QuantStore, v: u32, level: u8, extra: u32) {
        // `scratch` may be lent out to the caller (insert holds it as the
        // new node's anchor), in which case the take yields an empty vec —
        // size it before dequantizing or every score comes out 0.0.
        let mut pivot = std::mem::take(&mut self.scratch);
        pivot.resize(store.dim(), 0.0);
        store.dequantize_into(v as usize, &mut pivot);
        let pivot_sum: f32 = pivot.iter().sum();
        let mut ranked: Vec<Scored> = self
            .links(v, level)
            .iter()
            .filter(|&&u| u != extra)
            .chain(std::iter::once(&extra))
            .map(|&u| Scored(store.approx_dot(&pivot, pivot_sum, u as usize), u))
            .collect();
        ranked.sort_by(|a, b| b.cmp(a));
        let keep = self.select_neighbors(store, &ranked, self.m_for(level));
        self.set_links(v, level, &keep);
        self.scratch = pivot;
    }

    /// Unlinks `node` (cache invalidation path). The node's level stays
    /// assigned, so a later reinsert rebuilds the same layered shape.
    pub fn remove(&mut self, node: usize) {
        if !self.in_index[node] {
            return;
        }
        self.removals += 1;
        self.count -= 1;
        self.in_index[node] = false;
        for lc in 0..=self.level[node] {
            let nbrs: Vec<u32> = self.links(node as u32, lc).to_vec();
            for v in nbrs {
                let kept: Vec<u32> =
                    self.links(v, lc).iter().copied().filter(|&u| u as usize != node).collect();
                self.set_links(v, lc, &kept);
            }
            self.set_links(node as u32, lc, &[]);
        }
        self.upper.remove(&(node as u32));
        if self.entry == Some(node as u32) {
            self.elect_entry();
        }
    }

    /// Picks a new entry point after the old one was unlinked: the highest-
    /// level indexed node, smallest id on ties (deterministic).
    fn elect_entry(&mut self) {
        let mut best: Option<(u8, u32)> = None;
        for (&v, _) in self.upper.iter() {
            if !self.in_index[v as usize] {
                continue;
            }
            let l = self.level[v as usize];
            best = match best {
                Some((bl, bv)) if (bl, std::cmp::Reverse(bv)) >= (l, std::cmp::Reverse(v)) => {
                    Some((bl, bv))
                }
                _ => Some((l, v)),
            };
        }
        if best.is_none() {
            best = self
                .in_index
                .iter()
                .position(|&p| p)
                .map(|v| (self.level[v], v as u32));
        }
        match best {
            Some((l, v)) => {
                self.entry = Some(v);
                self.top_level = l;
            }
            None => {
                self.entry = None;
                self.top_level = 0;
            }
        }
    }

    /// Returns candidate node ids for `anchor`, best-effort ordered. The
    /// result holds up to `max(ef, self.params.ef_search)` ids; when the
    /// indexed population fits inside that beam the scan is exhaustive, so
    /// exact re-scoring yields the true top-k.
    pub fn search(&mut self, store: &QuantStore, anchor: &[f32], ef: usize) -> Vec<u32> {
        self.searches += 1;
        let ef = ef.max(self.params.ef_search);
        if self.count <= ef {
            return (0..self.in_index.len())
                .filter(|&v| self.in_index[v])
                .map(|v| v as u32)
                .collect();
        }
        let Some(mut ep) = self.entry else {
            return Vec::new();
        };
        let anchor_sum: f32 = anchor.iter().sum();
        for lc in (1..=self.top_level).rev() {
            ep = self.greedy_step(store, anchor, anchor_sum, ep, lc);
        }
        let found = self.search_layer(store, anchor, anchor_sum, &[ep], ef, 0);
        found.into_iter().map(|s| s.1).collect()
    }

    /// Grows the slot tables to `n` nodes (new slots start unindexed).
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.len0.len(), "ann index cannot shrink");
        let m0 = self.params.m * 2;
        self.links0.resize(n * m0, 0);
        self.len0.resize(n, 0);
        self.level.resize(n, 0);
        self.in_index.resize(n, false);
        self.visit_mark.resize(n, 0);
    }

    /// Clears the graph and reinserts every row resident in `store`, in
    /// ascending id order (used when parameters change or ids are
    /// renumbered). Counters survive; the structure is rebuilt.
    pub fn rebuild(&mut self, store: &QuantStore) {
        let n = store.len();
        let d = store.dim();
        let stats = (self.inserts, self.removals, self.searches, self.hops);
        *self = AnnIndex::new(n, d, self.params);
        (self.inserts, self.removals, self.searches, self.hops) = stats;
        for v in 0..n {
            if store.contains(v) {
                self.insert(v, store);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::QuantMode;

    /// Deterministic pseudo-random unit-ish vectors clustered around `c`.
    fn synth_row(d: usize, id: usize, c: usize) -> Vec<f32> {
        (0..d)
            .map(|i| {
                let h = splitmix64((id as u64) << 20 | i as u64) as f64 / u64::MAX as f64;
                let center = if i % 8 == c % 8 { 2.0 } else { 0.0 };
                (center + h - 0.5) as f32
            })
            .collect()
    }

    fn build(n: usize, d: usize, params: AnnParams) -> (QuantStore, AnnIndex) {
        let mut store = QuantStore::new(n, d, QuantMode::I8);
        let mut index = AnnIndex::new(n, d, params);
        for v in 0..n {
            store.put(v, &synth_row(d, v, v % 5));
            index.insert(v, &store);
        }
        (store, index)
    }

    fn brute_top_k(store: &QuantStore, anchor: &[f32], k: usize) -> Vec<u32> {
        let sum: f32 = anchor.iter().sum();
        let mut scored: Vec<(u32, f32)> = (0..store.len())
            .filter(|&v| store.contains(v))
            .map(|v| (v as u32, store.approx_dot(anchor, sum, v)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored.into_iter().map(|(v, _)| v).collect()
    }

    #[test]
    fn small_population_scan_is_exhaustive() {
        let (store, mut index) = build(50, 16, AnnParams::default());
        let anchor = synth_row(16, 999, 1);
        let got = index.search(&store, &anchor, 96);
        assert_eq!(got.len(), 50, "ef >= resident must return every node");
    }

    #[test]
    fn construction_is_deterministic() {
        let p = AnnParams { ef_search: 8, ..AnnParams::default() };
        let (store_a, mut a) = build(400, 16, p);
        let (_, mut b) = build(400, 16, p);
        let anchor = synth_row(16, 12345, 3);
        assert_eq!(
            a.search(&store_a, &anchor, 24),
            b.search(&store_a, &anchor, 24),
            "same insert sequence, same seed -> same candidates"
        );
        assert_eq!(a.links0, b.links0);
        assert_eq!(a.len0, b.len0);
    }

    #[test]
    fn recall_at_10_beats_095_on_clustered_rows() {
        let n = 2000;
        let d = 16;
        let p = AnnParams { ef_search: 64, ..AnnParams::default() };
        let (store, mut index) = build(n, d, p);
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in 0..50 {
            let anchor = synth_row(d, n + q, q % 5);
            let truth = brute_top_k(&store, &anchor, 10);
            let got = index.search(&store, &anchor, 64);
            hit += truth.iter().filter(|t| got.contains(t)).count();
            total += truth.len();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.95, "recall@10 {recall} < 0.95");
    }

    /// Regression: backlink pruning once scored every link 0.0 (the prune
    /// pivot was dequantized into a zero-length scratch buffer), which froze
    /// each node's links at the earliest-inserted ids and shattered the graph
    /// into per-cluster islands (50 components at n=2048). On unit-norm rows
    /// (where inner product is a true angular similarity) a correct build
    /// keeps every node reachable from the entry point through the combined
    /// layer hierarchy — the same edges a search descent can traverse.
    /// Unnormalized rows are excluded on purpose: under raw MIPS, low-norm
    /// nodes legitimately lose every pruning contest and drop off the graph.
    #[test]
    fn every_node_stays_reachable_from_the_entry() {
        let n = 1500;
        let d = 16;
        let mut store = QuantStore::new(n, d, QuantMode::I8);
        let mut index = AnnIndex::new(n, d, AnnParams::default());
        for v in 0..n {
            let mut row = synth_row(d, v, v % 5);
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            for x in &mut row {
                *x /= norm;
            }
            store.put(v, &row);
            index.insert(v, &store);
        }
        let mut seen = vec![false; n];
        let mut queue = vec![index.entry.expect("non-empty index") as usize];
        seen[queue[0]] = true;
        let mut reached = 0;
        while let Some(v) = queue.pop() {
            reached += 1;
            for level in 0..=MAX_LEVEL {
                for &u in index.links(v as u32, level) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        queue.push(u as usize);
                    }
                }
            }
        }
        assert_eq!(reached, n, "hierarchy disconnected: {reached}/{n} reachable");
    }

    #[test]
    fn remove_then_reinsert_keeps_the_node_searchable() {
        let (mut store, mut index) = build(300, 16, AnnParams { ef_search: 16, ..Default::default() });
        index.remove(7);
        assert!(!index.contains(7));
        let anchor = synth_row(16, 7, 7 % 5);
        assert!(!index.search(&store, &anchor, 32).contains(&7));
        store.put(7, &anchor);
        index.insert(7, &store);
        assert!(index.contains(7));
        let got = index.search(&store, &anchor, 32);
        assert!(got.contains(&7), "a reinserted node must be findable (it is its own best match)");
    }

    #[test]
    fn removing_the_entry_point_elects_a_new_one() {
        let (store, mut index) = build(200, 8, AnnParams { ef_search: 8, ..Default::default() });
        let entry = index.entry.expect("non-empty index has an entry");
        index.remove(entry as usize);
        assert_ne!(index.entry, Some(entry));
        let anchor = synth_row(8, 42, 2);
        assert!(!index.search(&store, &anchor, 16).is_empty());
        // drain everything: the index must empty out cleanly
        for v in 0..200 {
            index.remove(v);
        }
        assert_eq!(index.indexed(), 0);
        assert!(index.entry.is_none());
        assert!(index.search(&store, &anchor, 16).is_empty());
    }

    #[test]
    fn grow_extends_the_slot_tables() {
        let (mut store, mut index) = build(64, 8, AnnParams { ef_search: 8, ..Default::default() });
        store.grow(80);
        index.grow(80);
        store.put(70, &synth_row(8, 70, 0));
        index.insert(70, &store);
        assert!(index.contains(70));
        assert_eq!(index.indexed(), 65);
    }

    #[test]
    fn stats_track_inserts_searches_and_bytes() {
        let (store, mut index) = build(500, 16, AnnParams { ef_search: 8, ..Default::default() });
        let anchor = synth_row(16, 1, 1);
        let _ = index.search(&store, &anchor, 16);
        let s = index.stats();
        assert_eq!(s.inserts, 500);
        assert_eq!(s.indexed, 500);
        assert_eq!(s.searches, 1);
        assert!(s.hops > 0, "hnsw path must expand nodes");
        assert!(s.resident_bytes > 0);
    }
}
