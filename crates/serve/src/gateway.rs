//! Fan-out gateway for the sharded serving tier.
//!
//! The gateway speaks the same length-prefixed JSON protocol as a single
//! server, so existing clients point at it unchanged, but every node id on
//! its wire is **global**; the gateway translates to each shard's local id
//! space at the boundary (a shard's local id for a resident is its index in
//! the partition's sorted resident list, and new residents append).
//!
//! Routing:
//!
//! - `embed` groups nodes by owning shard and reassembles rows in request
//!   order — every row comes from the node's owner, where it is bit-exact.
//! - `link_score` fetches both endpoint embeddings from their owners and
//!   reduces the dot product at the gateway in the engine's summation order.
//! - `top_k` fans `top_k_owned` out to every shard where the anchor is
//!   resident and merges the per-shard heaps. Each true neighbor is owned by
//!   exactly one shard, and that shard replicates the anchor (halo ≥ 1), so
//!   the union sees every candidate exactly once and the merge is exact.
//! - `stats` aggregates across shards; `metrics` snapshots the gateway's
//!   own registry (routing counters plus per-shard gauges).
//! - Mutations are applied to the gateway's authoritative copy of the
//!   graph under a write lock, turned into a **repair plan** (which shards
//!   gain which residents and which local edges), and fanned out to the
//!   affected shards' mutation channels. Halo-replica `add_node` fan-outs
//!   carry `halo: true` so shards keep their ownership masks truthful
//!   across WAL recovery.
//!
//! Mutation ordering: the plan is computed and per-shard mutation locks are
//! acquired (in shard order) while the state write lock is held, then the
//! state lock drops and the fan-out runs. Mutations touching disjoint
//! shards therefore overlap on the wire (their WAL fsyncs overlap), while
//! mutations on a shared shard reach that shard in gateway-state order —
//! which is what keeps shard-local id assignment deterministic.
//!
//! Local-id **order** is part of the bit-parity contract, not just the id
//! assignment: a shard's CSR rows are sorted by local id, so local-id order
//! is the f32 summation order of neighbor aggregation. Repairs install new
//! residents by appending, and whenever an append lands below an existing
//! resident's global id the repair ends with a `reindex` frame that re-sorts
//! the shard's local-id space back to ascending global order. Reads are
//! fenced against renumbering with per-shard epochs: a read captures the
//! epochs of the shards it touches and retries if any changed mid-flight.
//!
//! Every shard link is a [`ResilientClient`] pool: a slow or restarting
//! shard is retried with backoff and, for fan-out reads, skipped with a
//! `gateway.degraded` count rather than failing the whole tier.

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use gcmae_graph::Graph;
use gcmae_obs::{Observer, Registry};
use gcmae_tensor::Matrix;

use crate::client::{Client, ClientError, ResilientClient};
use crate::partition::{splitmix64, Partition, PartitionMode};
use crate::protocol::{
    read_frame, write_frame, ProtocolError, Request, RequestMeta, Response, ServerStats,
};
use crate::wal::{DedupTable, DedupVerdict, Wal, WalError, WalRecord};

/// Gateway configuration.
pub struct GatewayOptions {
    /// Reader connections per shard (round-robined across gateway
    /// connection handlers).
    pub read_connections: usize,
    /// Gateway mutation log: replayed onto the routing state at startup so
    /// a restarted gateway still routes nodes added since partition time.
    pub wal_path: Option<std::path::PathBuf>,
    /// Socket timeouts for client-facing connections.
    pub read_timeout: Option<Duration>,
    /// Write timeout for client-facing connections.
    pub write_timeout: Option<Duration>,
    /// Send `shutdown` to every shard when the gateway shuts down.
    pub stop_shards: bool,
    /// Base identity for the gateway's shard-facing mutation clients. Must
    /// be unique per gateway *process lifetime* (retries within a lifetime
    /// dedup on the shards; a fresh lifetime starts fresh sequences).
    pub client_seed: u64,
}

impl Default for GatewayOptions {
    fn default() -> Self {
        Self {
            read_connections: 4,
            wal_path: None,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            stop_shards: false,
            client_seed: 0x6761_7465_7761_7921, // "gateway!"
        }
    }
}

/// Gateway startup failure.
#[derive(Debug)]
pub enum GatewayError {
    /// Socket problem.
    Io(io::Error),
    /// A shard was unreachable at startup.
    Shard(usize, ClientError),
    /// The partition does not match the graph.
    Layout(&'static str),
    /// The gateway WAL failed to open or replay.
    Wal(WalError),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Io(e) => write!(f, "gateway io error: {e}"),
            GatewayError::Shard(s, e) => write!(f, "shard {s} unreachable: {e}"),
            GatewayError::Layout(what) => write!(f, "partition/graph mismatch: {what}"),
            GatewayError::Wal(e) => write!(f, "gateway wal: {e}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<io::Error> for GatewayError {
    fn from(e: io::Error) -> Self {
        GatewayError::Io(e)
    }
}

/// Growable feature store: the gateway's copy of node features, append-only
/// so `add_node` does not rebuild the matrix.
struct FeatureStore {
    data: Vec<f32>,
    cols: usize,
}

impl FeatureStore {
    fn from_matrix(m: &Matrix) -> Self {
        Self { data: m.as_slice().to_vec(), cols: m.cols() }
    }

    fn row(&self, v: usize) -> &[f32] {
        &self.data[v * self.cols..(v + 1) * self.cols]
    }

    fn push_row(&mut self, row: &[f32]) {
        debug_assert_eq!(row.len(), self.cols);
        self.data.extend_from_slice(row);
    }
}

/// The gateway's authoritative routing state, mutated under a write lock.
struct RouterState {
    /// Global graph (kept in lockstep with the shards via repair plans).
    graph: Graph,
    /// Global features (needed to ship halo replicas of new residents).
    features: FeatureStore,
    /// `owner[v]` = shard owning global node `v`.
    owner: Vec<u32>,
    /// Per shard: resident global ids in local-id order (index = local id).
    residents: Vec<Vec<usize>>,
    /// Per shard: global id → local id.
    local: Vec<HashMap<usize, usize>>,
    /// Per shard: numbering epoch, bumped whenever a repair re-sorts the
    /// shard's local-id space (see [`RouterState::repair`]). Reads capture
    /// the epochs of the shards they touch and retry if any changed while
    /// the fetch was in flight — a renumbering makes captured local ids
    /// meaningless.
    epoch: Vec<u64>,
    /// Per shard: in-flight renumbering mutations (incremented with the
    /// epoch bump under the write lock, decremented after the fan-out
    /// delivered the `reindex` frame). While non-zero the gateway's maps are
    /// ahead of the shard's numbering, so reads wait instead of capturing.
    pending: Vec<u32>,
}

/// One shard's new resident in a repair plan.
struct NewResident {
    global: usize,
    owned: bool,
    features: Vec<f32>,
}

/// What a mutation requires of each shard, in shard-local ids.
struct RepairPlan {
    /// Per shard: residents to install (ascending global order — local ids
    /// are assigned by arrival, so order is part of the contract).
    new_residents: Vec<Vec<NewResident>>,
    /// Per shard: deduplicated local edge batch (pre-reindex numbering).
    edges: Vec<Vec<(usize, usize)>>,
    /// Per shard: permutation restoring ascending-global local-id order,
    /// shipped last (after installs and edges, which use the pre-reindex
    /// numbering). `order[new_local] = old_local`.
    reindex: Vec<Option<Vec<usize>>>,
    /// For `add_node`: the assigned global id.
    new_node: Option<usize>,
}

impl RepairPlan {
    fn empty(shards: usize) -> Self {
        Self {
            new_residents: (0..shards).map(|_| Vec::new()).collect(),
            edges: (0..shards).map(|_| Vec::new()).collect(),
            reindex: (0..shards).map(|_| None).collect(),
            new_node: None,
        }
    }

    /// Shards this plan touches, ascending.
    fn touched(&self) -> Vec<usize> {
        (0..self.edges.len())
            .filter(|&s| {
                !self.new_residents[s].is_empty()
                    || !self.edges[s].is_empty()
                    || self.reindex[s].is_some()
            })
            .collect()
    }
}

impl RouterState {
    /// Extends shard `s` (and the plan) with `x` if it is not yet resident.
    fn plan_resident(&mut self, plan: &mut RepairPlan, s: usize, x: usize, owned: bool) {
        if self.local[s].contains_key(&x) {
            return;
        }
        let local = self.residents[s].len();
        self.residents[s].push(x);
        self.local[s].insert(x, local);
        plan.new_residents[s].push(NewResident {
            global: x,
            owned,
            features: self.features.row(x).to_vec(),
        });
    }

    /// Shared repair logic: after `self.graph` already reflects the
    /// mutation, extend every shard that now needs a node within
    /// `halo_depth` of `changed`, and collect the per-shard edge batches
    /// that keep each shard an exact induced subgraph.
    ///
    /// Membership can only *grow* and only for nodes whose shortest path to
    /// some owned set shrank — any such path crosses the mutated edges, so
    /// the closed `halo_depth`-ball around `changed` covers every node whose
    /// residency anywhere may have changed.
    fn repair(
        &mut self,
        plan: &mut RepairPlan,
        changed: &[usize],
        halo_depth: usize,
        requested_edges: &[(usize, usize)],
    ) {
        let ball = self.graph.k_hop_closed(changed, halo_depth);
        // Ascending global order: `k_hop_closed` sorts, and local ids are
        // assigned in iteration order, so replay recomputes identical ids.
        for &x in &ball {
            let reach = self.graph.k_hop_closed(&[x], halo_depth);
            let mut needed: Vec<usize> =
                reach.iter().map(|&v| self.owner[v] as usize).collect();
            needed.sort_unstable();
            needed.dedup();
            for s in needed {
                let owned = self.owner[x] as usize == s;
                self.plan_resident(plan, s, x, owned);
            }
        }
        // Edge batches: requested edges where both endpoints are resident,
        // plus every global edge incident to a shard's new residents that
        // stays inside the resident set. Existing resident-resident edges
        // are already on the shard (induced-subgraph invariant), and the
        // shard's own `add_edges` drops duplicates, so over-approximating
        // here is safe — dedup just keeps the frames small.
        for s in 0..self.edges_len() {
            let mut batch: Vec<(usize, usize)> = Vec::new();
            for &(u, v) in requested_edges {
                if let (Some(&lu), Some(&lv)) = (self.local[s].get(&u), self.local[s].get(&v)) {
                    batch.push((lu.min(lv), lu.max(lv)));
                }
            }
            for nr in &plan.new_residents[s] {
                let lx = self.local[s][&nr.global];
                for &w in self.graph.neighbors(nr.global) {
                    if let Some(&lw) = self.local[s].get(&(w as usize)) {
                        batch.push((lx.min(lw), lx.max(lw)));
                    }
                }
            }
            batch.sort_unstable();
            batch.dedup();
            plan.edges[s] = batch;
        }
        // Restore ascending-global local-id order wherever an install broke
        // it. A shard's CSR rows are sorted by local id, so local-id order
        // *is* the f32 summation order of neighbor aggregation — only when
        // it equals ascending global order does the shard sum in the same
        // order as an unsharded engine, which is the bit-parity contract.
        // The permutation is applied to the routing maps here (under the
        // caller's write lock) and shipped to the shard as a `reindex`
        // frame after the installs and edges it renumbers.
        for s in 0..self.residents.len() {
            if plan.new_residents[s].is_empty()
                || self.residents[s].windows(2).all(|w| w[0] < w[1])
            {
                continue;
            }
            let old = std::mem::take(&mut self.residents[s]);
            let mut order: Vec<usize> = (0..old.len()).collect();
            order.sort_unstable_by_key(|&l| old[l]);
            self.residents[s] = order.iter().map(|&l| old[l]).collect();
            self.local[s] = self.residents[s]
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i))
                .collect();
            self.epoch[s] += 1;
            plan.reindex[s] = Some(order);
        }
    }

    fn edges_len(&self) -> usize {
        self.residents.len()
    }

    /// Applies `add_edges` to the routing state; returns the repair plan.
    fn apply_add_edges(
        &mut self,
        edges: &[(usize, usize)],
        halo_depth: usize,
    ) -> Result<RepairPlan, String> {
        let (graph, affected) = self.graph.add_edges(edges).map_err(|e| e.to_string())?;
        self.graph = graph;
        let mut plan = RepairPlan::empty(self.residents.len());
        if !affected.is_empty() {
            self.repair(&mut plan, &affected, halo_depth, edges);
        }
        Ok(plan)
    }

    /// Applies `add_node` to the routing state; returns the repair plan.
    /// The new node's owner is `splitmix`-hashed in hash mode and inherited
    /// from its first neighbor in BFS mode (locality-preserving).
    fn apply_add_node(
        &mut self,
        neighbors: &[usize],
        features: &[f32],
        mode: PartitionMode,
        halo_depth: usize,
    ) -> Result<RepairPlan, String> {
        if features.len() != self.features.cols {
            return Err(format!(
                "feature width {} does not match model input {}",
                features.len(),
                self.features.cols
            ));
        }
        let (graph, _affected) = self.graph.add_node(neighbors).map_err(|e| e.to_string())?;
        let g = graph.num_nodes() - 1;
        self.graph = graph;
        self.features.push_row(features);
        let shards = self.residents.len();
        let owner = match mode {
            PartitionMode::Hash => (splitmix64(g as u64) % shards as u64) as u32,
            PartitionMode::Bfs => neighbors
                .first()
                .map(|&v| self.owner[v])
                .unwrap_or(0),
        };
        self.owner.push(owner);
        let mut plan = RepairPlan::empty(shards);
        self.repair(&mut plan, &[g], halo_depth, &[]);
        plan.new_node = Some(g);
        Ok(plan)
    }
}

/// Connection pool to one shard: round-robined readers plus one ordered
/// mutation channel.
struct ShardLink {
    addr: String,
    readers: Vec<Mutex<ResilientClient>>,
    next_reader: AtomicUsize,
    mutator: Mutex<ResilientClient>,
}

impl ShardLink {
    fn reader(&self) -> MutexGuard<'_, ResilientClient> {
        let i = self.next_reader.fetch_add(1, Ordering::Relaxed) % self.readers.len();
        self.readers[i].lock().expect("reader poisoned")
    }
}

struct GatewayInner {
    state: RwLock<RouterState>,
    shards: Vec<ShardLink>,
    metrics: Arc<Registry>,
    dedup: Mutex<DedupTable>,
    wal: Mutex<Option<Wal>>,
    mode: PartitionMode,
    halo_depth: usize,
}

/// A running gateway. Shards are external processes (or in-process
/// [`crate::shard::ShardTier`] servers) reached over TCP.
pub struct Gateway {
    addr: SocketAddr,
    inner: Arc<GatewayInner>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    stop_shards: bool,
    torn_down: bool,
}

impl Gateway {
    /// Builds routing state from the partition-time `graph`/`features` and
    /// `partition`, replays the gateway WAL (if any) over it, connects to
    /// every shard, and starts accepting clients on `addr`.
    pub fn start(
        graph: Graph,
        features: &Matrix,
        partition: &Partition,
        shard_addrs: &[String],
        addr: &str,
        opts: GatewayOptions,
    ) -> Result<Gateway, GatewayError> {
        if shard_addrs.len() != partition.num_shards() {
            return Err(GatewayError::Layout("shard address count"));
        }
        if graph.num_nodes() != partition.num_nodes {
            return Err(GatewayError::Layout("node count"));
        }
        if features.rows() != partition.num_nodes {
            return Err(GatewayError::Layout("feature rows"));
        }
        let mut state = RouterState {
            graph,
            features: FeatureStore::from_matrix(features),
            owner: partition.owner.clone(),
            residents: partition.shards.iter().map(|s| s.residents.clone()).collect(),
            local: partition
                .shards
                .iter()
                .map(|s| {
                    s.residents
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (v, i))
                        .collect::<HashMap<usize, usize>>()
                })
                .collect(),
            epoch: vec![0; partition.num_shards()],
            pending: vec![0; partition.num_shards()],
        };

        // Recover routing state mutated since partition time. Shards replay
        // their own WALs; replaying the same mutations here recomputes the
        // identical repair plans (the plan is a pure function of the state),
        // so local-id assignment stays in agreement without any fan-out.
        let mut dedup = DedupTable::new();
        let wal = match &opts.wal_path {
            Some(path) => {
                let (wal, records) = Wal::open(path).map_err(GatewayError::Wal)?;
                dedup = replay_routing(&mut state, &records, partition.mode, partition.halo_depth)
                    .map_err(GatewayError::Wal)?;
                Some(wal)
            }
            None => None,
        };

        let mut shards = Vec::with_capacity(shard_addrs.len());
        for (s, shard_addr) in shard_addrs.iter().enumerate() {
            let readers = (0..opts.read_connections.max(1))
                .map(|i| {
                    let id = splitmix64(opts.client_seed ^ ((s as u64) << 20) ^ i as u64) | 1;
                    Mutex::new(ResilientClient::new(shard_addr, id))
                })
                .collect::<Vec<_>>();
            let mutator_id = splitmix64(opts.client_seed ^ ((s as u64) << 20) ^ 0xffff) | 1;
            let link = ShardLink {
                addr: shard_addr.clone(),
                readers,
                next_reader: AtomicUsize::new(0),
                mutator: Mutex::new(ResilientClient::new(shard_addr, mutator_id)),
            };
            // Startup liveness probe: fail fast on a dead address.
            link.reader().ping().map_err(|e| GatewayError::Shard(s, e))?;
            shards.push(link);
        }

        let inner = Arc::new(GatewayInner {
            state: RwLock::new(state),
            shards,
            metrics: Arc::new(Registry::new()),
            dedup: Mutex::new(dedup),
            wal: Mutex::new(wal),
            mode: partition.mode,
            halo_depth: partition.halo_depth,
        });

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_inner = Arc::clone(&inner);
        let accept_stop = Arc::clone(&stop);
        let timeouts = (opts.read_timeout, opts.write_timeout);
        let accept_handle = std::thread::spawn(move || {
            accept_loop(listener, accept_inner, accept_stop, timeouts)
        });
        Ok(Gateway {
            addr: local,
            inner,
            stop,
            accept_handle: Some(accept_handle),
            stop_shards: opts.stop_shards,
            torn_down: false,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The gateway's telemetry registry (what its `metrics` op snapshots).
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.inner.metrics)
    }

    /// Blocks until a client sends `shutdown`, then tears down.
    pub fn run_until_shutdown(mut self) {
        while !self.stop.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.teardown();
    }

    /// Stops accepting and (with `stop_shards`) shuts the shards down too.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        if self.torn_down {
            return;
        }
        self.torn_down = true;
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(wal) = self.inner.wal.lock().expect("wal poisoned").as_mut() {
            let _ = wal.sync();
        }
        if self.stop_shards {
            for link in &self.inner.shards {
                if let Ok(mut c) = Client::connect(&link.addr) {
                    let _ = c.shutdown();
                }
            }
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Replays gateway WAL records onto the routing state (no fan-out — shards
/// recover from their own logs) and rebuilds the client-facing dedup table.
fn replay_routing(
    state: &mut RouterState,
    records: &[WalRecord],
    mode: PartitionMode,
    halo_depth: usize,
) -> Result<DedupTable, WalError> {
    let mut dedup = DedupTable::new();
    for (i, rec) in records.iter().enumerate() {
        let response = match &rec.request {
            Request::AddEdges { edges } => match state.apply_add_edges(edges, halo_depth) {
                Ok(_) => Response::EdgesAdded { invalidated: 0 },
                Err(_) => return Err(WalError::BadRecord(i as u64)),
            },
            Request::AddNode { neighbors, features } => {
                match state.apply_add_node(neighbors, features, mode, halo_depth) {
                    Ok(plan) => Response::NodeAdded {
                        node: plan.new_node.unwrap_or(0),
                    },
                    Err(_) => return Err(WalError::BadRecord(i as u64)),
                }
            }
            _ => return Err(WalError::BadRecord(i as u64)),
        };
        dedup.record(rec.client, rec.seq, response);
    }
    Ok(dedup)
}

fn accept_loop(
    listener: TcpListener,
    inner: Arc<GatewayInner>,
    stop: Arc<AtomicBool>,
    timeouts: (Option<Duration>, Option<Duration>),
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(timeouts.0);
                let _ = stream.set_write_timeout(timeouts.1);
                let conn_inner = Arc::clone(&inner);
                let conn_stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let metrics = Arc::clone(&conn_inner.metrics);
                    let handler = AssertUnwindSafe(move || {
                        handle_connection(stream, conn_inner, conn_stop)
                    });
                    if catch_unwind(handler).is_err() {
                        metrics.counter_add("gateway.handler_panics", 1);
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

fn handle_connection(stream: TcpStream, inner: Arc<GatewayInner>, stop: Arc<AtomicBool>) {
    let mut out = &stream;
    loop {
        let mut consumed = 0_usize;
        let mut reader = CountingReader { stream: &stream, consumed: &mut consumed };
        let doc = match read_frame(&mut reader) {
            Ok(doc) => doc,
            Err(ProtocolError::Io(e)) if is_timeout(&e) => {
                if consumed == 0 {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    continue;
                }
                let goodbye = Response::Error {
                    message: "read timed out mid-frame; closing connection".to_string(),
                };
                let _ = write_frame(&mut out, &goodbye.to_json());
                return;
            }
            Err(ProtocolError::Io(_)) => return,
            Err(e) => {
                inner.metrics.counter_add("gateway.protocol_errors", 1);
                let goodbye = Response::Error {
                    message: format!("protocol error: {e}"),
                };
                let _ = write_frame(&mut out, &goodbye.to_json());
                return;
            }
        };
        let response = match Request::from_json(&doc) {
            Ok(request) => {
                let meta = RequestMeta::from_json(&doc);
                match meta.check_version() {
                    Ok(()) => {
                        let is_shutdown = matches!(request, Request::Shutdown);
                        let response = route(&inner, &request, &meta);
                        if is_shutdown {
                            stop.store(true, Ordering::Release);
                        }
                        response
                    }
                    Err(message) => {
                        inner.metrics.counter_add("gateway.protocol_errors", 1);
                        Response::Error { message }
                    }
                }
            }
            Err(e) => {
                inner.metrics.counter_add("gateway.protocol_errors", 1);
                Response::Error { message: e.to_string() }
            }
        };
        if write_frame(&mut out, &response.to_json()).is_err() {
            return;
        }
    }
}

/// `Read` wrapper counting bytes toward the current frame (idle-vs-stalled
/// timeout classification, mirroring the server).
struct CountingReader<'a> {
    stream: &'a TcpStream,
    consumed: &'a mut usize,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = (&mut self.stream).read(buf)?;
        *self.consumed += n;
        Ok(n)
    }
}

/// The gateway request dispatcher. No wildcard arm: a new op fails to
/// compile until routed.
fn route(inner: &GatewayInner, request: &Request, meta: &RequestMeta) -> Response {
    inner
        .metrics
        .counter_add_dyn(&format!("gateway.requests.{}", request.op_name()), 1);
    match request {
        Request::Ping => Response::Pong,
        Request::Embed { nodes } => route_embed(inner, nodes),
        Request::LinkScore { pairs } => route_link_score(inner, pairs),
        Request::TopK { node, k } | Request::TopKOwned { node, k } => {
            route_top_k(inner, *node, *k)
        }
        Request::Stats => route_stats(inner),
        Request::Metrics => Response::Metrics(inner.metrics.snapshot()),
        Request::AddEdges { .. } | Request::AddNode { .. } => {
            route_mutation(inner, request, meta)
        }
        // Local-id surgery makes no sense in the gateway's global id space;
        // only the gateway itself issues it, shard-ward, during repair.
        Request::Reindex { .. } => Response::Error {
            message: "reindex is shard-internal; the gateway issues it during repair"
                .to_string(),
        },
        Request::Shutdown => Response::ShutdownAck,
    }
}

/// Bounded wait/retry budget for reads racing a shard renumbering. Each
/// retry sleeps ~1ms, so a read gives up loudly after roughly half a second
/// of continuous renumbering — which a serving tier never sees outside a
/// mutation storm that is already saturating every shard's WAL.
const READ_RETRIES: usize = 500;

/// Per-node routing handles (owning shard, local id) plus the numbering
/// epochs of every shard involved, captured under one read-lock
/// acquisition. Returns `Ok(None)` while any involved shard has a
/// renumbering in flight: the routing maps are ahead of that shard, so the
/// caller must wait and re-capture. Plain installs don't renumber — local
/// ids are append-only between reindexes — so captured handles stay valid
/// as long as the epochs hold (checked after the fetch).
#[allow(clippy::type_complexity)]
fn capture_handles(
    inner: &GatewayInner,
    nodes: &[usize],
) -> Result<Option<(Vec<(usize, usize)>, Vec<(usize, u64)>)>, String> {
    let state = inner.state.read().expect("state poisoned");
    let handles = nodes
        .iter()
        .map(|&v| {
            if v >= state.owner.len() {
                return Err(format!(
                    "node {v} out of range for graph of {} nodes",
                    state.owner.len()
                ));
            }
            let s = state.owner[v] as usize;
            Ok((s, state.local[s][&v]))
        })
        .collect::<Result<Vec<(usize, usize)>, String>>()?;
    let mut shard_ids: Vec<usize> = handles.iter().map(|&(s, _)| s).collect();
    shard_ids.sort_unstable();
    shard_ids.dedup();
    if shard_ids.iter().any(|&s| state.pending[s] > 0) {
        return Ok(None);
    }
    let epochs = shard_ids.into_iter().map(|s| (s, state.epoch[s])).collect();
    Ok(Some((handles, epochs)))
}

/// True when none of the captured shards renumbered since the capture.
fn epochs_hold(inner: &GatewayInner, epochs: &[(usize, u64)]) -> bool {
    let state = inner.state.read().expect("state poisoned");
    epochs.iter().all(|&(s, e)| state.epoch[s] == e)
}

fn route_embed(inner: &GatewayInner, nodes: &[usize]) -> Response {
    match fetch_rows(inner, nodes) {
        Ok((dim, rows)) => Response::Embeddings { dim, rows },
        Err(message) => Response::Error { message },
    }
}

/// Fetches each node's embedding from its owning shard, preserving request
/// order. One shard round-trip per distinct owning shard. Validated against
/// the shards' numbering epochs: a reindex landing mid-fetch silently
/// renumbers the rows a shard would answer with, so the whole read retries.
fn fetch_rows(inner: &GatewayInner, nodes: &[usize]) -> Result<(usize, Vec<Vec<f32>>), String> {
    for _ in 0..READ_RETRIES {
        let (handles, epochs) = match capture_handles(inner, nodes)? {
            Some(captured) => captured,
            None => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        let mut by_shard: HashMap<usize, (Vec<usize>, Vec<usize>)> = HashMap::new();
        for (i, &(s, local)) in handles.iter().enumerate() {
            let entry = by_shard.entry(s).or_default();
            entry.0.push(local);
            entry.1.push(i);
        }
        let mut rows: Vec<Vec<f32>> = vec![Vec::new(); nodes.len()];
        let mut dim = 0_usize;
        let mut shard_ids: Vec<usize> = by_shard.keys().copied().collect();
        shard_ids.sort_unstable();
        for s in shard_ids {
            let (locals, positions) = &by_shard[&s];
            let fetched = inner.shards[s]
                .reader()
                .embed(locals)
                .map_err(|e| shard_error(inner, s, &e))?;
            for (row, &pos) in fetched.into_iter().zip(positions) {
                dim = row.len();
                rows[pos] = row;
            }
        }
        if epochs_hold(inner, &epochs) {
            return Ok((dim, rows));
        }
        inner.metrics.counter_add("gateway.read_races", 1);
    }
    Err("read kept racing shard renumbering; retry later".to_string())
}

fn shard_error(inner: &GatewayInner, s: usize, e: &ClientError) -> String {
    inner.metrics.counter_add("gateway.shard_errors", 1);
    inner
        .metrics
        .counter_add_dyn(&format!("gateway.shard{s}.errors"), 1);
    format!("shard {s} ({}): {e}", inner.shards[s].addr)
}

fn route_link_score(inner: &GatewayInner, pairs: &[(usize, usize)]) -> Response {
    let mut nodes: Vec<usize> = pairs.iter().flat_map(|&(u, v)| [u, v]).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let (_, rows) = match fetch_rows(inner, &nodes) {
        Ok(ok) => ok,
        Err(message) => return Response::Error { message },
    };
    let index = |v: usize| nodes.binary_search(&v).expect("fetched above");
    let scores = pairs
        .iter()
        .map(|&(u, v)| dot(&rows[index(u)], &rows[index(v)]))
        .collect();
    Response::Scores(scores)
}

/// The engine's link-score reduction order, replicated exactly: pairwise
/// products accumulated left to right in f32.
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Fan-out top-k: every shard where the anchor is resident answers from its
/// *owned* candidates only, so the merged stream has no duplicates and no
/// gaps (each true neighbor is owned somewhere, and that owner replicates
/// the anchor because halo ≥ 1). A failed shard is skipped — degraded,
/// counted, but the tier keeps answering.
fn route_top_k(inner: &GatewayInner, node: usize, k: usize) -> Response {
    for _ in 0..READ_RETRIES {
        let (resident_on, epochs) = {
            let state = inner.state.read().expect("state poisoned");
            if node >= state.owner.len() {
                return Response::Error {
                    message: format!(
                        "node {node} out of range for graph of {} nodes",
                        state.owner.len()
                    ),
                };
            }
            let resident_on: Vec<(usize, usize)> = (0..inner.shards.len())
                .filter_map(|s| state.local[s].get(&node).map(|&l| (s, l)))
                .collect();
            if resident_on.iter().any(|&(s, _)| state.pending[s] > 0) {
                drop(state);
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let epochs: Vec<(usize, u64)> = resident_on
                .iter()
                .map(|&(s, _)| (s, state.epoch[s]))
                .collect();
            (resident_on, epochs)
        };
        let mut merged: Vec<(usize, f32)> = Vec::new();
        let mut answered = 0_usize;
        for &(s, local) in &resident_on {
            match inner.shards[s].reader().top_k_owned(local, k) {
                Ok(ranked) => {
                    answered += 1;
                    let state = inner.state.read().expect("state poisoned");
                    merged.extend(
                        ranked
                            .into_iter()
                            .map(|(l, score)| (state.residents[s][l], score)),
                    );
                }
                Err(e) => {
                    let _ = shard_error(inner, s, &e);
                    inner.metrics.counter_add("gateway.degraded", 1);
                }
            }
        }
        // The merge mapped shard-local ranks back to global ids through the
        // live routing maps; a renumbering in the window makes both the
        // ranks and the mapping unreliable, so the whole fan-out retries.
        if !epochs_hold(inner, &epochs) {
            inner.metrics.counter_add("gateway.read_races", 1);
            continue;
        }
        if answered == 0 && !resident_on.is_empty() {
            return Response::Error {
                message: format!("no shard holding node {node} is reachable"),
            };
        }
        merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged.truncate(k);
        return Response::Neighbors(merged);
    }
    Response::Error {
        message: "read kept racing shard renumbering; retry later".to_string(),
    }
}

/// Aggregated tier stats, plus per-shard gauges refreshed into the gateway
/// registry as a side effect.
fn route_stats(inner: &GatewayInner) -> Response {
    let num_nodes = {
        let state = inner.state.read().expect("state poisoned");
        state.owner.len()
    };
    let mut agg = ServerStats {
        num_nodes,
        ..ServerStats::default()
    };
    for (s, link) in inner.shards.iter().enumerate() {
        let stats = match link.reader().stats() {
            Ok(st) => st,
            Err(e) => {
                let _ = shard_error(inner, s, &e);
                inner.metrics.counter_add("gateway.degraded", 1);
                continue;
            }
        };
        agg.owned_nodes += stats.owned_nodes;
        agg.num_edges += stats.num_edges;
        agg.embed_dim = stats.embed_dim;
        agg.cache_hits += stats.cache_hits;
        agg.cache_misses += stats.cache_misses;
        agg.cache_resident += stats.cache_resident;
        agg.cache_epoch = agg.cache_epoch.max(stats.cache_epoch);
        agg.invalidated += stats.invalidated;
        agg.batches += stats.batches;
        agg.batched_jobs += stats.batched_jobs;
        agg.max_batch = agg.max_batch.max(stats.max_batch);
        agg.backend = stats.backend;
        agg.shed += stats.shed;
        agg.expired += stats.expired;
        agg.dedup_hits += stats.dedup_hits;
        agg.wal_records += stats.wal_records;
        agg.stale_served += stats.stale_served;
        agg.slow_closes += stats.slow_closes;
        for (name, value) in [
            ("num_nodes", stats.num_nodes as f64),
            ("owned_nodes", stats.owned_nodes as f64),
            ("cache_resident", stats.cache_resident as f64),
            ("wal_records", stats.wal_records as f64),
        ] {
            inner
                .metrics
                .gauge_set_dyn(&format!("gateway.shard{s}.{name}"), value);
        }
    }
    Response::Stats(agg)
}

/// Mutation pipeline: dedup → apply to routing state + compute repair plan
/// and take the touched shards' mutation locks (both under the state write
/// lock) → drop the state lock → fan out → gateway WAL → ack.
fn route_mutation(inner: &GatewayInner, request: &Request, meta: &RequestMeta) -> Response {
    let client = meta.client.unwrap_or(0);
    let seq = meta.seq.unwrap_or(0);
    match inner.dedup.lock().expect("dedup poisoned").check(client, seq) {
        DedupVerdict::Replay(recorded) => {
            inner.metrics.counter_add("gateway.dedup_hits", 1);
            return recorded;
        }
        DedupVerdict::Stale { last } => {
            return Response::Error {
                message: format!("stale mutation seq {seq} (last acknowledged {last})"),
            };
        }
        DedupVerdict::Fresh => {}
    }

    // Apply + plan + lock handoff under the exclusive state lock. Only one
    // thread is ever in this multi-lock acquisition (it owns the state
    // lock), so lock order cannot deadlock; taking the shard locks *before*
    // releasing the state lock pins this mutation's position in each
    // touched shard's stream.
    let (plan, guards): (RepairPlan, Vec<(usize, MutexGuard<'_, ResilientClient>)>) = {
        let mut state = inner.state.write().expect("state poisoned");
        let plan = match request {
            Request::AddEdges { edges } => state.apply_add_edges(edges, inner.halo_depth),
            Request::AddNode { neighbors, features } => {
                state.apply_add_node(neighbors, features, inner.mode, inner.halo_depth)
            }
            _ => unreachable!("route_mutation only sees mutations"),
        };
        let plan = match plan {
            Ok(plan) => plan,
            Err(message) => return Response::Error { message },
        };
        // Shards being renumbered are marked pending until their `reindex`
        // frame lands: the routing maps are already in the new numbering,
        // so a read capturing now would ask the shard for ids it does not
        // hold yet. Reads wait the flag out (see `capture_epochs`).
        for s in 0..state.pending.len() {
            if plan.reindex[s].is_some() {
                state.pending[s] += 1;
            }
        }
        let guards = plan
            .touched()
            .into_iter()
            .map(|s| (s, inner.shards[s].mutator.lock().expect("mutator poisoned")))
            .collect();
        (plan, guards)
    };

    let mut invalidated = 0_usize;
    let mut failures: Vec<String> = Vec::new();
    for (s, mut mutator) in guards {
        if let Err(e) = fan_out_to_shard(inner, &plan, s, &mut mutator, &mut invalidated) {
            failures.push(shard_error(inner, s, &e));
        }
    }
    if plan.reindex.iter().any(Option::is_some) {
        // Clear pending even on a failed fan-out: a degraded shard already
        // answers loudly, and a stuck flag would starve its reads forever.
        let mut state = inner.state.write().expect("state poisoned");
        for s in 0..state.pending.len() {
            if plan.reindex[s].is_some() {
                state.pending[s] -= 1;
            }
        }
    }
    if !failures.is_empty() {
        // The gateway's state is ahead of the failed shard(s): the tier is
        // degraded for those partitions until they recover and the caller
        // retries. Surface loudly instead of acking.
        inner.metrics.counter_add("gateway.partial_mutations", 1);
        return Response::Error {
            message: format!("mutation incompletely fanned out: {}", failures.join("; ")),
        };
    }

    let response = match plan.new_node {
        Some(g) => Response::NodeAdded { node: g },
        None => Response::EdgesAdded { invalidated },
    };
    // Durability before acknowledgment, same contract as a single server.
    if let Some(wal) = inner.wal.lock().expect("wal poisoned").as_mut() {
        let rec = WalRecord { client, seq, request: request.clone(), halo: false };
        match wal.append(&rec) {
            Ok(bytes) => {
                inner.metrics.counter_add("gateway.wal.records", 1);
                inner.metrics.counter_add("gateway.wal.bytes", bytes);
            }
            Err(e) => {
                return Response::Error {
                    message: format!("mutation applied but not durable: {e}"),
                };
            }
        }
    }
    inner
        .dedup
        .lock()
        .expect("dedup poisoned")
        .record(client, seq, response.clone());
    response
}

/// Ships one shard's slice of a repair plan: halo/owned `add_node`s in
/// plan order, then the edge batch. Every hop is a sequenced mutation on
/// the shard's dedicated mutation client, so a retried frame after a lost
/// ack dedups on the shard instead of double-applying.
fn fan_out_to_shard(
    inner: &GatewayInner,
    plan: &RepairPlan,
    s: usize,
    mutator: &mut ResilientClient,
    invalidated: &mut usize,
) -> Result<(), ClientError> {
    for nr in &plan.new_residents[s] {
        let request = Request::AddNode {
            neighbors: Vec::new(),
            features: nr.features.clone(),
        };
        let response = mutator.call_mutation_with_halo(&request, !nr.owned)?;
        if let Response::NodeAdded { .. } = response {
            inner.metrics.counter_add("gateway.repair.residents", 1);
        }
    }
    if !plan.edges[s].is_empty() {
        match mutator.call_mutation_with_halo(
            &Request::AddEdges { edges: plan.edges[s].clone() },
            false,
        )? {
            Response::EdgesAdded { invalidated: n } => {
                *invalidated += n;
                inner.metrics.counter_add("gateway.repair.edges", plan.edges[s].len() as u64);
            }
            _ => return Err(ClientError::BadResponse("expected edges_added")),
        }
    }
    // Renumbering last: installs and edges above used the pre-reindex
    // numbering, and the shard re-sorts itself only once they are applied.
    if let Some(order) = &plan.reindex[s] {
        match mutator
            .call_mutation_with_halo(&Request::Reindex { order: order.clone() }, false)?
        {
            Response::Reindexed { .. } => {
                inner.metrics.counter_add("gateway.repair.reindex", 1);
            }
            _ => return Err(ClientError::BadResponse("expected reindexed")),
        }
    }
    Ok(())
}
