//! Fan-out gateway for the sharded serving tier.
//!
//! The gateway speaks the same length-prefixed JSON protocol as a single
//! server, so existing clients point at it unchanged, but every node id on
//! its wire is **global**; the gateway translates to each shard's local id
//! space at the boundary (a shard's local id for a resident is its index in
//! the partition's sorted resident list, and new residents append).
//!
//! Routing:
//!
//! - `embed` groups nodes by owning shard and reassembles rows in request
//!   order — every row comes from the node's owner, where it is bit-exact.
//! - `link_score` fetches both endpoint embeddings from their owners and
//!   reduces the dot product at the gateway in the engine's summation order.
//! - `top_k` fans `top_k_owned` out to every shard where the anchor is
//!   resident and merges the per-shard heaps. Each true neighbor is owned by
//!   exactly one shard, and that shard replicates the anchor (halo ≥ 1), so
//!   the union sees every candidate exactly once and the merge is exact.
//! - `stats` aggregates across shards; `metrics` snapshots the gateway's
//!   own registry (routing counters plus per-shard gauges).
//! - Mutations are admitted through an atomic dedup gate (verdict check
//!   and in-flight reservation under one lock, so a concurrent retry of an
//!   in-flight `(client, seq)` waits and replays instead of re-applying),
//!   applied to the gateway's authoritative copy of the graph under a
//!   write lock, turned into a **repair plan** (which shards gain which
//!   residents and which local edges), journaled write-ahead, and fanned
//!   out to the affected shards' mutation channels. Halo-replica
//!   `add_node` fan-outs carry `halo: true` so shards keep their ownership
//!   masks truthful across WAL recovery.
//!
//! Mutation ordering: while the state write lock is held, the plan is
//! computed, its frames are pushed onto the touched shards' delivery
//! queues, and the WAL lock is taken — so queue order, journal order, and
//! state order are the same total order. The state lock then drops; the
//! journal record is fsynced **before** any frame is delivered (a crash
//! can only leave the gateway ahead of the shards, the direction startup
//! reconciliation repairs — see [`Gateway::start`]). Mutations touching
//! disjoint shards overlap on the wire, while frames bound for a shared
//! shard reach it in gateway-state order — which is what keeps shard-local
//! id assignment deterministic.
//!
//! Delivery is at-least-once with shard-side dedup: a shard that cannot
//! acknowledge keeps its undelivered frames queued (reads touching it wait
//! on the `pending` fence instead of silently reading divergent numbering)
//! and a background redelivery thread re-pushes until the shard recovers;
//! every frame carries the mutator's `(client, seq)`, so a frame the shard
//! already applied replays from its dedup table.
//!
//! Local-id **order** is part of the bit-parity contract, not just the id
//! assignment: a shard's CSR rows are sorted by local id, so local-id order
//! is the f32 summation order of neighbor aggregation. Repairs install new
//! residents by appending, and whenever an append lands below an existing
//! resident's global id the repair ends with a `reindex` frame that re-sorts
//! the shard's local-id space back to ascending global order. Reads are
//! fenced against renumbering with per-shard epochs: a read captures the
//! epochs of the shards it touches and retries if any changed mid-flight.
//!
//! Every shard link is a [`ResilientClient`] pool: a slow or restarting
//! shard is retried with backoff and, for fan-out reads, skipped with a
//! `gateway.degraded` count rather than failing the whole tier.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gcmae_graph::Graph;
use gcmae_obs::{Observer, Registry};
use gcmae_tensor::Matrix;

use crate::client::{Client, ClientError, ResilientClient};
use crate::partition::{splitmix64, Partition, PartitionMode};
use crate::protocol::{
    read_frame, write_frame, ProtocolError, Request, RequestMeta, Response, ServerStats,
};
use crate::wal::{DedupTable, DedupVerdict, Wal, WalError, WalRecord};

/// Gateway configuration.
pub struct GatewayOptions {
    /// Reader connections per shard (round-robined across gateway
    /// connection handlers).
    pub read_connections: usize,
    /// Gateway mutation log: replayed onto the routing state at startup so
    /// a restarted gateway still routes nodes added since partition time.
    pub wal_path: Option<std::path::PathBuf>,
    /// Socket timeouts for client-facing connections.
    pub read_timeout: Option<Duration>,
    /// Write timeout for client-facing connections.
    pub write_timeout: Option<Duration>,
    /// Send `shutdown` to every shard when the gateway shuts down.
    pub stop_shards: bool,
    /// Base identity for the gateway's shard-facing clients. With a WAL
    /// configured this must be **stable across relaunches**: a restarted
    /// gateway probes each shard for the last repair frame its mutator
    /// identity delivered (`seq_probe`) and resumes the sequence from
    /// there, so frames the crash left undelivered redeliver and frames
    /// the shard already applied dedup. Without a WAL the seed must
    /// instead be unique per process lifetime (no journal to resume from,
    /// so a reused identity would collide with the previous lifetime's
    /// sequences).
    pub client_seed: u64,
}

impl Default for GatewayOptions {
    fn default() -> Self {
        Self {
            read_connections: 4,
            wal_path: None,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            stop_shards: false,
            client_seed: 0x6761_7465_7761_7921, // "gateway!"
        }
    }
}

/// Gateway startup failure.
#[derive(Debug)]
pub enum GatewayError {
    /// Socket problem.
    Io(io::Error),
    /// A shard was unreachable at startup.
    Shard(usize, ClientError),
    /// The partition does not match the graph.
    Layout(&'static str),
    /// The gateway WAL failed to open or replay.
    Wal(WalError),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Io(e) => write!(f, "gateway io error: {e}"),
            GatewayError::Shard(s, e) => write!(f, "shard {s} unreachable: {e}"),
            GatewayError::Layout(what) => write!(f, "partition/graph mismatch: {what}"),
            GatewayError::Wal(e) => write!(f, "gateway wal: {e}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<io::Error> for GatewayError {
    fn from(e: io::Error) -> Self {
        GatewayError::Io(e)
    }
}

/// Growable feature store: the gateway's copy of node features, append-only
/// so `add_node` does not rebuild the matrix.
struct FeatureStore {
    data: Vec<f32>,
    cols: usize,
}

impl FeatureStore {
    fn from_matrix(m: &Matrix) -> Self {
        Self { data: m.as_slice().to_vec(), cols: m.cols() }
    }

    fn row(&self, v: usize) -> &[f32] {
        &self.data[v * self.cols..(v + 1) * self.cols]
    }

    fn push_row(&mut self, row: &[f32]) {
        debug_assert_eq!(row.len(), self.cols);
        self.data.extend_from_slice(row);
    }
}

/// The gateway's authoritative routing state, mutated under a write lock.
struct RouterState {
    /// Global graph (kept in lockstep with the shards via repair plans).
    graph: Graph,
    /// Global features (needed to ship halo replicas of new residents).
    features: FeatureStore,
    /// `owner[v]` = shard owning global node `v`.
    owner: Vec<u32>,
    /// Per shard: resident global ids in local-id order (index = local id).
    residents: Vec<Vec<usize>>,
    /// Per shard: global id → local id.
    local: Vec<HashMap<usize, usize>>,
    /// Per shard: numbering epoch, bumped whenever a repair re-sorts the
    /// shard's local-id space (see [`RouterState::repair`]). Reads capture
    /// the epochs of the shards they touch and retry if any changed while
    /// the fetch was in flight — a renumbering makes captured local ids
    /// meaningless.
    epoch: Vec<u64>,
    /// Per shard: repair frames queued but not yet acknowledged by the
    /// shard (incremented when frames are pushed onto the shard's delivery
    /// queue under the write lock, decremented as each acknowledgment
    /// arrives). While non-zero the gateway's maps are ahead of the shard,
    /// so reads wait instead of capturing — including across a fan-out
    /// failure, when the undelivered tail sits in the queue until the
    /// redelivery thread lands it.
    pending: Vec<u32>,
}

/// One shard's new resident in a repair plan.
struct NewResident {
    global: usize,
    owned: bool,
    features: Vec<f32>,
}

/// What a mutation requires of each shard, in shard-local ids.
struct RepairPlan {
    /// Per shard: residents to install (ascending global order — local ids
    /// are assigned by arrival, so order is part of the contract).
    new_residents: Vec<Vec<NewResident>>,
    /// Per shard: deduplicated local edge batch (pre-reindex numbering).
    edges: Vec<Vec<(usize, usize)>>,
    /// Per shard: permutation restoring ascending-global local-id order,
    /// shipped last (after installs and edges, which use the pre-reindex
    /// numbering). `order[new_local] = old_local`.
    reindex: Vec<Option<Vec<usize>>>,
    /// For `add_node`: the assigned global id.
    new_node: Option<usize>,
}

impl RepairPlan {
    fn empty(shards: usize) -> Self {
        Self {
            new_residents: (0..shards).map(|_| Vec::new()).collect(),
            edges: (0..shards).map(|_| Vec::new()).collect(),
            reindex: (0..shards).map(|_| None).collect(),
            new_node: None,
        }
    }

    /// Shards this plan touches, ascending.
    fn touched(&self) -> Vec<usize> {
        (0..self.edges.len())
            .filter(|&s| {
                !self.new_residents[s].is_empty()
                    || !self.edges[s].is_empty()
                    || self.reindex[s].is_some()
            })
            .collect()
    }
}

impl RouterState {
    /// Extends shard `s` (and the plan) with `x` if it is not yet resident.
    fn plan_resident(&mut self, plan: &mut RepairPlan, s: usize, x: usize, owned: bool) {
        if self.local[s].contains_key(&x) {
            return;
        }
        let local = self.residents[s].len();
        self.residents[s].push(x);
        self.local[s].insert(x, local);
        plan.new_residents[s].push(NewResident {
            global: x,
            owned,
            features: self.features.row(x).to_vec(),
        });
    }

    /// Shared repair logic: after `self.graph` already reflects the
    /// mutation, extend every shard that now needs a node within
    /// `halo_depth` of `changed`, and collect the per-shard edge batches
    /// that keep each shard an exact induced subgraph.
    ///
    /// Membership can only *grow* and only for nodes whose shortest path to
    /// some owned set shrank — any such path crosses the mutated edges, so
    /// the closed `halo_depth`-ball around `changed` covers every node whose
    /// residency anywhere may have changed.
    fn repair(
        &mut self,
        plan: &mut RepairPlan,
        changed: &[usize],
        halo_depth: usize,
        requested_edges: &[(usize, usize)],
    ) {
        let ball = self.graph.k_hop_closed(changed, halo_depth);
        // Ascending global order: `k_hop_closed` sorts, and local ids are
        // assigned in iteration order, so replay recomputes identical ids.
        for &x in &ball {
            let reach = self.graph.k_hop_closed(&[x], halo_depth);
            let mut needed: Vec<usize> =
                reach.iter().map(|&v| self.owner[v] as usize).collect();
            needed.sort_unstable();
            needed.dedup();
            for s in needed {
                let owned = self.owner[x] as usize == s;
                self.plan_resident(plan, s, x, owned);
            }
        }
        // Edge batches: requested edges where both endpoints are resident,
        // plus every global edge incident to a shard's new residents that
        // stays inside the resident set. Existing resident-resident edges
        // are already on the shard (induced-subgraph invariant), and the
        // shard's own `add_edges` drops duplicates, so over-approximating
        // here is safe — dedup just keeps the frames small.
        for s in 0..self.edges_len() {
            let mut batch: Vec<(usize, usize)> = Vec::new();
            for &(u, v) in requested_edges {
                if let (Some(&lu), Some(&lv)) = (self.local[s].get(&u), self.local[s].get(&v)) {
                    batch.push((lu.min(lv), lu.max(lv)));
                }
            }
            for nr in &plan.new_residents[s] {
                let lx = self.local[s][&nr.global];
                for &w in self.graph.neighbors(nr.global) {
                    if let Some(&lw) = self.local[s].get(&(w as usize)) {
                        batch.push((lx.min(lw), lx.max(lw)));
                    }
                }
            }
            batch.sort_unstable();
            batch.dedup();
            plan.edges[s] = batch;
        }
        // Restore ascending-global local-id order wherever an install broke
        // it. A shard's CSR rows are sorted by local id, so local-id order
        // *is* the f32 summation order of neighbor aggregation — only when
        // it equals ascending global order does the shard sum in the same
        // order as an unsharded engine, which is the bit-parity contract.
        // The permutation is applied to the routing maps here (under the
        // caller's write lock) and shipped to the shard as a `reindex`
        // frame after the installs and edges it renumbers.
        for s in 0..self.residents.len() {
            if plan.new_residents[s].is_empty()
                || self.residents[s].windows(2).all(|w| w[0] < w[1])
            {
                continue;
            }
            let old = std::mem::take(&mut self.residents[s]);
            let mut order: Vec<usize> = (0..old.len()).collect();
            order.sort_unstable_by_key(|&l| old[l]);
            self.residents[s] = order.iter().map(|&l| old[l]).collect();
            self.local[s] = self.residents[s]
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i))
                .collect();
            self.epoch[s] += 1;
            plan.reindex[s] = Some(order);
        }
    }

    fn edges_len(&self) -> usize {
        self.residents.len()
    }

    /// Applies `add_edges` to the routing state; returns the repair plan.
    fn apply_add_edges(
        &mut self,
        edges: &[(usize, usize)],
        halo_depth: usize,
    ) -> Result<RepairPlan, String> {
        let (graph, affected) = self.graph.add_edges(edges).map_err(|e| e.to_string())?;
        self.graph = graph;
        let mut plan = RepairPlan::empty(self.residents.len());
        if !affected.is_empty() {
            self.repair(&mut plan, &affected, halo_depth, edges);
        }
        Ok(plan)
    }

    /// Applies `add_node` to the routing state; returns the repair plan.
    /// The new node's owner is `splitmix`-hashed in hash mode and inherited
    /// from its first neighbor in BFS mode (locality-preserving).
    fn apply_add_node(
        &mut self,
        neighbors: &[usize],
        features: &[f32],
        mode: PartitionMode,
        halo_depth: usize,
    ) -> Result<RepairPlan, String> {
        if features.len() != self.features.cols {
            return Err(format!(
                "feature width {} does not match model input {}",
                features.len(),
                self.features.cols
            ));
        }
        let (graph, _affected) = self.graph.add_node(neighbors).map_err(|e| e.to_string())?;
        let g = graph.num_nodes() - 1;
        self.graph = graph;
        self.features.push_row(features);
        let shards = self.residents.len();
        let owner = match mode {
            PartitionMode::Hash => (splitmix64(g as u64) % shards as u64) as u32,
            PartitionMode::Bfs => neighbors
                .first()
                .map(|&v| self.owner[v])
                .unwrap_or(0),
        };
        self.owner.push(owner);
        let mut plan = RepairPlan::empty(shards);
        self.repair(&mut plan, &[g], halo_depth, &[]);
        plan.new_node = Some(g);
        Ok(plan)
    }
}

/// One repair frame bound for a shard: the request plus whether it installs
/// a halo replica (shard-side ownership-mask truth).
#[derive(Clone)]
struct Frame {
    request: Request,
    halo: bool,
}

/// Expands one shard's slice of a repair plan into its delivery frames:
/// resident installs in plan order, then the edge batch, then the reindex.
/// Installs and edges use the pre-reindex numbering, so the reindex must
/// ship last — the shard re-sorts itself only once they are applied.
fn plan_frames(plan: &RepairPlan, s: usize) -> Vec<Frame> {
    let mut frames = Vec::new();
    for nr in &plan.new_residents[s] {
        frames.push(Frame {
            request: Request::AddNode {
                neighbors: Vec::new(),
                features: nr.features.clone(),
            },
            halo: !nr.owned,
        });
    }
    if !plan.edges[s].is_empty() {
        frames.push(Frame {
            request: Request::AddEdges { edges: plan.edges[s].clone() },
            halo: false,
        });
    }
    if let Some(order) = &plan.reindex[s] {
        frames.push(Frame {
            request: Request::Reindex { order: order.clone() },
            halo: false,
        });
    }
    frames
}

/// Connection pool to one shard: round-robined readers, one ordered
/// mutation channel, and the shard's frame delivery queue. Frames are
/// queued under the routing-state write lock (so queue order = state
/// order) and drained under the mutator lock; a frame leaves the queue
/// only after the shard acknowledges it, making delivery at-least-once
/// with shard-side dedup absorbing the retries.
struct ShardLink {
    addr: String,
    readers: Vec<Mutex<ResilientClient>>,
    next_reader: AtomicUsize,
    mutator: Mutex<ResilientClient>,
    queue: Mutex<VecDeque<Frame>>,
}

impl ShardLink {
    fn reader(&self) -> MutexGuard<'_, ResilientClient> {
        let i = self.next_reader.fetch_add(1, Ordering::Relaxed) % self.readers.len();
        self.readers[i].lock().expect("reader poisoned")
    }
}

/// Client-facing mutation admission state, held under one lock so the
/// dedup verdict and the decision to execute are atomic: a concurrent
/// retry of an in-flight `(client, seq)` parks on the gate's condvar and
/// replays the recorded response instead of re-applying the mutation.
struct MutationGate {
    table: DedupTable,
    inflight: HashSet<(u64, u64)>,
}

struct GatewayInner {
    state: RwLock<RouterState>,
    shards: Vec<ShardLink>,
    metrics: Arc<Registry>,
    gate: Mutex<MutationGate>,
    gate_cv: Condvar,
    wal: Mutex<Option<Wal>>,
    mode: PartitionMode,
    halo_depth: usize,
}

/// A running gateway. Shards are external processes (or in-process
/// [`crate::shard::ShardTier`] servers) reached over TCP.
pub struct Gateway {
    addr: SocketAddr,
    inner: Arc<GatewayInner>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    redeliver_handle: Option<JoinHandle<()>>,
    stop_shards: bool,
    torn_down: bool,
}

impl Gateway {
    /// Builds routing state from the partition-time `graph`/`features` and
    /// `partition`, replays the gateway WAL (if any) over it, connects to
    /// every shard, and starts accepting clients on `addr`.
    pub fn start(
        graph: Graph,
        features: &Matrix,
        partition: &Partition,
        shard_addrs: &[String],
        addr: &str,
        opts: GatewayOptions,
    ) -> Result<Gateway, GatewayError> {
        if shard_addrs.len() != partition.num_shards() {
            return Err(GatewayError::Layout("shard address count"));
        }
        if graph.num_nodes() != partition.num_nodes {
            return Err(GatewayError::Layout("node count"));
        }
        if features.rows() != partition.num_nodes {
            return Err(GatewayError::Layout("feature rows"));
        }
        let mut state = RouterState {
            graph,
            features: FeatureStore::from_matrix(features),
            owner: partition.owner.clone(),
            residents: partition.shards.iter().map(|s| s.residents.clone()).collect(),
            local: partition
                .shards
                .iter()
                .map(|s| {
                    s.residents
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (v, i))
                        .collect::<HashMap<usize, usize>>()
                })
                .collect(),
            epoch: vec![0; partition.num_shards()],
            pending: vec![0; partition.num_shards()],
        };

        // Recover routing state mutated since partition time. Shards replay
        // their own WALs; replaying the same mutations here recomputes the
        // identical repair plans (the plan is a pure function of the state),
        // so local-id assignment stays in agreement. The per-shard frame
        // streams those plans would have produced are kept: reconciliation
        // below diffs them against what each shard actually applied.
        let mut dedup = DedupTable::new();
        let mut wal_frames: Vec<Vec<Frame>> = vec![Vec::new(); partition.num_shards()];
        let wal = match &opts.wal_path {
            Some(path) => {
                let (wal, records) = Wal::open(path).map_err(GatewayError::Wal)?;
                let (table, frames) =
                    replay_routing(&mut state, &records, partition.mode, partition.halo_depth)
                        .map_err(GatewayError::Wal)?;
                dedup = table;
                wal_frames = frames;
                Some(wal)
            }
            None => None,
        };

        let mut shards = Vec::with_capacity(shard_addrs.len());
        for (s, shard_addr) in shard_addrs.iter().enumerate() {
            let readers = (0..opts.read_connections.max(1))
                .map(|i| {
                    let id = splitmix64(opts.client_seed ^ ((s as u64) << 20) ^ i as u64) | 1;
                    Mutex::new(ResilientClient::new(shard_addr, id))
                })
                .collect::<Vec<_>>();
            let mutator_id = splitmix64(opts.client_seed ^ ((s as u64) << 20) ^ 0xffff) | 1;
            let mut link = ShardLink {
                addr: shard_addr.clone(),
                readers,
                next_reader: AtomicUsize::new(0),
                mutator: Mutex::new(ResilientClient::new(shard_addr, mutator_id)),
                queue: Mutex::new(VecDeque::new()),
            };
            // Startup liveness probe: fail fast on a dead address.
            link.reader().ping().map_err(|e| GatewayError::Shard(s, e))?;
            if wal.is_some() {
                // Delivery reconciliation: the journal fsyncs before frames
                // ship, so a crash can only leave the shard *behind* the
                // journal. Frame `i` of the recomputed stream carried
                // mutator seq `i + 1`; the shard's dedup table remembers
                // the last seq this mutator landed, so the probe tells us
                // exactly which tail never arrived. Queue it for
                // redelivery, resume the sequence after it, and fence
                // reads on this shard until the tail lands.
                let total = wal_frames[s].len() as u64;
                let applied = link
                    .mutator
                    .get_mut()
                    .expect("mutator poisoned")
                    .seq_probe()
                    .map_err(|e| GatewayError::Shard(s, e))?;
                if applied > total {
                    return Err(GatewayError::Layout(
                        "shard has applied more gateway repair frames than the gateway \
                         wal holds (stale or mismatched --wal?)",
                    ));
                }
                link.mutator
                    .get_mut()
                    .expect("mutator poisoned")
                    .resume_seq(applied + 1);
                let tail: Vec<Frame> = wal_frames[s].split_off(applied as usize);
                state.pending[s] += tail.len() as u32;
                link.queue.get_mut().expect("queue poisoned").extend(tail);
            }
            shards.push(link);
        }

        let inner = Arc::new(GatewayInner {
            state: RwLock::new(state),
            shards,
            metrics: Arc::new(Registry::new()),
            gate: Mutex::new(MutationGate { table: dedup, inflight: HashSet::new() }),
            gate_cv: Condvar::new(),
            wal: Mutex::new(wal),
            mode: partition.mode,
            halo_depth: partition.halo_depth,
        });

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_inner = Arc::clone(&inner);
        let accept_stop = Arc::clone(&stop);
        let timeouts = (opts.read_timeout, opts.write_timeout);
        let accept_handle = std::thread::spawn(move || {
            accept_loop(listener, accept_inner, accept_stop, timeouts)
        });
        let redeliver_inner = Arc::clone(&inner);
        let redeliver_stop = Arc::clone(&stop);
        let redeliver_handle = std::thread::spawn(move || {
            redelivery_loop(redeliver_inner, redeliver_stop)
        });
        Ok(Gateway {
            addr: local,
            inner,
            stop,
            accept_handle: Some(accept_handle),
            redeliver_handle: Some(redeliver_handle),
            stop_shards: opts.stop_shards,
            torn_down: false,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The gateway's telemetry registry (what its `metrics` op snapshots).
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.inner.metrics)
    }

    /// Blocks until a client sends `shutdown`, then tears down.
    pub fn run_until_shutdown(mut self) {
        while !self.stop.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.teardown();
    }

    /// Stops accepting and (with `stop_shards`) shuts the shards down too.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        if self.torn_down {
            return;
        }
        self.torn_down = true;
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.redeliver_handle.take() {
            let _ = h.join();
        }
        if let Some(wal) = self.inner.wal.lock().expect("wal poisoned").as_mut() {
            let _ = wal.sync();
        }
        if self.stop_shards {
            for link in &self.inner.shards {
                if let Ok(mut c) = Client::connect(&link.addr) {
                    let _ = c.shutdown();
                }
            }
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Replays gateway WAL records onto the routing state (no fan-out — shards
/// recover from their own logs), rebuilding the client-facing dedup table
/// and the per-shard repair-frame streams the journaled mutations fanned
/// out. The plan is a pure function of the state, so the recomputed frames
/// are byte-identical to what was (or should have been) delivered — frame
/// `i` of a shard's stream carried mutator seq `i + 1`, which is what lets
/// startup reconciliation diff the stream against the shard's dedup table.
#[allow(clippy::type_complexity)]
fn replay_routing(
    state: &mut RouterState,
    records: &[WalRecord],
    mode: PartitionMode,
    halo_depth: usize,
) -> Result<(DedupTable, Vec<Vec<Frame>>), WalError> {
    let mut dedup = DedupTable::new();
    let mut frames: Vec<Vec<Frame>> = vec![Vec::new(); state.residents.len()];
    for (i, rec) in records.iter().enumerate() {
        let (plan, response) = match &rec.request {
            Request::AddEdges { edges } => match state.apply_add_edges(edges, halo_depth) {
                Ok(plan) => (plan, Response::EdgesAdded { invalidated: 0 }),
                Err(_) => return Err(WalError::BadRecord(i as u64)),
            },
            Request::AddNode { neighbors, features } => {
                match state.apply_add_node(neighbors, features, mode, halo_depth) {
                    Ok(plan) => {
                        let node = plan.new_node.unwrap_or(0);
                        (plan, Response::NodeAdded { node })
                    }
                    Err(_) => return Err(WalError::BadRecord(i as u64)),
                }
            }
            _ => return Err(WalError::BadRecord(i as u64)),
        };
        for s in plan.touched() {
            frames[s].extend(plan_frames(&plan, s));
        }
        dedup.record(rec.client, rec.seq, response);
    }
    Ok((dedup, frames))
}

fn accept_loop(
    listener: TcpListener,
    inner: Arc<GatewayInner>,
    stop: Arc<AtomicBool>,
    timeouts: (Option<Duration>, Option<Duration>),
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(timeouts.0);
                let _ = stream.set_write_timeout(timeouts.1);
                let conn_inner = Arc::clone(&inner);
                let conn_stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let metrics = Arc::clone(&conn_inner.metrics);
                    let handler = AssertUnwindSafe(move || {
                        handle_connection(stream, conn_inner, conn_stop)
                    });
                    if catch_unwind(handler).is_err() {
                        metrics.counter_add("gateway.handler_panics", 1);
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

fn handle_connection(stream: TcpStream, inner: Arc<GatewayInner>, stop: Arc<AtomicBool>) {
    let mut out = &stream;
    loop {
        let mut consumed = 0_usize;
        let mut reader = CountingReader { stream: &stream, consumed: &mut consumed };
        let doc = match read_frame(&mut reader) {
            Ok(doc) => doc,
            Err(ProtocolError::Io(e)) if is_timeout(&e) => {
                if consumed == 0 {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    continue;
                }
                let goodbye = Response::Error {
                    message: "read timed out mid-frame; closing connection".to_string(),
                };
                let _ = write_frame(&mut out, &goodbye.to_json());
                return;
            }
            Err(ProtocolError::Io(_)) => return,
            Err(e) => {
                inner.metrics.counter_add("gateway.protocol_errors", 1);
                let goodbye = Response::Error {
                    message: format!("protocol error: {e}"),
                };
                let _ = write_frame(&mut out, &goodbye.to_json());
                return;
            }
        };
        let response = match Request::from_json(&doc) {
            Ok(request) => {
                let meta = RequestMeta::from_json(&doc);
                match meta.check_version() {
                    Ok(()) => {
                        let is_shutdown = matches!(request, Request::Shutdown);
                        let response = route(&inner, &request, &meta);
                        if is_shutdown {
                            stop.store(true, Ordering::Release);
                        }
                        response
                    }
                    Err(message) => {
                        inner.metrics.counter_add("gateway.protocol_errors", 1);
                        Response::Error { message }
                    }
                }
            }
            Err(e) => {
                inner.metrics.counter_add("gateway.protocol_errors", 1);
                Response::Error { message: e.to_string() }
            }
        };
        if write_frame(&mut out, &response.to_json()).is_err() {
            return;
        }
    }
}

/// `Read` wrapper counting bytes toward the current frame (idle-vs-stalled
/// timeout classification, mirroring the server).
struct CountingReader<'a> {
    stream: &'a TcpStream,
    consumed: &'a mut usize,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = (&mut self.stream).read(buf)?;
        *self.consumed += n;
        Ok(n)
    }
}

/// The gateway request dispatcher. No wildcard arm: a new op fails to
/// compile until routed.
fn route(inner: &GatewayInner, request: &Request, meta: &RequestMeta) -> Response {
    inner
        .metrics
        .counter_add_dyn(&format!("gateway.requests.{}", request.op_name()), 1);
    match request {
        Request::Ping => Response::Pong,
        Request::Embed { nodes } => route_embed(inner, nodes),
        Request::LinkScore { pairs } => route_link_score(inner, pairs),
        Request::TopK { node, k } | Request::TopKOwned { node, k } => {
            route_top_k(inner, *node, *k)
        }
        // In the gateway's global id space every node is "owned", so the
        // owned variant without an anchor degenerates to the plain op; an
        // anchor-bearing request (a chained gateway searching by vector)
        // fans the vector out directly.
        Request::SimTopK { node, k }
        | Request::SimTopKOwned {
            node,
            k,
            anchor: None,
            ..
        } => route_sim_top_k(inner, *node, *k),
        Request::SimTopKOwned {
            node,
            k,
            anchor: Some(row),
            exclude,
        } => route_sim_top_k_by_vector(inner, row, exclude.then_some(*node), *k),
        Request::Stats => route_stats(inner),
        Request::Metrics => Response::Metrics(inner.metrics.snapshot()),
        // Answered from the gateway's own dedup table — a client (or a
        // chained gateway) can reconcile its sequence the same way the
        // gateway reconciles against its shards.
        Request::SeqProbe { client } => Response::SeqState {
            last: inner.gate.lock().expect("gate poisoned").table.last_seq(*client),
        },
        Request::AddEdges { .. } | Request::AddNode { .. } => {
            route_mutation(inner, request, meta)
        }
        // Local-id surgery makes no sense in the gateway's global id space;
        // only the gateway itself issues it, shard-ward, during repair.
        Request::Reindex { .. } => Response::Error {
            message: "reindex is shard-internal; the gateway issues it during repair"
                .to_string(),
        },
        Request::Shutdown => Response::ShutdownAck,
    }
}

/// Bounded wait/retry budget for reads racing a shard renumbering. Each
/// retry sleeps ~1ms, so a read gives up loudly after roughly half a second
/// of continuous renumbering — which a serving tier never sees outside a
/// mutation storm that is already saturating every shard's WAL.
const READ_RETRIES: usize = 500;

/// Per-node routing handles (owning shard, local id) plus the numbering
/// epochs of every shard involved, captured under one read-lock
/// acquisition. Returns `Ok(None)` while any involved shard has a
/// renumbering in flight: the routing maps are ahead of that shard, so the
/// caller must wait and re-capture. Plain installs don't renumber — local
/// ids are append-only between reindexes — so captured handles stay valid
/// as long as the epochs hold (checked after the fetch).
#[allow(clippy::type_complexity)]
fn capture_handles(
    inner: &GatewayInner,
    nodes: &[usize],
) -> Result<Option<(Vec<(usize, usize)>, Vec<(usize, u64)>)>, String> {
    let state = inner.state.read().expect("state poisoned");
    let handles = nodes
        .iter()
        .map(|&v| {
            if v >= state.owner.len() {
                return Err(format!(
                    "node {v} out of range for graph of {} nodes",
                    state.owner.len()
                ));
            }
            let s = state.owner[v] as usize;
            Ok((s, state.local[s][&v]))
        })
        .collect::<Result<Vec<(usize, usize)>, String>>()?;
    let mut shard_ids: Vec<usize> = handles.iter().map(|&(s, _)| s).collect();
    shard_ids.sort_unstable();
    shard_ids.dedup();
    if shard_ids.iter().any(|&s| state.pending[s] > 0) {
        return Ok(None);
    }
    let epochs = shard_ids.into_iter().map(|s| (s, state.epoch[s])).collect();
    Ok(Some((handles, epochs)))
}

/// True when none of the captured shards renumbered since the capture.
fn epochs_hold(inner: &GatewayInner, epochs: &[(usize, u64)]) -> bool {
    let state = inner.state.read().expect("state poisoned");
    epochs.iter().all(|&(s, e)| state.epoch[s] == e)
}

fn route_embed(inner: &GatewayInner, nodes: &[usize]) -> Response {
    match fetch_rows(inner, nodes) {
        Ok((dim, rows)) => Response::Embeddings { dim, rows },
        Err(message) => Response::Error { message },
    }
}

/// Fetches each node's embedding from its owning shard, preserving request
/// order. One shard round-trip per distinct owning shard. Validated against
/// the shards' numbering epochs: a reindex landing mid-fetch silently
/// renumbers the rows a shard would answer with, so the whole read retries.
fn fetch_rows(inner: &GatewayInner, nodes: &[usize]) -> Result<(usize, Vec<Vec<f32>>), String> {
    for _ in 0..READ_RETRIES {
        let (handles, epochs) = match capture_handles(inner, nodes)? {
            Some(captured) => captured,
            None => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        let mut by_shard: HashMap<usize, (Vec<usize>, Vec<usize>)> = HashMap::new();
        for (i, &(s, local)) in handles.iter().enumerate() {
            let entry = by_shard.entry(s).or_default();
            entry.0.push(local);
            entry.1.push(i);
        }
        let mut rows: Vec<Vec<f32>> = vec![Vec::new(); nodes.len()];
        let mut dim = 0_usize;
        let mut shard_ids: Vec<usize> = by_shard.keys().copied().collect();
        shard_ids.sort_unstable();
        for s in shard_ids {
            let (locals, positions) = &by_shard[&s];
            let fetched = inner.shards[s]
                .reader()
                .embed(locals)
                .map_err(|e| shard_error(inner, s, &e))?;
            for (row, &pos) in fetched.into_iter().zip(positions) {
                dim = row.len();
                rows[pos] = row;
            }
        }
        if epochs_hold(inner, &epochs) {
            return Ok((dim, rows));
        }
        inner.metrics.counter_add("gateway.read_races", 1);
    }
    Err("read kept racing shard renumbering; retry later".to_string())
}

fn shard_error(inner: &GatewayInner, s: usize, e: &ClientError) -> String {
    inner.metrics.counter_add("gateway.shard_errors", 1);
    inner
        .metrics
        .counter_add_dyn(&format!("gateway.shard{s}.errors"), 1);
    format!("shard {s} ({}): {e}", inner.shards[s].addr)
}

fn route_link_score(inner: &GatewayInner, pairs: &[(usize, usize)]) -> Response {
    let mut nodes: Vec<usize> = pairs.iter().flat_map(|&(u, v)| [u, v]).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let (_, rows) = match fetch_rows(inner, &nodes) {
        Ok(ok) => ok,
        Err(message) => return Response::Error { message },
    };
    let index = |v: usize| nodes.binary_search(&v).expect("fetched above");
    let scores = pairs
        .iter()
        .map(|&(u, v)| dot(&rows[index(u)], &rows[index(v)]))
        .collect();
    Response::Scores(scores)
}

/// The engine's link-score reduction order, replicated exactly: pairwise
/// products accumulated left to right in f32.
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Fan-out top-k: every shard where the anchor is resident answers from its
/// *owned* candidates only, so the merged stream has no duplicates and no
/// gaps (each true neighbor is owned somewhere, and that owner replicates
/// the anchor because halo ≥ 1). A failed shard is skipped — degraded,
/// counted, but the tier keeps answering.
fn route_top_k(inner: &GatewayInner, node: usize, k: usize) -> Response {
    for _ in 0..READ_RETRIES {
        let (resident_on, epochs) = {
            let state = inner.state.read().expect("state poisoned");
            if node >= state.owner.len() {
                return Response::Error {
                    message: format!(
                        "node {node} out of range for graph of {} nodes",
                        state.owner.len()
                    ),
                };
            }
            let resident_on: Vec<(usize, usize)> = (0..inner.shards.len())
                .filter_map(|s| state.local[s].get(&node).map(|&l| (s, l)))
                .collect();
            if resident_on.iter().any(|&(s, _)| state.pending[s] > 0) {
                drop(state);
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let epochs: Vec<(usize, u64)> = resident_on
                .iter()
                .map(|&(s, _)| (s, state.epoch[s]))
                .collect();
            (resident_on, epochs)
        };
        let mut merged: Vec<(usize, f32)> = Vec::new();
        let mut answered = 0_usize;
        for &(s, local) in &resident_on {
            match inner.shards[s].reader().top_k_owned(local, k) {
                Ok(ranked) => {
                    answered += 1;
                    let state = inner.state.read().expect("state poisoned");
                    merged.extend(
                        ranked
                            .into_iter()
                            .map(|(l, score)| (state.residents[s][l], score)),
                    );
                }
                Err(e) => {
                    let _ = shard_error(inner, s, &e);
                    inner.metrics.counter_add("gateway.degraded", 1);
                }
            }
        }
        // The merge mapped shard-local ranks back to global ids through the
        // live routing maps; a renumbering in the window makes both the
        // ranks and the mapping unreliable, so the whole fan-out retries.
        if !epochs_hold(inner, &epochs) {
            inner.metrics.counter_add("gateway.read_races", 1);
            continue;
        }
        if answered == 0 && !resident_on.is_empty() {
            return Response::Error {
                message: format!("no shard holding node {node} is reachable"),
            };
        }
        merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged.truncate(k);
        return Response::Neighbors(merged);
    }
    Response::Error {
        message: "read kept racing shard renumbering; retry later".to_string(),
    }
}

/// Fan-out global similarity search. Every shard answers from its *owned*
/// candidates, so the merged stream has no duplicates and no gaps. Shards
/// where the anchor is resident search by local id; the rest receive the
/// anchor's exact f32 row on the wire (fetched once from a shard holding
/// it) and search by vector. Scores are exact f32 re-scores shard-side, so
/// the merged ranking is bit-equal to a single-process engine.
fn route_sim_top_k(inner: &GatewayInner, node: usize, k: usize) -> Response {
    for _ in 0..READ_RETRIES {
        let (owner_shard, owner_local, epochs) = {
            let state = inner.state.read().expect("state poisoned");
            if node >= state.owner.len() {
                return Response::Error {
                    message: format!(
                        "node {node} out of range for graph of {} nodes",
                        state.owner.len()
                    ),
                };
            }
            // Every shard participates, so every shard's numbering must be
            // quiescent and every epoch is captured.
            if (0..inner.shards.len()).any(|s| state.pending[s] > 0) {
                drop(state);
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let owner_shard = state.owner[node] as usize;
            let owner_local = state.local[owner_shard].get(&node).copied();
            let epochs: Vec<(usize, u64)> =
                (0..inner.shards.len()).map(|s| (s, state.epoch[s])).collect();
            (owner_shard, owner_local, epochs)
        };
        let Some(owner_local) = owner_local else {
            return Response::Error {
                message: format!("node {node} missing from its owning shard {owner_shard}"),
            };
        };
        // Only the owning shard's copy of the anchor is bit-correct (halo
        // replicas sit at the edge of their neighborhood), so the exact row
        // every other shard scores against must come from the owner.
        let anchor_row = if inner.shards.len() > 1 {
            match inner.shards[owner_shard].reader().embed(&[owner_local]) {
                Ok(mut rows) => rows.pop(),
                Err(e) => {
                    let _ = shard_error(inner, owner_shard, &e);
                    inner.metrics.counter_add("gateway.degraded", 1);
                    return Response::Error {
                        message: format!("shard owning node {node} is unreachable"),
                    };
                }
            }
        } else {
            None
        };
        let mut merged: Vec<(usize, f32)> = Vec::new();
        let mut answered = 0_usize;
        for s in 0..inner.shards.len() {
            let result = if s == owner_shard {
                inner.shards[s].reader().sim_top_k_owned(owner_local, k, None, true)
            } else {
                inner.shards[s].reader().sim_top_k_owned(0, k, anchor_row.as_deref(), false)
            };
            match result {
                Ok(ranked) => {
                    answered += 1;
                    let state = inner.state.read().expect("state poisoned");
                    merged.extend(
                        ranked
                            .into_iter()
                            .map(|(l, score)| (state.residents[s][l], score)),
                    );
                }
                Err(e) => {
                    let _ = shard_error(inner, s, &e);
                    inner.metrics.counter_add("gateway.degraded", 1);
                }
            }
        }
        if !epochs_hold(inner, &epochs) {
            inner.metrics.counter_add("gateway.read_races", 1);
            continue;
        }
        if answered == 0 {
            return Response::Error {
                message: "no shard is reachable for similarity search".to_string(),
            };
        }
        merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged.truncate(k);
        return Response::Neighbors(merged);
    }
    Response::Error {
        message: "read kept racing shard renumbering; retry later".to_string(),
    }
}

/// [`route_sim_top_k`] when the caller already holds the anchor vector (a
/// chained gateway): the row fans out to every shard, owned-only, and
/// `exclude` (a *global* id) is filtered gateway-side after the merge.
fn route_sim_top_k_by_vector(
    inner: &GatewayInner,
    row: &[f32],
    exclude: Option<usize>,
    k: usize,
) -> Response {
    for _ in 0..READ_RETRIES {
        let epochs = {
            let state = inner.state.read().expect("state poisoned");
            if (0..inner.shards.len()).any(|s| state.pending[s] > 0) {
                drop(state);
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            (0..inner.shards.len())
                .map(|s| (s, state.epoch[s]))
                .collect::<Vec<(usize, u64)>>()
        };
        let mut merged: Vec<(usize, f32)> = Vec::new();
        let mut answered = 0_usize;
        for s in 0..inner.shards.len() {
            match inner.shards[s].reader().sim_top_k_owned(0, k, Some(row), false) {
                Ok(ranked) => {
                    answered += 1;
                    let state = inner.state.read().expect("state poisoned");
                    merged.extend(
                        ranked
                            .into_iter()
                            .map(|(l, score)| (state.residents[s][l], score)),
                    );
                }
                Err(e) => {
                    let _ = shard_error(inner, s, &e);
                    inner.metrics.counter_add("gateway.degraded", 1);
                }
            }
        }
        if !epochs_hold(inner, &epochs) {
            inner.metrics.counter_add("gateway.read_races", 1);
            continue;
        }
        if answered == 0 {
            return Response::Error {
                message: "no shard is reachable for similarity search".to_string(),
            };
        }
        if let Some(v) = exclude {
            merged.retain(|&(g, _)| g != v);
        }
        merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged.truncate(k);
        return Response::Neighbors(merged);
    }
    Response::Error {
        message: "read kept racing shard renumbering; retry later".to_string(),
    }
}

/// Aggregated tier stats, plus per-shard gauges refreshed into the gateway
/// registry as a side effect.
fn route_stats(inner: &GatewayInner) -> Response {
    let num_nodes = {
        let state = inner.state.read().expect("state poisoned");
        state.owner.len()
    };
    let mut agg = ServerStats {
        num_nodes,
        ..ServerStats::default()
    };
    for (s, link) in inner.shards.iter().enumerate() {
        let stats = match link.reader().stats() {
            Ok(st) => st,
            Err(e) => {
                let _ = shard_error(inner, s, &e);
                inner.metrics.counter_add("gateway.degraded", 1);
                continue;
            }
        };
        agg.owned_nodes += stats.owned_nodes;
        agg.num_edges += stats.num_edges;
        agg.embed_dim = stats.embed_dim;
        agg.cache_hits += stats.cache_hits;
        agg.cache_misses += stats.cache_misses;
        agg.cache_resident += stats.cache_resident;
        agg.cache_epoch = agg.cache_epoch.max(stats.cache_epoch);
        agg.invalidated += stats.invalidated;
        agg.batches += stats.batches;
        agg.batched_jobs += stats.batched_jobs;
        agg.max_batch = agg.max_batch.max(stats.max_batch);
        agg.backend = stats.backend;
        agg.shed += stats.shed;
        agg.expired += stats.expired;
        agg.dedup_hits += stats.dedup_hits;
        agg.wal_records += stats.wal_records;
        agg.stale_served += stats.stale_served;
        agg.slow_closes += stats.slow_closes;
        // shards serve the same bundle; any shard's tag describes the tier
        agg.objective = stats.objective.clone();
        // ANN / quantized-store counters sum across shards (pre-v4 shards
        // parse them as zero, so a mixed tier degrades to partial totals).
        agg.ann_inserts += stats.ann_inserts;
        agg.ann_searches += stats.ann_searches;
        agg.ann_hops += stats.ann_hops;
        agg.ann_resident_bytes += stats.ann_resident_bytes;
        agg.ann_indexed += stats.ann_indexed;
        agg.quantized_rows += stats.quantized_rows;
        agg.quantized_bytes += stats.quantized_bytes;
        for (name, value) in [
            ("num_nodes", stats.num_nodes as f64),
            ("owned_nodes", stats.owned_nodes as f64),
            ("cache_resident", stats.cache_resident as f64),
            ("wal_records", stats.wal_records as f64),
            ("ann_resident_bytes", stats.ann_resident_bytes as f64),
            ("quantized_rows", stats.quantized_rows as f64),
        ] {
            inner
                .metrics
                .gauge_set_dyn(&format!("gateway.shard{s}.{name}"), value);
        }
    }
    Response::Stats(agg)
}

/// How long a retry of an in-flight `(client, seq)` waits on the gate for
/// the first delivery to finish before giving up with a retryable error.
const INFLIGHT_WAIT: Duration = Duration::from_secs(30);

/// What `execute_mutation` decided, shaping how the gate records it.
enum MutationOutcome {
    /// Applied, journaled (or no WAL configured), delivery queued.
    Committed(Response),
    /// Applied and delivery queued, but the WAL append failed. The success
    /// response is still recorded in the gate — a retry must *not*
    /// re-apply (that would mint a duplicate global node and diverge the
    /// id space) — while the current caller is told durability failed.
    NotDurable(Response, String),
    /// Rejected before touching the routing state; nothing is recorded,
    /// so a corrected retry of the same seq is admitted.
    Rejected(String),
}

/// Client-facing mutation pipeline.
///
/// Admission: under the gate lock, the dedup verdict and the in-flight
/// reservation are one atomic step — a duplicate `(client, seq)` arriving
/// while the first copy executes waits on the condvar and replays the
/// recorded response, never re-applying (the reviewer's check-then-record
/// race). Only a `Fresh` seq that wins the reservation executes.
fn route_mutation(inner: &GatewayInner, request: &Request, meta: &RequestMeta) -> Response {
    let client = meta.client.unwrap_or(0);
    let seq = meta.seq.unwrap_or(0);
    let deadline = Instant::now() + INFLIGHT_WAIT;
    {
        let mut gate = inner.gate.lock().expect("gate poisoned");
        loop {
            match gate.table.check(client, seq) {
                DedupVerdict::Replay(recorded) => {
                    inner.metrics.counter_add("gateway.dedup_hits", 1);
                    return recorded;
                }
                DedupVerdict::Stale { last } => {
                    return Response::Error {
                        message: format!(
                            "stale mutation seq {seq} (last acknowledged {last})"
                        ),
                    };
                }
                DedupVerdict::Fresh => {}
            }
            if gate.inflight.insert((client, seq)) {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                return Response::Error {
                    message: format!(
                        "mutation seq {seq} is still in flight; retry later"
                    ),
                };
            }
            let (g, _timeout) = inner
                .gate_cv
                .wait_timeout(gate, deadline - now)
                .expect("gate poisoned");
            gate = g;
        }
    }

    let outcome = execute_mutation(inner, request, client, seq);
    let mut gate = inner.gate.lock().expect("gate poisoned");
    gate.inflight.remove(&(client, seq));
    let response = match outcome {
        MutationOutcome::Committed(response) => {
            gate.table.record(client, seq, response.clone());
            response
        }
        MutationOutcome::NotDurable(response, e) => {
            gate.table.record(client, seq, response);
            Response::Error {
                message: format!("mutation applied but not durable: {e}"),
            }
        }
        MutationOutcome::Rejected(message) => Response::Error { message },
    };
    drop(gate);
    inner.gate_cv.notify_all();
    response
}

/// Commit path, entered only with the `(client, seq)` reservation held.
///
/// Under the exclusive state lock: apply the mutation, compute the repair
/// plan, push its frames onto the touched shards' delivery queues (bumping
/// each shard's `pending` fence), and take the WAL lock — so state order,
/// queue order, and journal order are one total order. The state lock then
/// drops and the journal record fsyncs **before** any frame is delivered:
/// write-ahead means a crash can only leave shards behind the journal,
/// which startup reconciliation redelivers, never silently ahead.
///
/// Delivery failures do not fail the mutation: the undelivered frames stay
/// queued (reads on that shard wait on the `pending` fence) and the
/// redelivery thread re-drains until the shard recovers, so the gateway's
/// acknowledged state and the shards converge without the caller retrying
/// an already-applied mutation.
fn execute_mutation(
    inner: &GatewayInner,
    request: &Request,
    client: u64,
    seq: u64,
) -> MutationOutcome {
    let (plan, wal_guard) = {
        let mut state = inner.state.write().expect("state poisoned");
        let plan = match request {
            Request::AddEdges { edges } => state.apply_add_edges(edges, inner.halo_depth),
            Request::AddNode { neighbors, features } => {
                state.apply_add_node(neighbors, features, inner.mode, inner.halo_depth)
            }
            _ => unreachable!("route_mutation only sees mutations"),
        };
        let plan = match plan {
            Ok(plan) => plan,
            Err(message) => return MutationOutcome::Rejected(message),
        };
        for s in plan.touched() {
            let frames = plan_frames(&plan, s);
            state.pending[s] += frames.len() as u32;
            inner.shards[s]
                .queue
                .lock()
                .expect("queue poisoned")
                .extend(frames);
        }
        // WAL-lock handoff inside the state critical section: journal
        // order matches state order even across concurrent mutations. The
        // fsync itself runs after the state lock drops.
        let wal_guard = inner.wal.lock().expect("wal poisoned");
        (plan, wal_guard)
    };

    let mut wal_failure: Option<String> = None;
    {
        let mut wal_guard = wal_guard;
        if let Some(wal) = wal_guard.as_mut() {
            let rec = WalRecord { client, seq, request: request.clone(), halo: false };
            match wal.append(&rec) {
                Ok(bytes) => {
                    inner.metrics.counter_add("gateway.wal.records", 1);
                    inner.metrics.counter_add("gateway.wal.bytes", bytes);
                }
                Err(e) => {
                    inner.metrics.counter_add("gateway.wal.errors", 1);
                    wal_failure = Some(e.to_string());
                }
            }
        }
    }

    // Deliver. `invalidated` is best-effort under concurrency: a frame of
    // ours may be drained by another thread (or the redelivery loop), in
    // which case its invalidation count lands on that drain instead.
    let mut invalidated = 0_usize;
    for s in plan.touched() {
        if let Err(e) = drain_shard(inner, s, &mut invalidated) {
            let _ = shard_error(inner, s, &e);
            inner.metrics.counter_add("gateway.partial_mutations", 1);
        }
    }

    let response = match plan.new_node {
        Some(g) => Response::NodeAdded { node: g },
        None => Response::EdgesAdded { invalidated },
    };
    match wal_failure {
        Some(e) => MutationOutcome::NotDurable(response, e),
        None => MutationOutcome::Committed(response),
    }
}

/// Drains shard `s`'s delivery queue on its ordered mutation channel. A
/// frame is popped (and the shard's `pending` fence decremented) only
/// after the shard acknowledges it, so a mid-drain failure leaves the
/// undelivered tail queued for the redelivery thread. Lock order is
/// mutator → queue → state, each guard dropped before the next
/// acquisition; frames are only ever *appended* under the state lock, so
/// the front we peek is stable while we hold the mutator lock.
fn drain_shard(
    inner: &GatewayInner,
    s: usize,
    invalidated: &mut usize,
) -> Result<(), ClientError> {
    let mut mutator = inner.shards[s].mutator.lock().expect("mutator poisoned");
    loop {
        let frame = {
            let queue = inner.shards[s].queue.lock().expect("queue poisoned");
            match queue.front() {
                Some(frame) => frame.clone(),
                None => return Ok(()),
            }
        };
        let response = mutator.call_mutation_with_halo(&frame.request, frame.halo)?;
        match (&frame.request, response) {
            (Request::AddNode { .. }, Response::NodeAdded { .. }) => {
                inner.metrics.counter_add("gateway.repair.residents", 1);
            }
            (Request::AddEdges { edges }, Response::EdgesAdded { invalidated: n }) => {
                *invalidated += n;
                inner.metrics.counter_add("gateway.repair.edges", edges.len() as u64);
            }
            (Request::Reindex { .. }, Response::Reindexed { .. }) => {
                inner.metrics.counter_add("gateway.repair.reindex", 1);
            }
            _ => return Err(ClientError::BadResponse("unexpected repair ack")),
        }
        inner.shards[s]
            .queue
            .lock()
            .expect("queue poisoned")
            .pop_front();
        let mut state = inner.state.write().expect("state poisoned");
        state.pending[s] -= 1;
    }
}

/// Background sweeper: re-drains any shard with undelivered frames so a
/// shard that was down during its mutation's delivery converges once it
/// recovers, without waiting for the next client mutation to touch it.
fn redelivery_loop(inner: Arc<GatewayInner>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        for s in 0..inner.shards.len() {
            let queued =
                !inner.shards[s].queue.lock().expect("queue poisoned").is_empty();
            if !queued {
                continue;
            }
            inner.metrics.counter_add("gateway.redeliveries", 1);
            let mut invalidated = 0_usize;
            if let Err(e) = drain_shard(&inner, s, &mut invalidated) {
                let _ = shard_error(&inner, s, &e);
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
