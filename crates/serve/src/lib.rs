// Indexed loops over parallel arrays are idiomatic in this numeric code.
#![allow(clippy::needless_range_loop)]

//! # gcmae-serve
//!
//! Online inference for trained GCMAE checkpoints: load a model once, keep
//! the graph and encoder resident, and answer node-embedding, link-score,
//! and top-k-neighbor queries over a std-only TCP protocol.
//!
//! Three mechanisms keep serving fast without changing any answer:
//!
//! - **Micro-batching** ([`Batcher`]): concurrent read-only requests are
//!   coalesced into a single restricted encoder forward.
//! - **Embedding cache** ([`cache::EmbeddingCache`]): rows are reused across
//!   queries; graph mutations bump an epoch and clear only the encoder-depth
//!   neighborhood of the change.
//! - **Incremental graph updates**: `add_edges` / `add_node` splice the CSR
//!   instead of rebuilding it, and only the affected rows recompute.
//!
//! Every response is bit-identical to an offline
//! [`Gcmae::encode`](gcmae_core::Gcmae::encode) on the same graph — the
//! restricted forward and all kernels are exactness-tested in `gcmae-nn` and
//! `gcmae-tensor`.
//!
//! ## Example
//!
//! ```
//! use gcmae_core::{Gcmae, GcmaeConfig, model::seeded_rng};
//! use gcmae_graph::Graph;
//! use gcmae_serve::{Client, Engine, Server};
//! use gcmae_tensor::Matrix;
//!
//! let mut rng = seeded_rng(0);
//! let graph = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
//! let features = Matrix::uniform(6, 4, -1.0, 1.0, &mut rng);
//! let cfg = GcmaeConfig { hidden_dim: 8, proj_dim: 4, ..GcmaeConfig::fast() };
//! let model = Gcmae::new(&cfg, 4, &mut rng);
//! let offline = model.encode(&graph, &features);
//!
//! let engine = Engine::new(model, graph, features).unwrap();
//! let server = Server::start(engine, "127.0.0.1:0", 32).unwrap();
//! let mut client = Client::connect(&server.addr().to_string()).unwrap();
//! let rows = client.embed(&[3]).unwrap();
//! assert_eq!(rows[0].as_slice(), offline.row(3));
//! server.shutdown();
//! ```

pub mod ann;
pub mod batcher;
pub mod bundle;
pub mod cache;
pub mod client;
pub mod engine;
pub mod gateway;
pub mod json;
pub mod partition;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod wal;

pub use ann::{AnnIndex, AnnParams, AnnStats};
pub use batcher::{Batcher, BatcherOptions};
pub use bundle::{load_bundle, save_bundle, BundleError};
pub use cache::{CacheStats, EmbeddingCache, QuantMode, QuantStore};
pub use client::{Client, ClientError, ResilientClient, RetryPolicy};
pub use engine::{Engine, EngineError, EngineStats};
pub use gateway::{Gateway, GatewayError, GatewayOptions};
pub use json::Json;
pub use partition::{halo_depth_for, Partition, PartitionError, PartitionMode, ShardSpec};
pub use protocol::{
    read_frame, write_frame, ProtocolError, Request, RequestMeta, Response, ServerStats,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerOptions};
pub use shard::{ShardTier, TierError, TierOptions};
pub use wal::{replay, DedupTable, DedupVerdict, Wal, WalError, WalRecord};
