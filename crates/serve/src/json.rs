//! Minimal JSON value type, parser, and writer.
//!
//! The wire protocol (`crate::protocol`) frames JSON documents, and the
//! bench harness writes `BENCH_serve.json`; both sides are owned by this
//! crate, so a small hand-rolled implementation keeps `gcmae-serve` free of
//! extra dependencies. Numbers are `f64`: every `f32` embedding value and
//! every node id below 2^53 round-trips exactly.

use std::fmt;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. `f32` values widened to `f64` serialize and re-parse to
    /// the identical bit pattern; integers are exact below 2^53.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as an ordered key/value list (insertion order is preserved,
    /// which keeps serialized responses deterministic).
    Obj(Vec<(String, Json)>),
}

/// Parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: &'static str,
    /// Byte offset where it went wrong.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap: deeper documents are rejected instead of risking a
/// stack overflow on hostile input.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for number values.
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Exact integer as a JSON number (asserts it fits in the f64 mantissa).
    pub fn int(v: usize) -> Json {
        debug_assert!(v <= (1_u64 << 53) as usize, "integer too large for exact JSON");
        Json::Num(v as f64)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative exact integer accessor.
    pub fn as_usize(&self) -> Option<usize> {
        let v = self.as_f64()?;
        (v >= 0.0 && v.fract() == 0.0 && v <= (1_u64 << 53) as f64).then(|| v as usize)
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value to a compact JSON string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document; the whole input must be consumed.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; `null` keeps the document parseable and makes
        // the corruption visible downstream instead of silently inventing 0.
        out.push_str("null");
        return;
    }
    // Rust's Display for f64 prints the shortest string that round-trips,
    // so re-parsing recovers the identical bits.
    if v == v.trunc() && v.abs() < 1e15 && !(v == 0.0 && v.is_sign_negative()) {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { msg, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str, val: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat("null", Json::Null),
            Some(b't') => self.eat("true", Json::Bool(true)),
            Some(b'f') => self.eat("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        // opening quote
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired; the
                            // protocol never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is copied through verbatim.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Exact `f32` → JSON number. Widening to `f64` is lossless, so the printed
/// shortest-round-trip decimal recovers the original `f32` bits on parse.
pub fn f32_to_json(v: f32) -> Json {
    Json::Num(v as f64)
}

/// Exact JSON number → `f32` (inverse of [`f32_to_json`]).
pub fn json_to_f32(j: &Json) -> Option<f32> {
    j.as_f64().map(|v| v as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let doc = Json::Obj(vec![
            ("op".into(), Json::str("embed")),
            ("nodes".into(), Json::Arr(vec![Json::int(0), Json::int(17), Json::int(3)])),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("x".into(), Json::num(-1.5)),
        ]);
        let text = doc.dump();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn f32_values_roundtrip_bit_exactly() {
        let vals = [
            0.0_f32,
            -0.0,
            1.0,
            std::f32::consts::PI,
            1.0e-38,
            3.4e38,
            -7.217_431_6e-3,
            f32::MIN_POSITIVE,
            1.000_000_1,
        ];
        for v in vals {
            let text = f32_to_json(v).dump();
            let back = json_to_f32(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} serialized as {text}");
        }
    }

    #[test]
    fn large_integers_roundtrip_exactly() {
        for v in [0_usize, 1, 4_294_967_295, (1 << 53) - 1] {
            let text = Json::int(v).dump();
            let back = Json::parse(&text).unwrap().as_usize().unwrap();
            assert_eq!(v, back);
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\slash\\ unicode: é λ \u{1}";
        let text = Json::Str(s.into()).dump();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn parses_whitespace_and_nested() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : [ ] } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0], Json::Num(1.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"abc", "[1] extra", "{a:1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn accessor_helpers_distinguish_types() {
        let v = Json::parse("{\"n\":3,\"f\":1.5,\"s\":\"x\",\"neg\":-1}").unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("f").unwrap().as_usize(), None);
        assert_eq!(v.get("neg").unwrap().as_usize(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }
}
