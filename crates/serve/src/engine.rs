//! The inference engine: a trained model plus a resident graph, features,
//! and embedding cache, answering queries and absorbing graph deltas.
//!
//! Determinism contract: every query answer is bit-identical to what a cold
//! [`Gcmae::encode`] on the current graph would produce, regardless of cache
//! state, batch composition, or thread count. This rests on two properties
//! proven by tests in `gcmae-nn` and `gcmae-tensor`: the restricted forward
//! (`encode_rows`) matches the full forward row-for-row, and every kernel is
//! thread-count invariant.

use gcmae_core::{Gcmae, ServeFaultPlan};
use gcmae_graph::{Graph, GraphError};
use gcmae_nn::GraphOps;
use gcmae_tensor::Matrix;

use crate::ann::{AnnIndex, AnnParams, AnnStats};
use crate::cache::{CacheStats, EmbeddingCache, QuantMode};

/// Query/mutation failure. All variants leave the engine unchanged.
#[derive(Debug)]
pub enum EngineError {
    /// A node id referenced a node that does not exist.
    NodeOutOfRange {
        /// The offending id.
        node: usize,
        /// Number of nodes in the resident graph.
        num_nodes: usize,
    },
    /// `add_node` feature row had the wrong width.
    FeatureWidth {
        /// Provided width.
        got: usize,
        /// Model input width.
        want: usize,
    },
    /// Graph delta failed validation.
    Graph(GraphError),
    /// A [`ServeFaultPlan`] tripped this query (chaos testing only). The
    /// fault is transient: retrying the query succeeds.
    Injected {
        /// 1-based read-query count at which the fault fired.
        at_query: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
            EngineError::FeatureWidth { got, want } => {
                write!(f, "feature row has width {got}, model expects {want}")
            }
            EngineError::Graph(e) => write!(f, "graph update rejected: {e}"),
            EngineError::Injected { at_query } => {
                write!(f, "injected transient fault at read query {at_query}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

/// Summary counters returned by the `stats` request.
#[derive(Clone, Copy, Debug)]
pub struct EngineStats {
    /// Cache counters.
    pub cache: CacheStats,
    /// Nodes in the resident graph.
    pub num_nodes: usize,
    /// Undirected edges in the resident graph.
    pub num_edges: usize,
    /// Embedding width.
    pub embed_dim: usize,
    /// Kernel backend servicing this engine's dense math right now.
    pub backend: gcmae_tensor::Backend,
    /// Nodes this engine owns (equal to `num_nodes` without an owned mask).
    pub owned_nodes: usize,
    /// ANN index counters (inserts, searches, hops, resident bytes).
    pub ann: AnnStats,
}

/// A loaded model serving one resident graph.
pub struct Engine {
    model: Gcmae,
    graph: Graph,
    ops: GraphOps,
    features: Matrix,
    cache: EmbeddingCache,
    /// ANN index over the cache's quantized sidecar. Populated on warm,
    /// pruned on invalidation — always a subset of the valid cache rows.
    ann: AnnIndex,
    faults: ServeFaultPlan,
    read_queries: u64,
    /// Sharding ownership mask, parallel to node ids. `None` (the unsharded
    /// default) means every node is owned. On a shard, halo replicas are
    /// resident but un-owned: they are served like any node, except that
    /// `top_k_owned` never reports them as candidates.
    owned: Option<Vec<bool>>,
}

impl Engine {
    /// Builds an engine around a trained model and its graph + features.
    pub fn new(model: Gcmae, graph: Graph, features: Matrix) -> Result<Self, EngineError> {
        if features.cols() != model.in_dim() {
            return Err(EngineError::FeatureWidth {
                got: features.cols(),
                want: model.in_dim(),
            });
        }
        assert_eq!(
            features.rows(),
            graph.num_nodes(),
            "feature rows must match graph nodes"
        );
        let dim = model.config().hidden_dim;
        let cache = EmbeddingCache::new_quantized(graph.num_nodes(), dim, QuantMode::I8);
        let ann = AnnIndex::new(graph.num_nodes(), dim, AnnParams::default());
        let ops = GraphOps::new(&graph);
        Ok(Self {
            model,
            graph,
            ops,
            features,
            cache,
            ann,
            faults: ServeFaultPlan::default(),
            read_queries: 0,
            owned: None,
        })
    }

    /// Replaces the ANN parameters, rebuilding the index over whatever rows
    /// are already quantized. The bit-parity suites use a large `ef_search`
    /// here: once the beam covers every resident node, `sim_top_k` is exact.
    pub fn set_ann_params(&mut self, params: AnnParams) {
        let (n, d) = (self.cache.len(), self.cache.dim());
        self.ann = AnnIndex::new(n, d, params);
        if let Some(store) = self.cache.quant() {
            self.ann.rebuild(store);
        }
    }

    /// Active ANN parameters.
    pub fn ann_params(&self) -> AnnParams {
        self.ann.params()
    }

    /// Installs a sharding ownership mask (one flag per resident node).
    /// Nodes flagged `false` are halo replicas: resident for receptive-field
    /// completeness but owned by another shard.
    pub fn set_owned(&mut self, mask: Vec<bool>) -> Result<(), EngineError> {
        if mask.len() != self.graph.num_nodes() {
            return Err(EngineError::NodeOutOfRange {
                node: mask.len(),
                num_nodes: self.graph.num_nodes(),
            });
        }
        self.owned = Some(mask);
        Ok(())
    }

    /// True when this engine owns `node` (always true without a mask).
    pub fn is_owned(&self, node: usize) -> bool {
        self.owned.as_ref().map_or(true, |m| m.get(node).copied().unwrap_or(false))
    }

    /// Number of owned nodes (all of them without a mask).
    pub fn owned_nodes(&self) -> usize {
        match &self.owned {
            Some(m) => m.iter().filter(|&&o| o).count(),
            None => self.graph.num_nodes(),
        }
    }

    /// Installs a deterministic read-fault schedule (chaos testing). The
    /// read-query counter restarts from zero.
    pub fn set_fault_plan(&mut self, plan: ServeFaultPlan) {
        self.faults = plan;
        self.read_queries = 0;
    }

    /// Evaluates the installed fault plan for the next read query. Must be
    /// called exactly once at the top of each read op.
    fn tick_read(&mut self) -> Result<(), EngineError> {
        if self.faults.is_empty() {
            return Ok(());
        }
        self.read_queries += 1;
        if self.faults.should_fail_read(self.read_queries) {
            return Err(EngineError::Injected { at_query: self.read_queries });
        }
        Ok(())
    }

    /// The resident graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The model being served.
    pub fn model(&self) -> &Gcmae {
        &self.model
    }

    /// Resident node features.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.cache.stats(),
            num_nodes: self.graph.num_nodes(),
            num_edges: self.graph.num_edges(),
            embed_dim: self.cache.dim(),
            backend: gcmae_tensor::backend::active_backend(),
            owned_nodes: self.owned_nodes(),
            ann: self.ann.stats(),
        }
    }

    fn check_nodes(&self, nodes: impl IntoIterator<Item = usize>) -> Result<(), EngineError> {
        let n = self.graph.num_nodes();
        for v in nodes {
            if v >= n {
                return Err(EngineError::NodeOutOfRange { node: v, num_nodes: n });
            }
        }
        Ok(())
    }

    /// Ensures the listed nodes are cached, recomputing missing rows with
    /// one restricted forward. Ids must already be validated.
    fn warm(&mut self, nodes: &[usize]) {
        let epoch = self.cache.epoch();
        let mut missing = Vec::new();
        let mut seen = vec![false; self.graph.num_nodes()];
        for &v in nodes {
            if !seen[v] && self.cache.get(v).is_none() {
                missing.push(v);
            }
            seen[v] = true;
        }
        if missing.is_empty() {
            return;
        }
        let computed = self.model.encode_rows(&self.ops, &self.features, &missing);
        for (i, &v) in missing.iter().enumerate() {
            // Insert-on-warm: a row that lands in the cache also lands in the
            // quantized sidecar (inside `insert`) and the ANN index, so the
            // index always covers exactly the warm rows.
            if self.cache.insert(epoch, v, computed.row(i)) {
                if let Some(store) = self.cache.quant() {
                    self.ann.insert(v, store);
                }
            }
        }
    }

    /// Warms the cache for the listed nodes with a single restricted
    /// forward. The scheduler uses this to coalesce every node touched by a
    /// group of concurrent requests into one encoder pass; the per-request
    /// answers then come entirely from cache hits.
    pub fn prefetch(&mut self, nodes: &[usize]) -> Result<(), EngineError> {
        self.check_nodes(nodes.iter().copied())?;
        self.warm(nodes);
        Ok(())
    }

    /// Embeddings for the listed nodes (row `i` ↔ `nodes[i]`; duplicates
    /// allowed). Bit-identical to the same rows of a cold
    /// [`Gcmae::encode`] on the resident graph.
    pub fn embed_batch(&mut self, nodes: &[usize]) -> Result<Matrix, EngineError> {
        self.tick_read()?;
        self.check_nodes(nodes.iter().copied())?;
        self.warm(nodes);
        let mut out = Matrix::zeros(nodes.len(), self.cache.dim());
        for (i, &v) in nodes.iter().enumerate() {
            let row = self.cache.peek(v).expect("row warmed above");
            out.row_mut(i).copy_from_slice(row);
        }
        Ok(out)
    }

    /// Degraded-mode embeddings: answers from the cache, tolerating rows up
    /// to `budget` mutation epochs stale, and recomputes only rows with no
    /// usable cached copy. Returns the embedding matrix plus how many rows
    /// were served stale. With `budget == 0` this is exactly
    /// [`Engine::embed_batch`]. Used by the scheduler under overload to
    /// trade bounded staleness for encoder work.
    pub fn embed_batch_stale(
        &mut self,
        nodes: &[usize],
        budget: u64,
    ) -> Result<(Matrix, u64), EngineError> {
        self.tick_read()?;
        self.check_nodes(nodes.iter().copied())?;
        let must_compute: Vec<usize> = {
            let mut seen = vec![false; self.graph.num_nodes()];
            let mut missing = Vec::new();
            for &v in nodes {
                if !seen[v] && self.cache.peek_stale(v, budget).is_none() {
                    missing.push(v);
                }
                seen[v] = true;
            }
            missing
        };
        self.warm(&must_compute);
        let mut out = Matrix::zeros(nodes.len(), self.cache.dim());
        let mut stale_rows = 0_u64;
        for (i, &v) in nodes.iter().enumerate() {
            let (row, stale) = self
                .cache
                .peek_stale(v, budget)
                .expect("row warmed or within budget");
            if stale {
                stale_rows += 1;
            }
            out.row_mut(i).copy_from_slice(row);
        }
        Ok((out, stale_rows))
    }

    /// Dot-product link scores for node pairs (§4.2 link prediction reads
    /// scores off embedding inner products).
    pub fn link_scores(&mut self, pairs: &[(usize, usize)]) -> Result<Vec<f32>, EngineError> {
        self.tick_read()?;
        self.check_nodes(pairs.iter().flat_map(|&(u, v)| [u, v]))?;
        let all: Vec<usize> = pairs.iter().flat_map(|&(u, v)| [u, v]).collect();
        self.warm(&all);
        // Split-borrow the cache instead of copying rows: the anchor lookup
        // is memoized across consecutive pairs sharing `u` (the common shape
        // for "score this node against a candidate list" callers).
        let mut out = Vec::with_capacity(pairs.len());
        let mut last: Option<(usize, &[f32])> = None;
        for &(u, v) in pairs {
            let a = match last {
                Some((lu, row)) if lu == u => row,
                _ => {
                    let row = self.cache.peek(u).expect("warmed");
                    last = Some((u, row));
                    row
                }
            };
            out.push(dot(a, self.cache.peek(v).expect("warmed")));
        }
        Ok(out)
    }

    /// The `k` graph neighbors of `node` with the highest link score,
    /// descending; ties broken by the smaller node id so the ordering is
    /// fully deterministic.
    pub fn top_k(&mut self, node: usize, k: usize) -> Result<Vec<(usize, f32)>, EngineError> {
        self.top_k_filtered(node, k, false)
    }

    /// Like [`Engine::top_k`], but restricted to candidates this engine
    /// *owns*. On a shard this answers only for the partition it is
    /// responsible for, so a gateway merging every shard's answer sees each
    /// true neighbor exactly once; without an owned mask it equals `top_k`.
    pub fn top_k_owned(&mut self, node: usize, k: usize) -> Result<Vec<(usize, f32)>, EngineError> {
        self.top_k_filtered(node, k, true)
    }

    fn top_k_filtered(
        &mut self,
        node: usize,
        k: usize,
        owned_only: bool,
    ) -> Result<Vec<(usize, f32)>, EngineError> {
        self.tick_read()?;
        self.check_nodes([node])?;
        let candidates: Vec<usize> = self
            .graph
            .neighbors(node)
            .iter()
            .map(|&v| v as usize)
            .filter(|&v| !owned_only || self.is_owned(v))
            .collect();
        let mut all = candidates.clone();
        all.push(node);
        self.warm(&all);
        // Both the anchor and the candidate rows are shared borrows of the
        // cache — no per-call copy of the anchor row.
        let anchor = self.cache.peek(node).expect("warmed");
        let mut scored: Vec<(usize, f32)> = candidates
            .into_iter()
            .map(|v| (v, dot(anchor, self.cache.peek(v).expect("warmed"))))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(scored)
    }

    /// Global similarity search: the `k` nodes most similar to `node` by
    /// embedding dot product over *every* resident node, not just graph
    /// neighbors (the paper's §4.2 link-prediction read at serving scale).
    /// Candidates come from the ANN index over the quantized store; each
    /// returned score is an exact f32 re-score against cached rows, so any
    /// `(id, score)` pair is bit-identical to what a brute-force scan of
    /// cold [`Gcmae::encode`] rows would report for that id. The candidate
    /// *set* is exact whenever `ef_search` covers the resident population
    /// (the index degenerates to a full scan), approximate above that with
    /// the recall gated by the `ann-recall` CI job. The anchor itself is
    /// never returned.
    pub fn sim_top_k(&mut self, node: usize, k: usize) -> Result<Vec<(usize, f32)>, EngineError> {
        self.tick_read()?;
        self.check_nodes([node])?;
        self.ensure_indexed();
        self.sim_search(None, Some(node), k, false)
    }

    /// Like [`Engine::sim_top_k`], but restricted to nodes this engine
    /// owns. On a shard the gateway merges every shard's owned answer into
    /// the global top-k; without an owned mask it equals `sim_top_k`.
    pub fn sim_top_k_owned(
        &mut self,
        node: usize,
        k: usize,
    ) -> Result<Vec<(usize, f32)>, EngineError> {
        self.tick_read()?;
        self.check_nodes([node])?;
        self.ensure_indexed();
        self.sim_search(None, Some(node), k, true)
    }

    /// Owned similarity search against a caller-provided anchor embedding.
    /// The gateway uses this to fan a query out to shards where the anchor
    /// node is not resident: the anchor row travels on the wire (bit-exact),
    /// and `exclude` carries the anchor's local id on shards where it *is*
    /// resident so the anchor never scores against itself.
    pub fn sim_top_k_anchor(
        &mut self,
        anchor: &[f32],
        exclude: Option<usize>,
        k: usize,
    ) -> Result<Vec<(usize, f32)>, EngineError> {
        self.tick_read()?;
        if anchor.len() != self.cache.dim() {
            return Err(EngineError::FeatureWidth { got: anchor.len(), want: self.cache.dim() });
        }
        if let Some(x) = exclude {
            self.check_nodes([x])?;
        }
        self.ensure_indexed();
        self.sim_search(Some(anchor), exclude, k, true)
    }

    /// Shared candidate-generation + exact re-score path. `anchor = None`
    /// reads the (already warmed) exact row of `exclude`.
    fn sim_search(
        &mut self,
        anchor: Option<&[f32]>,
        exclude: Option<usize>,
        k: usize,
        owned_only: bool,
    ) -> Result<Vec<(usize, f32)>, EngineError> {
        let ef = self.ann.params().ef_search.max(k.saturating_mul(2));
        let store = self.cache.quant().expect("engine cache always has a quantized sidecar");
        let anchor = match anchor {
            Some(row) => row,
            None => self
                .cache
                .peek(exclude.expect("sim_search without an anchor names a node"))
                .expect("ensure_indexed warmed every row"),
        };
        let candidates = self.ann.search(store, anchor, ef);
        let mut scored: Vec<(usize, f32)> = candidates
            .iter()
            .map(|&c| c as usize)
            .filter(|&v| Some(v) != exclude && (!owned_only || self.is_owned(v)))
            .map(|v| (v, dot(anchor, self.cache.peek(v).expect("indexed rows are cached"))))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(scored)
    }

    /// Brings the cache — and with it the quantized store and ANN index —
    /// to full coverage. Incremental: only rows invalidated since the last
    /// call recompute (a no-op on a fully warm engine), chunked so one call
    /// never materializes an unbounded restricted forward.
    fn ensure_indexed(&mut self) {
        let n = self.graph.num_nodes();
        let missing: Vec<usize> = (0..n).filter(|&v| self.cache.peek(v).is_none()).collect();
        for chunk in missing.chunks(8192) {
            self.warm(chunk);
        }
    }

    /// Inserts undirected edges, recomputing only the affected CSR rows and
    /// invalidating only the encoder-depth neighborhood of the endpoints.
    /// Returns the number of invalidated (stale) nodes.
    pub fn add_edges(&mut self, edges: &[(usize, usize)]) -> Result<usize, EngineError> {
        let (graph, affected) = self.graph.add_edges(edges)?;
        if affected.is_empty() {
            return Ok(0); // every edge already present: nothing changed
        }
        // Embeddings can shift up to `layers` hops from a changed adjacency
        // row (degree renormalization reaches 1 hop, each layer adds one),
        // measured on the post-update graph, which contains the old one.
        let stale = graph.k_hop_closed(&affected, self.model.encoder_layers());
        self.cache.invalidate(&stale);
        // Delete-on-invalidate: stale rows leave the ANN index with the
        // cache fence; the next warm reinserts them with fresh embeddings.
        for &v in &stale {
            self.ann.remove(v);
        }
        self.ops = GraphOps::new(&graph);
        self.graph = graph;
        Ok(stale.len())
    }

    /// Appends a node with the given neighbors and feature row; returns the
    /// new node's id. The node is owned (the unsharded default).
    pub fn add_node(
        &mut self,
        neighbors: &[usize],
        features: &[f32],
    ) -> Result<usize, EngineError> {
        self.add_node_with(neighbors, features, true)
    }

    /// [`Engine::add_node`] with an explicit ownership flag: a gateway
    /// fanning a node out as a halo replica passes `owned = false` so the
    /// replica never surfaces in `top_k_owned` answers. Without an owned
    /// mask installed the flag is irrelevant and ignored.
    pub fn add_node_with(
        &mut self,
        neighbors: &[usize],
        features: &[f32],
        owned: bool,
    ) -> Result<usize, EngineError> {
        if features.len() != self.model.in_dim() {
            return Err(EngineError::FeatureWidth {
                got: features.len(),
                want: self.model.in_dim(),
            });
        }
        let (graph, affected) = self.graph.add_node(neighbors)?;
        let new_id = self.graph.num_nodes();
        let d = self.features.cols();
        let mut data =
            std::mem::replace(&mut self.features, Matrix::zeros(0, d)).into_vec();
        data.extend_from_slice(features);
        self.features = Matrix::from_vec(new_id + 1, d, data);
        self.cache.grow(new_id + 1);
        self.ann.grow(new_id + 1);
        if let Some(mask) = &mut self.owned {
            mask.push(owned);
        }
        let stale = graph.k_hop_closed(&affected, self.model.encoder_layers());
        self.cache.invalidate(&stale);
        for &v in &stale {
            self.ann.remove(v);
        }
        self.ops = GraphOps::new(&graph);
        self.graph = graph;
        Ok(new_id)
    }

    /// Relabels every resident node: new id `i` takes over old id
    /// `order[i]`'s adjacency, feature row, and ownership flag. `order` must
    /// be a permutation of `0..num_nodes`. The whole cache is invalidated
    /// (every id changed meaning), so the next read pays a cold forward.
    ///
    /// A shard's CSR rows are sorted by local id, which makes local-id order
    /// the f32 summation order of neighbor aggregation. The gateway calls
    /// this after a repair whose installs broke ascending-global order,
    /// restoring the exact summation order of an unsharded engine — the
    /// bit-parity contract.
    pub fn reindex(&mut self, order: &[usize]) -> Result<usize, EngineError> {
        let n = self.graph.num_nodes();
        if order.len() != n {
            return Err(EngineError::NodeOutOfRange { node: order.len(), num_nodes: n });
        }
        let mut inv = vec![usize::MAX; n];
        for (new_id, &old_id) in order.iter().enumerate() {
            if old_id >= n || inv[old_id] != usize::MAX {
                return Err(EngineError::NodeOutOfRange { node: old_id, num_nodes: n });
            }
            inv[old_id] = new_id;
        }
        let mut edges = Vec::with_capacity(self.graph.num_edges());
        for u in 0..n {
            for &w in self.graph.neighbors(u) {
                let w = w as usize;
                if u < w {
                    edges.push((inv[u].min(inv[w]), inv[u].max(inv[w])));
                }
            }
        }
        let graph = Graph::try_from_edges(n, &edges)?;
        let d = self.features.cols();
        let old = std::mem::replace(&mut self.features, Matrix::zeros(0, d)).into_vec();
        let mut data = vec![0.0_f32; old.len()];
        for (new_id, &old_id) in order.iter().enumerate() {
            data[new_id * d..(new_id + 1) * d]
                .copy_from_slice(&old[old_id * d..(old_id + 1) * d]);
        }
        self.features = Matrix::from_vec(n, d, data);
        if let Some(mask) = &mut self.owned {
            *mask = order.iter().map(|&old_id| mask[old_id]).collect();
        }
        let everything: Vec<usize> = (0..n).collect();
        self.cache.invalidate(&everything);
        // Every id changed meaning: start the index over (levels are keyed
        // by id, so an in-place relabel would scramble the layer shape).
        self.ann = AnnIndex::new(n, self.cache.dim(), self.ann.params());
        self.ops = GraphOps::new(&graph);
        self.graph = graph;
        Ok(n)
    }
}

/// Fixed-order dot product: deterministic for a given pair of rows.
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_core::{model::seeded_rng, EncoderChoice, GcmaeConfig};
    use gcmae_tensor::parallel::set_num_threads;
    use rand::Rng;

    fn fixture(encoder: EncoderChoice, seed: u64) -> (Gcmae, Graph, Matrix) {
        let mut rng = seeded_rng(seed);
        // Long path + a few chords: sparse enough that a 2-hop invalidation
        // region stays well below the full node set.
        let n: usize = 60;
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push((v - 1, v)); // path keeps everything connected
        }
        for _ in 0..n / 6 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.push((u.min(v), u.max(v)));
            }
        }
        let graph = Graph::from_edges(n, &edges);
        let features = Matrix::uniform(n, 6, -1.0, 1.0, &mut rng);
        let cfg = GcmaeConfig { encoder, hidden_dim: 8, proj_dim: 4, ..GcmaeConfig::fast() };
        let model = Gcmae::new(&cfg, 6, &mut rng);
        (model, graph, features)
    }

    #[test]
    fn embed_batch_matches_cold_encode_bitwise() {
        for encoder in [EncoderChoice::Gcn, EncoderChoice::Sage, EncoderChoice::Gat { heads: 2 }]
        {
            let (model, graph, features) = fixture(encoder, 1);
            let full = model.encode(&graph, &features);
            let mut eng = Engine::new(model, graph, features).unwrap();
            // cold, warm, and duplicate-heavy batches all match
            for nodes in [vec![3, 0, 7], vec![7, 7, 3, 23], (0..24).collect::<Vec<_>>()] {
                let got = eng.embed_batch(&nodes).unwrap();
                for (i, &v) in nodes.iter().enumerate() {
                    assert_eq!(got.row(i), full.row(v), "{encoder:?} node {v}");
                }
            }
            assert!(eng.stats().cache.hits > 0, "warm queries should hit");
        }
    }

    #[test]
    fn link_scores_are_embedding_dots() {
        let (model, graph, features) = fixture(EncoderChoice::Sage, 2);
        let full = model.encode(&graph, &features);
        let mut eng = Engine::new(model, graph, features).unwrap();
        let pairs = [(0, 1), (5, 20), (9, 9)];
        let scores = eng.link_scores(&pairs).unwrap();
        for (s, &(u, v)) in scores.iter().zip(&pairs) {
            assert_eq!(*s, dot(full.row(u), full.row(v)));
        }
    }

    #[test]
    fn top_k_is_sorted_and_tie_broken_by_id() {
        let (model, graph, features) = fixture(EncoderChoice::Gcn, 3);
        let mut eng = Engine::new(model, graph, features).unwrap();
        let got = eng.top_k(5, 3).unwrap();
        assert!(got.len() <= 3);
        for w in got.windows(2) {
            assert!(
                w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                "not sorted: {got:?}"
            );
        }
        // every returned node is an actual graph neighbor
        for &(v, _) in &got {
            assert!(eng.graph().has_edge(5, v));
        }
    }

    /// Satellite property: after `add_edges` + k-hop invalidation, answers
    /// from the (partially warm) cache are bit-identical to a cold recompute
    /// on the updated graph — at 1 and at 8 worker threads.
    #[test]
    fn cache_after_add_edges_matches_cold_recompute_at_1_and_8_threads() {
        for threads in [1_usize, 8] {
            set_num_threads(threads);
            for encoder in
                [EncoderChoice::Gcn, EncoderChoice::Sage, EncoderChoice::Gat { heads: 2 }]
            {
                let (model, graph, features) = fixture(encoder, 4);
                let n = graph.num_nodes();
                let mut eng = Engine::new(model, graph, features).unwrap();
                let all: Vec<usize> = (0..n).collect();
                eng.embed_batch(&all).unwrap(); // warm every row
                let stale = eng.add_edges(&[(0, 12), (3, 19)]).unwrap();
                assert!(stale > 0 && stale < n, "invalidation should be partial: {stale}");
                let warm = eng.embed_batch(&all).unwrap();
                let cold = eng.model().encode(eng.graph(), eng.features());
                assert_eq!(
                    warm.as_slice(),
                    cold.as_slice(),
                    "{encoder:?} at {threads} threads"
                );
            }
        }
        set_num_threads(0); // restore auto sizing for other tests
    }

    #[test]
    fn add_node_extends_graph_and_matches_cold_recompute() {
        let (model, graph, features) = fixture(EncoderChoice::Sage, 5);
        let n = graph.num_nodes();
        let mut eng = Engine::new(model, graph, features).unwrap();
        let all: Vec<usize> = (0..n).collect();
        eng.embed_batch(&all).unwrap();
        let row = vec![0.25; 6];
        let id = eng.add_node(&[0, 4], &row).unwrap();
        assert_eq!(id, n);
        assert_eq!(eng.graph().num_nodes(), n + 1);
        assert_eq!(eng.features().row(id), &row[..]);
        let everyone: Vec<usize> = (0..=n).collect();
        let warm = eng.embed_batch(&everyone).unwrap();
        let cold = eng.model().encode(eng.graph(), eng.features());
        assert_eq!(warm.as_slice(), cold.as_slice());
    }

    #[test]
    fn reindex_relabels_and_matches_cold_encode_on_the_relabeled_graph() {
        let (model, graph, features) = fixture(EncoderChoice::Sage, 13);
        let n = graph.num_nodes();
        let mut eng = Engine::new(model, graph.clone(), features.clone()).unwrap();
        let mut mask = vec![true; n];
        mask[3] = false;
        eng.set_owned(mask).unwrap();
        let all: Vec<usize> = (0..n).collect();
        eng.embed_batch(&all).unwrap(); // warm cache; reindex must flush it

        // Reversal permutation: new id i takes over old id n-1-i.
        let order: Vec<usize> = (0..n).rev().collect();
        assert_eq!(eng.reindex(&order).unwrap(), n);

        // Reference: the same relabeling applied directly.
        let mut edges = Vec::new();
        for u in 0..n {
            for &w in graph.neighbors(u) {
                let (a, b) = (n - 1 - u, n - 1 - w as usize);
                if a < b {
                    edges.push((a, b));
                }
            }
        }
        let relabeled = Graph::from_edges(n, &edges);
        let mut data = Vec::with_capacity(n * features.cols());
        for v in (0..n).rev() {
            data.extend_from_slice(features.row(v));
        }
        let ref_features = Matrix::from_vec(n, features.cols(), data);
        let cold = eng.model().encode(&relabeled, &ref_features);
        let warm = eng.embed_batch(&all).unwrap();
        assert_eq!(warm.as_slice(), cold.as_slice());
        assert!(!eng.is_owned(n - 1 - 3), "ownership flag follows the node");
        assert_eq!(eng.owned_nodes(), n - 1);

        // Non-permutations are rejected and leave the engine unchanged.
        assert!(eng.reindex(&vec![0; n]).is_err());
        assert!(eng.reindex(&order[..n - 1]).is_err());
        assert_eq!(eng.embed_batch(&all).unwrap().as_slice(), cold.as_slice());
    }

    /// Brute-force similarity oracle over a cold encode.
    fn sim_oracle(full: &Matrix, node: usize, k: usize, mask: Option<&[bool]>) -> Vec<(usize, f32)> {
        let mut scored: Vec<(usize, f32)> = (0..full.rows())
            .filter(|&v| v != node && mask.map_or(true, |m| m[v]))
            .map(|v| (v, dot(full.row(node), full.row(v))))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    #[test]
    fn sim_top_k_with_covering_beam_equals_the_brute_force_oracle() {
        let (model, graph, features) = fixture(EncoderChoice::Gcn, 21);
        let full = model.encode(&graph, &features);
        let mut eng = Engine::new(model, graph, features).unwrap();
        // default ef_search (96) covers the 60-node fixture -> exact
        for node in [0, 5, 33] {
            assert_eq!(eng.sim_top_k(node, 7).unwrap(), sim_oracle(&full, node, 7, None));
        }
        let s = eng.stats();
        assert!(s.ann.searches >= 3 && s.ann.indexed == eng.graph().num_nodes());
        assert!(s.cache.quantized_rows == eng.graph().num_nodes());
    }

    #[test]
    fn sim_top_k_stays_exact_after_add_edges_and_add_node() {
        let (model, graph, features) = fixture(EncoderChoice::Sage, 22);
        let mut eng = Engine::new(model, graph, features).unwrap();
        eng.sim_top_k(0, 5).unwrap(); // build full coverage
        eng.add_edges(&[(0, 30), (7, 44)]).unwrap();
        let row = vec![0.5; 6];
        let id = eng.add_node(&[2, 9], &row).unwrap();
        let full = eng.model().encode(eng.graph(), eng.features());
        for node in [0, 7, id] {
            assert_eq!(
                eng.sim_top_k(node, 6).unwrap(),
                sim_oracle(&full, node, 6, None),
                "node {node} after mutations"
            );
        }
    }

    #[test]
    fn sim_top_k_owned_filters_to_the_mask_and_anchor_variant_matches() {
        let (model, graph, features) = fixture(EncoderChoice::Gcn, 23);
        let n = graph.num_nodes();
        let full = model.encode(&graph, &features);
        let mut eng = Engine::new(model, graph, features).unwrap();
        let mask: Vec<bool> = (0..n).map(|v| v % 3 != 0).collect();
        eng.set_owned(mask.clone()).unwrap();
        let got = eng.sim_top_k_owned(1, 5).unwrap();
        assert_eq!(got, sim_oracle(&full, 1, 5, Some(&mask)));
        // shipping the anchor row explicitly gives the same answer
        let anchor = full.row(1).to_vec();
        let via_anchor = eng.sim_top_k_anchor(&anchor, Some(1), 5).unwrap();
        assert_eq!(via_anchor, got);
        // an anchor not resident here: no exclusion, still mask-filtered
        let foreign = eng.sim_top_k_anchor(&anchor, None, 5).unwrap();
        let mut oracle: Vec<(usize, f32)> = (0..n)
            .filter(|&v| mask[v])
            .map(|v| (v, dot(&anchor, full.row(v))))
            .collect();
        oracle.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        oracle.truncate(5);
        assert_eq!(foreign, oracle);
        assert!(matches!(
            eng.sim_top_k_anchor(&[0.0; 3], None, 5),
            Err(EngineError::FeatureWidth { got: 3, .. })
        ));
    }

    #[test]
    fn sim_top_k_scores_stay_exact_even_on_the_approximate_path() {
        use crate::ann::AnnParams;
        let (model, graph, features) = fixture(EncoderChoice::Gcn, 24);
        let full = model.encode(&graph, &features);
        let mut eng = Engine::new(model, graph, features).unwrap();
        // tiny beam: candidate set may be approximate, scores must not be
        eng.set_ann_params(AnnParams { m: 4, ef_construction: 8, ef_search: 8, seed: 7 });
        let got = eng.sim_top_k(3, 4).unwrap();
        assert!(!got.is_empty());
        for &(v, s) in &got {
            assert_ne!(v, 3, "anchor never returned");
            assert_eq!(s, dot(full.row(3), full.row(v)), "score for {v} must be exact f32");
        }
        assert!(eng.stats().ann.hops > 0, "small beam must walk the graph");
    }

    #[test]
    fn noop_add_edges_keeps_cache_warm() {
        let (model, graph, features) = fixture(EncoderChoice::Gcn, 6);
        let mut eng = Engine::new(model, graph, features).unwrap();
        eng.embed_batch(&[0, 1]).unwrap();
        let resident_before = eng.stats().cache.resident;
        // (0,1) is a path edge in the fixture, so this is a duplicate
        assert_eq!(eng.add_edges(&[(0, 1)]).unwrap(), 0);
        assert_eq!(eng.stats().cache.resident, resident_before);
    }

    #[test]
    fn stale_reads_serve_invalidated_rows_within_budget() {
        let (model, graph, features) = fixture(EncoderChoice::Gcn, 8);
        let n = graph.num_nodes();
        let mut eng = Engine::new(model, graph, features).unwrap();
        let all: Vec<usize> = (0..n).collect();
        let before = eng.embed_batch(&all).unwrap();
        let stale_count = eng.add_edges(&[(0, 12)]).unwrap();
        assert!(stale_count > 0);
        // Budget 1 answers every row without recomputing: invalidated rows
        // come back as the pre-mutation embeddings, marked stale.
        let misses_before = eng.stats().cache.misses;
        let (out, served_stale) = eng.embed_batch_stale(&all, 1).unwrap();
        assert_eq!(served_stale, stale_count as u64);
        assert_eq!(out.as_slice(), before.as_slice(), "stale reads = old rows");
        assert_eq!(eng.stats().cache.misses, misses_before, "no recompute");
        // Budget 0 recomputes and matches a cold encode exactly.
        let (fresh, served_stale) = eng.embed_batch_stale(&all, 0).unwrap();
        assert_eq!(served_stale, 0);
        let cold = eng.model().encode(eng.graph(), eng.features());
        assert_eq!(fresh.as_slice(), cold.as_slice());
    }

    #[test]
    fn fault_plan_trips_scheduled_reads_and_recovers() {
        let (model, graph, features) = fixture(EncoderChoice::Gcn, 9);
        let mut eng = Engine::new(model, graph, features).unwrap();
        eng.set_fault_plan(ServeFaultPlan {
            fail_read_every: Some(3),
            panic_read_at: None,
        });
        let mut outcomes = Vec::new();
        for _ in 0..6 {
            outcomes.push(eng.embed_batch(&[0]).is_ok());
        }
        assert_eq!(outcomes, [true, true, false, true, true, false]);
        // Clearing the plan stops the faults and the engine still answers.
        eng.set_fault_plan(ServeFaultPlan::default());
        for _ in 0..4 {
            assert!(eng.embed_batch(&[0]).is_ok());
        }
    }

    #[test]
    fn errors_leave_engine_untouched() {
        let (model, graph, features) = fixture(EncoderChoice::Gcn, 7);
        let n = graph.num_nodes();
        let mut eng = Engine::new(model, graph, features).unwrap();
        assert!(matches!(
            eng.embed_batch(&[n]),
            Err(EngineError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            eng.add_node(&[0], &[1.0]),
            Err(EngineError::FeatureWidth { got: 1, want: 6 })
        ));
        assert!(matches!(eng.add_edges(&[(0, n + 3)]), Err(EngineError::Graph(_))));
        assert_eq!(eng.graph().num_nodes(), n);
        // engine still answers after rejected requests
        assert_eq!(eng.embed_batch(&[0]).unwrap().rows(), 1);
    }
}
