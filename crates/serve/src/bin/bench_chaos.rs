//! `bench_chaos`: adversarial load harness for the fault-tolerant serving
//! runtime. It points a fleet of retrying clients plus a sequenced mutator at
//! an in-process server while chaos threads inject every failure mode the
//! runtime defends against — slow clients stalling mid-frame, abrupt
//! mid-frame disconnects, malformed and oversize frames — on top of a
//! pre-installed engine fault plan (transient read errors and a scheduled
//! panic). Afterwards it drains gracefully, replays the mutation WAL into a
//! fresh engine from the original bundle, and checks bit-parity of the full
//! embedding sweep, then writes `BENCH_chaos.json` with the SLO inputs:
//!
//! - `availability`: final-outcome success rate of the read fleet (retries
//!   allowed; a request only counts as failed if its retry budget ran out)
//! - `p50_ms` / `p99_ms`: client-observed read latency, retries included
//! - `recovery.parity` + `recovery.recovery_ms`: WAL replay correctness/time
//! - `leaked_threads`: handler threads still alive after everything joined
//!
//! ```text
//! bench_chaos [--out BENCH_chaos.json] [--seconds 6] [--clients 4] [--scale 0.3]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gcmae_core::{GcmaeConfig, ServeFaultPlan, TrainSession};
use gcmae_graph::generators::citation::{generate, CitationSpec};
use gcmae_serve::{
    load_bundle, replay, save_bundle, Client, DedupTable, Engine, Json, ResilientClient,
    RetryPolicy, Server, ServerOptions, Wal,
};
use std::io::{Read, Write};
use std::net::TcpStream;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_chaos.json".to_string());
    let seconds: f64 = flag(&args, "--seconds").and_then(|v| v.parse().ok()).unwrap_or(6.0);
    let clients: usize = flag(&args, "--clients").and_then(|v| v.parse().ok()).unwrap_or(4);
    let scale: f64 = flag(&args, "--scale").and_then(|v| v.parse().ok()).unwrap_or(0.3);

    // One small trained model; the bundle doubles as the pre-crash snapshot
    // the recovery check replays the WAL against.
    let ds = generate(&CitationSpec::cora().scaled(scale), 17);
    let cfg = GcmaeConfig { epochs: 2, ..GcmaeConfig::fast() };
    eprintln!(
        "training chaos model: {} nodes / {} edges",
        ds.num_nodes(),
        ds.graph.num_edges()
    );
    let trained = match TrainSession::new(&cfg).seed(17).run(&ds) {
        Ok(out) => out,
        Err(e) => unreachable!("unguarded session cannot fail: {e}"),
    };
    let bundle = save_bundle(&trained.model, &ds.graph, &ds.features);
    let n = ds.num_nodes();

    let wal_path = std::env::temp_dir().join(format!("gcmae_chaos_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal_path);

    let threads_before = thread_count();

    // Engine with chaos faults pre-installed: a transient failure roughly
    // every 97th read and one scheduled panic; both must stay contained.
    let (model, graph, features) = load_bundle(&bundle).expect("bundle");
    let mut engine = Engine::new(model, graph, features).expect("engine");
    engine.set_fault_plan(ServeFaultPlan { fail_read_every: Some(97), panic_read_at: Some(123) });

    let (wal, recovered) = Wal::open(&wal_path).expect("wal open");
    assert!(recovered.is_empty(), "fresh wal starts empty");
    let server = Server::start_with(
        engine,
        "127.0.0.1:0",
        ServerOptions {
            max_batch: 16,
            max_queue: 64,
            read_timeout: Some(Duration::from_millis(250)),
            write_timeout: Some(Duration::from_millis(1000)),
            wal: Some(wal),
            dedup: DedupTable::default(),
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let attempts = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicU64::new(0));
    let retries_total = Arc::new(AtomicU64::new(0));
    let reconnects_total = Arc::new(AtomicU64::new(0));

    // Read fleet: power-law node sampling, 80/10/10 embed/link/top-k mix.
    let mut fleet = Vec::new();
    for c in 0..clients {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        let attempts = Arc::clone(&attempts);
        let failures = Arc::clone(&failures);
        let retries_total = Arc::clone(&retries_total);
        let reconnects_total = Arc::clone(&reconnects_total);
        fleet.push(std::thread::spawn(move || -> Vec<f64> {
            let mut rc = ResilientClient::new(&addr, 1 + c as u64).with_policy(RetryPolicy {
                max_attempts: 6,
                base_backoff_ms: 2,
                max_backoff_ms: 50,
            });
            let mut rng = 0x9e37_0001_u64.wrapping_mul(1 + c as u64);
            let mut latencies = Vec::new();
            while !stop.load(Ordering::Acquire) {
                let op = splitmix(&mut rng) % 10;
                let begin = Instant::now();
                let ok = if op < 8 {
                    let nodes: Vec<usize> =
                        (0..4).map(|_| powerlaw(&mut rng, n)).collect();
                    rc.embed(&nodes).is_ok()
                } else if op == 8 {
                    let pairs: Vec<(usize, usize)> = (0..4)
                        .map(|_| (powerlaw(&mut rng, n), powerlaw(&mut rng, n)))
                        .collect();
                    rc.link_scores(&pairs).is_ok()
                } else {
                    rc.top_k(powerlaw(&mut rng, n), 8).is_ok()
                };
                latencies.push(begin.elapsed().as_secs_f64() * 1e3);
                attempts.fetch_add(1, Ordering::Relaxed);
                if !ok {
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            }
            retries_total.fetch_add(rc.retries(), Ordering::Relaxed);
            reconnects_total.fetch_add(rc.reconnects(), Ordering::Relaxed);
            latencies
        }));
    }

    // Sequenced mutator: every ack is WAL-durable and goes into the local
    // ledger the recovery check compares edge counts against.
    let mutator = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> (u64, u64) {
            let mut rc = ResilientClient::new(&addr, 1000);
            let mut rng = 0xfeed_f00d_u64;
            let (mut acked, mut failed) = (0_u64, 0_u64);
            while !stop.load(Ordering::Acquire) {
                let u = powerlaw(&mut rng, n);
                let v = (u + 1 + (splitmix(&mut rng) as usize % (n - 1))) % n;
                match rc.add_edges(&[(u.min(v), u.max(v))]) {
                    Ok(_) => acked += 1,
                    Err(_) => failed += 1,
                }
                std::thread::sleep(Duration::from_millis(15));
            }
            (acked, failed)
        })
    };

    // Chaos: slow client (stalls past the read timeout mid-frame), abrupt
    // mid-frame disconnects, malformed frames and oversize prefixes.
    let chaos = spawn_chaos(&addr, &stop);

    std::thread::sleep(Duration::from_secs_f64(seconds));
    stop.store(true, Ordering::Release);

    let mut latencies: Vec<f64> = Vec::new();
    for w in fleet {
        latencies.extend(w.join().expect("reader"));
    }
    let (mutations_acked, mutations_failed) = mutator.join().expect("mutator");
    for c in chaos {
        c.join().expect("chaos thread");
    }

    let mut stats_client = Client::connect(&addr).expect("stats connect");
    let stats = stats_client.stats().expect("stats");
    drop(stats_client);

    // Graceful drain; the scheduler syncs the WAL before exiting.
    let engine_a = server.shutdown().expect("post-chaos engine");

    // Crash recovery: reopen the WAL as a restarted process would, replay it
    // onto a fresh engine from the pre-chaos bundle, and demand bit-parity
    // of the full embedding sweep against the engine that lived through it.
    let recovery_started = Instant::now();
    let (_wal2, records) = Wal::open(&wal_path).expect("wal reopen");
    let (model_b, graph_b, features_b) = load_bundle(&bundle).expect("bundle reload");
    let mut engine_b = Engine::new(model_b, graph_b, features_b).expect("recovered engine");
    let dedup = replay(&mut engine_b, &records).expect("wal replay");
    let recovery_ms = recovery_started.elapsed().as_secs_f64() * 1e3;

    let mut engine_a = engine_a;
    let all: Vec<usize> = (0..n).collect();
    let sweep_a = engine_a.embed_batch(&all).expect("sweep a");
    let sweep_b = engine_b.embed_batch(&all).expect("sweep b");
    let mut parity = engine_a.graph().num_edges() == engine_b.graph().num_edges();
    for i in 0..n {
        if sweep_a.row(i).len() != sweep_b.row(i).len()
            || sweep_a
                .row(i)
                .iter()
                .zip(sweep_b.row(i))
                .any(|(x, y)| x.to_bits() != y.to_bits())
        {
            parity = false;
            eprintln!("parity break at node {i}");
            break;
        }
    }

    std::thread::sleep(Duration::from_millis(300));
    let threads_after = thread_count();
    let leaked_threads = threads_after.saturating_sub(threads_before);
    let _ = std::fs::remove_file(&wal_path);

    latencies.sort_by(f64::total_cmp);
    let total = attempts.load(Ordering::Relaxed);
    let failed = failures.load(Ordering::Relaxed);
    let availability = if total > 0 { 1.0 - failed as f64 / total as f64 } else { 0.0 };

    eprintln!(
        "reads: {total} attempts, {failed} failed -> availability {availability:.4}"
    );
    eprintln!(
        "p50={:.3}ms p99={:.3}ms retries={} reconnects={}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        retries_total.load(Ordering::Relaxed),
        reconnects_total.load(Ordering::Relaxed),
    );
    eprintln!(
        "mutations: {mutations_acked} acked / {mutations_failed} failed; wal={} records; \
         replay -> {} records, {} dedup entries, parity={parity}, {recovery_ms:.1}ms",
        stats.wal_records,
        records.len(),
        dedup.len(),
    );
    eprintln!(
        "faults seen: shed={} expired={} dedup_hits={} slow_closes={} \
         leaked_threads={leaked_threads}",
        stats.shed, stats.expired, stats.dedup_hits, stats.slow_closes,
    );

    let doc = Json::Obj(vec![
        ("bench".into(), Json::str("chaos")),
        ("graph_nodes".into(), Json::int(n)),
        ("seconds".into(), Json::num(seconds)),
        ("clients".into(), Json::int(clients)),
        ("read_attempts".into(), Json::int(total as usize)),
        ("read_failures".into(), Json::int(failed as usize)),
        ("availability".into(), Json::num(availability)),
        ("p50_ms".into(), Json::num(percentile(&latencies, 0.50))),
        ("p99_ms".into(), Json::num(percentile(&latencies, 0.99))),
        (
            "client_retries".into(),
            Json::int(retries_total.load(Ordering::Relaxed) as usize),
        ),
        (
            "client_reconnects".into(),
            Json::int(reconnects_total.load(Ordering::Relaxed) as usize),
        ),
        ("mutations_acked".into(), Json::int(mutations_acked as usize)),
        ("mutations_failed".into(), Json::int(mutations_failed as usize)),
        (
            "server".into(),
            Json::Obj(vec![
                ("shed".into(), Json::int(stats.shed as usize)),
                ("expired".into(), Json::int(stats.expired as usize)),
                ("dedup_hits".into(), Json::int(stats.dedup_hits as usize)),
                ("wal_records".into(), Json::int(stats.wal_records as usize)),
                ("stale_served".into(), Json::int(stats.stale_served as usize)),
                ("slow_closes".into(), Json::int(stats.slow_closes as usize)),
            ]),
        ),
        (
            "recovery".into(),
            Json::Obj(vec![
                ("replayed".into(), Json::int(records.len())),
                ("dedup_entries".into(), Json::int(dedup.len())),
                ("parity".into(), Json::Bool(parity)),
                ("recovery_ms".into(), Json::num(recovery_ms)),
            ]),
        ),
        ("leaked_threads".into(), Json::int(leaked_threads)),
    ]);
    std::fs::write(&out_path, doc.dump()).expect("write bench output");
    eprintln!("wrote {out_path}");

    if !parity {
        std::process::exit(1);
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Skewed node sampling: a cubed uniform concentrates ~87% of draws in the
/// lowest third of ids, giving the cache a hot set like real traffic.
fn powerlaw(state: &mut u64, n: usize) -> usize {
    let u = (splitmix(state) >> 11) as f64 / (1_u64 << 53) as f64;
    ((n as f64 * u * u * u) as usize).min(n - 1)
}

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn spawn_chaos(addr: &str, stop: &Arc<AtomicBool>) -> Vec<std::thread::JoinHandle<()>> {
    let mut handles = Vec::new();

    // Slow client: promises a 10-byte frame, delivers 3 bytes, then stalls
    // past the server's read timeout. The server must cut it loose with a
    // typed error without stalling anyone else.
    {
        let addr = addr.to_string();
        let stop = Arc::clone(stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                if let Ok(mut s) = TcpStream::connect(&addr) {
                    let _ = s.write_all(&10_u32.to_le_bytes());
                    let _ = s.write_all(b"{\"o");
                    std::thread::sleep(Duration::from_millis(400));
                    let mut sink = Vec::new();
                    let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                    let _ = s.read_to_end(&mut sink);
                }
            }
        }));
    }

    // Mid-frame disconnect: half a frame, then the socket vanishes.
    {
        let addr = addr.to_string();
        let stop = Arc::clone(stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                if let Ok(mut s) = TcpStream::connect(&addr) {
                    let _ = s.write_all(&64_u32.to_le_bytes());
                    let _ = s.write_all(b"{\"op\":\"embed\"");
                    drop(s);
                }
                std::thread::sleep(Duration::from_millis(40));
            }
        }));
    }

    // Malformed frames: garbage bodies and an absurd length prefix. Each
    // earns a typed protocol error and a closed connection — never a panic.
    {
        let addr = addr.to_string();
        let stop = Arc::clone(stop);
        handles.push(std::thread::spawn(move || {
            let mut flip = false;
            while !stop.load(Ordering::Acquire) {
                if let Ok(mut s) = TcpStream::connect(&addr) {
                    if flip {
                        let _ = s.write_all(&5_u32.to_le_bytes());
                        let _ = s.write_all(b"nope!");
                    } else {
                        let _ = s.write_all(&u32::MAX.to_le_bytes());
                    }
                    flip = !flip;
                    let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                    let mut sink = Vec::new();
                    let _ = s.read_to_end(&mut sink);
                }
                std::thread::sleep(Duration::from_millis(40));
            }
        }));
    }

    handles
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}
