//! `gcmae-serve`: train a small checkpoint bundle, serve it over TCP, query
//! a running server, or run the end-to-end selftest used by CI.
//!
//! ```text
//! gcmae-serve train --out ckpt.bin [--scale 0.05] [--epochs 3] [--seed 0]
//! gcmae-serve serve --checkpoint ckpt.bin [--addr 127.0.0.1:7431] [--max-batch 32]
//!             [--backend reference|simd] [--metrics-jsonl events.jsonl]
//!             [--wal mutations.wal] [--max-queue 0] [--stale-epochs 0]
//!             [--read-timeout-ms 10000] [--write-timeout-ms 10000]
//!             [--shard-manifest tier/manifest.json --shard-index 0]
//! gcmae-serve query --addr 127.0.0.1:7431 embed 0 1 2
//! gcmae-serve query --addr 127.0.0.1:7431 link 0:1 4:9
//! gcmae-serve query --addr 127.0.0.1:7431 topk 5 3
//! gcmae-serve query --addr 127.0.0.1:7431 simtopk 5 10
//! gcmae-serve query --addr 127.0.0.1:7431 ping|stats|metrics|shutdown
//! gcmae-serve selftest
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use gcmae_core::{GcmaeConfig, TrainOutput, TrainSession};
use gcmae_graph::generators::citation::{generate, CitationSpec};
use gcmae_graph::Dataset;
use gcmae_obs::{JsonlObserver, Observer};
use gcmae_serve::{
    load_bundle, replay, save_bundle, Client, DedupTable, Engine, Json, Partition, Server,
    ServerOptions, Wal,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("selftest") => cmd_selftest(),
        _ => Err("usage: gcmae-serve <train|serve|query|selftest> [options]".to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gcmae-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("bad value for {name}: {raw}")),
    }
}

/// Unguarded training run; the unguarded regime cannot fail.
fn train_model(ds: &Dataset, cfg: &GcmaeConfig, seed: u64) -> TrainOutput {
    match TrainSession::new(cfg).seed(seed).run(ds) {
        Ok(out) => out,
        Err(e) => unreachable!("unguarded session cannot fail: {e}"),
    }
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("train needs --out <file>")?;
    let scale: f64 = parse_flag(args, "--scale", 0.05)?;
    let epochs: usize = parse_flag(args, "--epochs", 3)?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let ds = generate(&CitationSpec::cora().scaled(scale), seed);
    let cfg = GcmaeConfig {
        epochs,
        ..GcmaeConfig::fast()
    };
    println!(
        "training {} epochs on {} nodes / {} edges...",
        epochs,
        ds.num_nodes(),
        ds.graph.num_edges()
    );
    let trained = train_model(&ds, &cfg, seed);
    let bundle = save_bundle(&trained.model, &ds.graph, &ds.features);
    std::fs::write(&out, &bundle).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {} ({} bytes)", out, bundle.len());
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--checkpoint").ok_or("serve needs --checkpoint <file>")?;
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7431".to_string());
    let max_batch: usize = parse_flag(args, "--max-batch", 32)?;
    if let Some(raw) = flag(args, "--backend") {
        let b = gcmae_tensor::backend::parse_backend(&raw)
            .ok_or(format!("bad value for --backend (want reference|simd): {raw}"))?;
        gcmae_tensor::backend::set_backend(b);
    }
    let blob = std::fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (model, graph, features) = load_bundle(&blob).map_err(|e| e.to_string())?;
    println!(
        "loaded {}: {} nodes, {} edges, dim {} -> {}",
        path,
        graph.num_nodes(),
        graph.num_edges(),
        features.cols(),
        model.config().hidden_dim
    );
    let mut engine = Engine::new(model, graph, features).map_err(|e| e.to_string())?;
    // Shard sidecar mode: the checkpoint is one shard's slice (written by
    // `gcmae-gateway partition`); install the tier manifest's ownership
    // mask *before* WAL replay, so replayed halo `add_node`s extend the
    // mask truthfully instead of defaulting to owned.
    if let Some(manifest_path) = flag(args, "--shard-manifest") {
        let index: usize = flag(args, "--shard-index")
            .ok_or("--shard-manifest needs --shard-index <n>")?
            .parse()
            .map_err(|_| "bad value for --shard-index".to_string())?;
        let text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {manifest_path}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{manifest_path}: {e}"))?;
        let partition = Partition::from_json(&doc).map_err(|e| e.to_string())?;
        let spec = partition
            .shards
            .get(index)
            .ok_or(format!("--shard-index {index} out of range"))?;
        engine
            .set_owned(spec.owned.clone())
            .map_err(|e| format!("ownership mask: {e}"))?;
        println!(
            "shard {index}/{}: {} residents ({} owned, halo depth {})",
            partition.num_shards(),
            spec.residents.len(),
            spec.owned_nodes(),
            partition.halo_depth
        );
    }
    let events: Option<Arc<dyn Observer>> = match flag(args, "--metrics-jsonl") {
        Some(path) => {
            let sink =
                JsonlObserver::create(&path).map_err(|e| format!("cannot open {path}: {e}"))?;
            println!("streaming request events to {path}");
            Some(Arc::new(sink))
        }
        None => None,
    };
    // Durability: with --wal, replay any surviving mutation log onto the
    // freshly loaded bundle before taking traffic, then log every new
    // acknowledged mutation to the same file.
    let (wal, dedup) = match flag(args, "--wal") {
        Some(path) => {
            let (wal, records) = Wal::open(&path).map_err(|e| format!("wal {path}: {e}"))?;
            let dedup = replay(&mut engine, &records)
                .map_err(|e| format!("wal replay {path}: {e}"))?;
            println!(
                "replayed {} durable mutations from {path} ({} client sequences)",
                records.len(),
                dedup.len()
            );
            (Some(wal), dedup)
        }
        None => (None, DedupTable::default()),
    };
    let max_queue: usize = parse_flag(args, "--max-queue", 0)?;
    let stale_epochs: u64 = parse_flag(args, "--stale-epochs", 0)?;
    let read_timeout_ms: u64 = parse_flag(args, "--read-timeout-ms", 10_000)?;
    let write_timeout_ms: u64 = parse_flag(args, "--write-timeout-ms", 10_000)?;
    let to = |ms: u64| (ms > 0).then(|| std::time::Duration::from_millis(ms));
    let server = Server::start_with(
        engine,
        &addr,
        ServerOptions {
            max_batch,
            events,
            max_queue,
            stale_epochs,
            read_timeout: to(read_timeout_ms),
            write_timeout: to(write_timeout_ms),
            wal,
            dedup,
        },
    )
    .map_err(|e| e.to_string())?;
    // Surface the backend selection everywhere telemetry is read from: the
    // scheduler registry (behind the `metrics` op), any global observer, and
    // the startup banner.
    gcmae_tensor::backend::publish_to(&*server.metrics());
    gcmae_tensor::backend::publish();
    println!(
        "serving on {} (max batch {max_batch}, kernel backend {}); send shutdown to stop",
        server.addr(),
        gcmae_tensor::backend::active_backend()
    );
    server.run_until_shutdown();
    println!("server stopped");
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7431".to_string());
    // positional args start after the flags
    let mut rest: Vec<&String> = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a == "--addr" {
            skip = true;
            continue;
        }
        let _ = i;
        rest.push(a);
    }
    let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
    match rest.first().map(|s| s.as_str()) {
        Some("ping") => {
            client.ping().map_err(|e| e.to_string())?;
            println!("pong");
        }
        Some("stats") => {
            let s = client.stats().map_err(|e| e.to_string())?;
            println!(
                "nodes {} edges {} dim {} backend {}\ncache: {} hits / {} misses, {} resident, epoch {}, {} invalidated\nscheduler: {} batches / {} jobs (max batch {})",
                s.num_nodes,
                s.num_edges,
                s.embed_dim,
                s.backend,
                s.cache_hits,
                s.cache_misses,
                s.cache_resident,
                s.cache_epoch,
                s.invalidated,
                s.batches,
                s.batched_jobs,
                s.max_batch
            );
            if !s.objective.is_empty() {
                println!("objective: {}", s.objective);
            }
            // Pre-v4 servers parse these as zero; only show a live store.
            if s.quantized_rows > 0 {
                println!(
                    "quantized store: {} rows, {:.1} B/node\nann: {} indexed, {} inserts, {} searches, {} hops, {} B resident",
                    s.quantized_rows,
                    s.quantized_bytes as f64 / s.quantized_rows as f64,
                    s.ann_indexed,
                    s.ann_inserts,
                    s.ann_searches,
                    s.ann_hops,
                    s.ann_resident_bytes
                );
            }
        }
        Some("metrics") => {
            let snap = client.metrics().map_err(|e| e.to_string())?;
            print!("{}", snap.to_prometheus());
        }
        Some("shutdown") => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server asked to stop");
        }
        Some("embed") => {
            let nodes = parse_ids(&rest[1..])?;
            for (node, row) in nodes
                .iter()
                .zip(client.embed(&nodes).map_err(|e| e.to_string())?)
            {
                let text: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
                println!("{node}\t[{}]", text.join(", "));
            }
        }
        Some("link") => {
            let pairs = parse_pairs(&rest[1..])?;
            for (&(u, v), s) in pairs
                .iter()
                .zip(client.link_scores(&pairs).map_err(|e| e.to_string())?)
            {
                println!("{u}:{v}\t{s}");
            }
        }
        Some("topk") => {
            let ids = parse_ids(&rest[1..])?;
            let (node, k) = match ids.as_slice() {
                [node, k] => (*node, *k),
                _ => return Err("topk needs <node> <k>".to_string()),
            };
            for (v, s) in client.top_k(node, k).map_err(|e| e.to_string())? {
                println!("{v}\t{s}");
            }
        }
        Some("simtopk") => {
            let ids = parse_ids(&rest[1..])?;
            let (node, k) = match ids.as_slice() {
                [node, k] => (*node, *k),
                _ => return Err("simtopk needs <node> <k>".to_string()),
            };
            for (v, s) in client.sim_top_k(node, k).map_err(|e| e.to_string())? {
                println!("{v}\t{s}");
            }
        }
        _ => {
            return Err(
                "query needs one of: ping stats metrics embed link topk simtopk shutdown"
                    .to_string(),
            )
        }
    }
    Ok(())
}

fn parse_ids(args: &[&String]) -> Result<Vec<usize>, String> {
    args.iter()
        .map(|a| a.parse().map_err(|_| format!("bad node id: {a}")))
        .collect()
}

fn parse_pairs(args: &[&String]) -> Result<Vec<(usize, usize)>, String> {
    args.iter()
        .map(|a| {
            let (u, v) = a
                .split_once(':')
                .ok_or(format!("bad pair (want u:v): {a}"))?;
            Ok((
                u.parse().map_err(|_| format!("bad pair: {a}"))?,
                v.parse().map_err(|_| format!("bad pair: {a}"))?,
            ))
        })
        .collect()
}

/// End-to-end smoke used by CI: train a tiny checkpoint, serve it over real
/// TCP, and assert that concurrent clients see answers bit-identical to the
/// offline `encode()` — before and after an incremental `add_edges`.
fn cmd_selftest() -> Result<(), String> {
    let seed = 7;
    let ds = generate(&CitationSpec::cora().scaled(0.02), seed);
    let cfg = GcmaeConfig {
        epochs: 3,
        ..GcmaeConfig::fast()
    };
    println!(
        "[1/5] training {} epochs on {} nodes / {} edges",
        cfg.epochs,
        ds.num_nodes(),
        ds.graph.num_edges()
    );
    let trained = train_model(&ds, &cfg, seed);

    println!("[2/5] bundle round-trip");
    let bundle = save_bundle(&trained.model, &ds.graph, &ds.features);
    let (model, graph, features) = load_bundle(&bundle).map_err(|e| e.to_string())?;
    let offline = model.encode(&graph, &features);
    let direct = trained.model.encode(&ds.graph, &ds.features);
    if offline.as_slice() != direct.as_slice() {
        return Err("bundle round-trip changed embeddings".to_string());
    }

    println!("[3/5] serving on localhost, 8 concurrent clients");
    let n = graph.num_nodes();
    let engine = Engine::new(model, graph, features).map_err(|e| e.to_string())?;
    let server = Server::start(engine, "127.0.0.1:0", 32).map_err(|e| e.to_string())?;
    let addr = server.addr().to_string();
    let mut workers = Vec::new();
    for t in 0..8_usize {
        let addr = addr.clone();
        workers.push(std::thread::spawn(
            move || -> Result<(Vec<usize>, Vec<Vec<f32>>), String> {
                let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
                let nodes: Vec<usize> = (0..6).map(|i| (t * 13 + i * 7) % n).collect();
                let rows = client.embed(&nodes).map_err(|e| e.to_string())?;
                Ok((nodes, rows))
            },
        ));
    }
    for w in workers {
        let (nodes, rows) = w.join().map_err(|_| "client thread panicked")??;
        for (row, &v) in rows.iter().zip(&nodes) {
            if row.as_slice() != offline.row(v) {
                return Err(format!("embedding mismatch at node {v}"));
            }
        }
    }

    println!("[4/5] link scores + incremental add_edges parity");
    let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
    let pairs = [(0, 1), (2, n - 2), (10, 10)];
    let scores = client.link_scores(&pairs).map_err(|e| e.to_string())?;
    for (&(u, v), s) in pairs.iter().zip(&scores) {
        let want: f32 = offline
            .row(u)
            .iter()
            .zip(offline.row(v))
            .map(|(a, b)| a * b)
            .sum();
        if *s != want {
            return Err(format!("link score mismatch for ({u},{v})"));
        }
    }
    let new_edges = [(0, n - 1), (5, n / 2)];
    client.add_edges(&new_edges).map_err(|e| e.to_string())?;
    let all: Vec<usize> = (0..n).collect();
    let served = client.embed(&all).map_err(|e| e.to_string())?;
    // expected: a cold encode on the same post-mutation graph
    let (mutated, _) = ds.graph.add_edges(&new_edges).map_err(|e| e.to_string())?;
    let expected = trained.model.encode(&mutated, &ds.features);
    for (v, row) in served.iter().enumerate() {
        if row.as_slice() != expected.row(v) {
            return Err(format!("post-mutation mismatch at node {v}"));
        }
    }

    println!("[5/5] stats + metrics + shutdown");
    let stats = client.stats().map_err(|e| e.to_string())?;
    println!(
        "cache: {} hits / {} misses",
        stats.cache_hits, stats.cache_misses
    );
    if stats.cache_hits == 0 {
        return Err("expected at least one cache hit".to_string());
    }
    let snap = client.metrics().map_err(|e| e.to_string())?;
    let embeds = snap
        .counters
        .iter()
        .find(|(k, _)| k == "serve.requests.embed")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    // 8 selftest workers + the all-nodes sweep above
    if embeds < 9 {
        return Err(format!("metrics op undercounts embed requests: {embeds}"));
    }
    if !snap
        .histograms
        .iter()
        .any(|h| h.name == "serve.request.ns" && h.count > 0)
    {
        return Err("metrics op is missing the request latency histogram".to_string());
    }
    client.shutdown().map_err(|e| e.to_string())?;
    server.run_until_shutdown();
    println!("SELFTEST PASS");
    Ok(())
}
