//! `bench_ann`: measures the quantized store + ANN index against exact
//! brute-force search, and writes `BENCH_ann.json`.
//!
//! Two sections:
//!
//! - **Store-level sweep** (`sizes`): seeded clustered unit-norm vectors are
//!   loaded into a [`QuantStore`] and an [`AnnIndex`] at n up to 1M. For a
//!   sampled query set, ANN top-10 (candidates from the index, scores
//!   re-computed from exact f32 rows) is compared to an exact full-scan
//!   oracle: recall@10, ANN vs brute-force latency, and resident bytes per
//!   node vs the 4d-byte f32 baseline.
//! - **Served section** (`served`): a small engine behind a real
//!   [`Server`] answers `sim_top_k` over TCP; latency is measured
//!   client-side, answers are checked against an oracle built from the
//!   served f32 rows, and the process thread count must return to baseline
//!   after shutdown (zero leaked threads).
//!
//! ```text
//! bench_ann [--out BENCH_ann.json] [--n-max 1048576] [--queries 100] [--dim 32]
//! ```

use std::time::Instant;

use gcmae_core::{model::seeded_rng, EncoderChoice, Gcmae, GcmaeConfig};
use gcmae_graph::Graph;
use gcmae_serve::{AnnIndex, AnnParams, Client, Engine, Json, QuantMode, QuantStore, Server};
use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Store-level sweep sizes, capped by `--n-max`.
const SIZES: [usize; 5] = [4_096, 16_384, 65_536, 262_144, 1_048_576];

/// Index parameters for the sweep (also recorded in the output).
const SWEEP_PARAMS: AnnParams = AnnParams {
    m: 16,
    ef_construction: 128,
    ef_search: 160,
    seed: 0x5eed_cafe,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_ann.json".to_string());
    let n_max: usize = flag(&args, "--n-max")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_048_576);
    let queries: usize = flag(&args, "--queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let dim: usize = flag(&args, "--dim")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);

    let mut rows = Vec::new();
    for &n in SIZES.iter().filter(|&&n| n <= n_max) {
        rows.push(run_size(n, dim, queries));
    }
    let served = run_served();

    let doc = Json::Obj(vec![
        ("bench".into(), Json::str("ann")),
        ("dim".into(), Json::int(dim)),
        ("queries".into(), Json::int(queries)),
        ("f32_bytes_per_node".into(), Json::int(4 * dim)),
        ("ann_m".into(), Json::int(SWEEP_PARAMS.m)),
        ("ann_ef_construction".into(), Json::int(SWEEP_PARAMS.ef_construction)),
        ("ann_ef_search".into(), Json::int(SWEEP_PARAMS.ef_search)),
        ("sizes".into(), Json::Arr(rows)),
        ("served".into(), served),
    ]);
    std::fs::write(&out_path, doc.dump()).expect("write bench output");
    eprintln!("wrote {out_path}");
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Seeded clustered vectors, unit-normalized so dot product ranks like
/// cosine (the standard MIPS-to-cosine reduction; encoder embeddings have
/// bounded, similar norms, which this models).
fn synth_rows(n: usize, d: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers = (n / 64).clamp(16, 1_024);
    let mut c = vec![0.0_f32; centers * d];
    for v in c.iter_mut() {
        *v = rng.gen_range(-1.0..1.0);
    }
    let mut rows = vec![0.0_f32; n * d];
    for i in 0..n {
        let ci = i % centers;
        let row = &mut rows[i * d..(i + 1) * d];
        for (j, v) in row.iter_mut().enumerate() {
            *v = c[ci * d + j] + 0.25 * rng.gen_range(-1.0_f32..1.0);
        }
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
        for v in row.iter_mut() {
            *v /= norm;
        }
    }
    rows
}

/// The engine's fixed f32 reduction order.
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Exact top-`k` by full scan over the f32 rows, ranked score-desc with the
/// id tie-break.
fn brute_top_k(rows: &[f32], d: usize, anchor: &[f32], k: usize) -> Vec<(usize, f32)> {
    let n = rows.len() / d;
    let mut ranked: Vec<(usize, f32)> = (0..n)
        .map(|v| (v, dot(anchor, &rows[v * d..(v + 1) * d])))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run_size(n: usize, d: usize, queries: usize) -> Json {
    eprintln!("n={n}: generating + quantizing");
    let rows = synth_rows(n, d, 0xA55E55ED ^ n as u64);
    let mut store = QuantStore::new(n, d, QuantMode::I8);
    for v in 0..n {
        store.put(v, &rows[v * d..(v + 1) * d]);
    }
    let mut index = AnnIndex::new(n, d, SWEEP_PARAMS);
    let build_start = Instant::now();
    for v in 0..n {
        index.insert(v, &store);
    }
    let build_s = build_start.elapsed().as_secs_f64();

    let k = 10;
    let anchors: Vec<usize> = (0..queries).map(|i| i * n / queries).collect();
    let mut brute_lat = Vec::with_capacity(queries);
    let mut ann_lat = Vec::with_capacity(queries);
    let mut hits = 0_usize;
    for &a in &anchors {
        let anchor = &rows[a * d..(a + 1) * d];
        let t = Instant::now();
        let exact = brute_top_k(&rows, d, anchor, k);
        brute_lat.push(t.elapsed().as_secs_f64() * 1e3);

        let t = Instant::now();
        let candidates = index.search(&store, anchor, SWEEP_PARAMS.ef_search);
        let mut approx: Vec<(usize, f32)> = candidates
            .into_iter()
            .map(|v| {
                let v = v as usize;
                (v, dot(anchor, &rows[v * d..(v + 1) * d]))
            })
            .collect();
        approx.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        approx.truncate(k);
        ann_lat.push(t.elapsed().as_secs_f64() * 1e3);

        hits += approx
            .iter()
            .filter(|(v, _)| exact.iter().any(|(e, _)| e == v))
            .count();
    }
    brute_lat.sort_by(f64::total_cmp);
    ann_lat.sort_by(f64::total_cmp);
    let recall = hits as f64 / (queries * k) as f64;
    let stats = index.stats();
    let bytes_per_node = store.bytes_per_node();
    let index_bytes_per_node = stats.resident_bytes as f64 / n as f64;
    let brute_p50 = percentile(&brute_lat, 0.50);
    let ann_p50 = percentile(&ann_lat, 0.50);
    let speedup = if ann_p50 > 0.0 { brute_p50 / ann_p50 } else { 0.0 };
    eprintln!(
        "n={n}: build={build_s:.1}s recall@10={recall:.3} ann_p50={ann_p50:.3}ms \
         brute_p50={brute_p50:.3}ms speedup={speedup:.1}x store={bytes_per_node:.1}B/node \
         index={index_bytes_per_node:.1}B/node"
    );
    Json::Obj(vec![
        ("n".into(), Json::int(n)),
        ("build_s".into(), Json::num(build_s)),
        ("recall_at_10".into(), Json::num(recall)),
        ("ann_p50_ms".into(), Json::num(ann_p50)),
        ("ann_p99_ms".into(), Json::num(percentile(&ann_lat, 0.99))),
        ("brute_p50_ms".into(), Json::num(brute_p50)),
        ("brute_p99_ms".into(), Json::num(percentile(&brute_lat, 0.99))),
        ("speedup_p50".into(), Json::num(speedup)),
        ("bytes_per_node".into(), Json::num(bytes_per_node)),
        ("index_bytes_per_node".into(), Json::num(index_bytes_per_node)),
        (
            "hops_per_search".into(),
            Json::num(stats.hops as f64 / stats.searches.max(1) as f64),
        ),
    ])
}

fn thread_count() -> i64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// End-to-end `sim_top_k` over TCP against a real server: latency, recall
/// vs an oracle built from the served f32 rows, and the leaked-thread
/// check. The model is untrained — serving exactness does not depend on
/// training, and skipping it keeps the bench fast.
fn run_served() -> Json {
    let baseline_threads = thread_count();
    let n = 4_096;
    let mut rng = seeded_rng(17);
    let mut edges: Vec<(usize, usize)> = (1..n).map(|v| (v - 1, v)).collect();
    for _ in 0..(2 * n) {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            edges.push((u, v));
        }
    }
    let graph = Graph::from_edges(n, &edges);
    let features = Matrix::uniform(n, 16, -1.0, 1.0, &mut rng);
    let cfg = GcmaeConfig {
        encoder: EncoderChoice::Sage,
        hidden_dim: 32,
        proj_dim: 16,
        ..GcmaeConfig::fast()
    };
    let model = Gcmae::new(&cfg, 16, &mut rng);
    let engine = Engine::new(model, graph, features).expect("engine");
    let server = Server::start(engine, "127.0.0.1:0", 32).expect("bind");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");

    // Oracle rows straight from the server (bit-identical to the engine).
    let all: Vec<usize> = (0..n).collect();
    let rows_nested = client.embed(&all).expect("embed all");
    let d = rows_nested[0].len();
    let rows: Vec<f32> = rows_nested.into_iter().flatten().collect();

    let k = 10;
    let queries = 64;
    let mut lat = Vec::with_capacity(queries);
    let mut hits = 0_usize;
    for i in 0..queries {
        let a = i * n / queries;
        let t = Instant::now();
        let got = client.sim_top_k(a, k).expect("sim_top_k");
        lat.push(t.elapsed().as_secs_f64() * 1e3);
        let anchor = &rows[a * d..(a + 1) * d];
        let mut exact = brute_top_k(&rows, d, anchor, k + 1);
        exact.retain(|&(v, _)| v != a);
        exact.truncate(k);
        hits += got
            .iter()
            .filter(|(v, _)| exact.iter().any(|(e, _)| e == v))
            .count();
        // Returned scores must be exact f32 re-scores, bit-equal to the
        // oracle's dots.
        for &(v, score) in &got {
            let want = dot(anchor, &rows[v * d..(v + 1) * d]);
            assert_eq!(score.to_bits(), want.to_bits(), "score drift at node {v}");
        }
    }
    lat.sort_by(f64::total_cmp);
    let recall = hits as f64 / (queries * k) as f64;
    let stats = client.stats().expect("stats");
    drop(client);
    server.shutdown();
    // Handler threads poll their stop flags on the read-timeout tick.
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    let mut leaked = thread_count() - baseline_threads;
    while leaked > 0 && Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(50));
        leaked = thread_count() - baseline_threads;
    }
    eprintln!(
        "served n={n}: sim_top_k p50={:.3}ms p99={:.3}ms recall@10={recall:.3} leaked={leaked}",
        percentile(&lat, 0.50),
        percentile(&lat, 0.99),
    );
    Json::Obj(vec![
        ("n".into(), Json::int(n)),
        ("queries".into(), Json::int(queries)),
        ("sim_top_k_p50_ms".into(), Json::num(percentile(&lat, 0.50))),
        ("sim_top_k_p99_ms".into(), Json::num(percentile(&lat, 0.99))),
        ("recall_at_10".into(), Json::num(recall)),
        ("ann_indexed".into(), Json::int(stats.ann_indexed)),
        ("quantized_rows".into(), Json::int(stats.quantized_rows)),
        (
            "bytes_per_node".into(),
            Json::num(stats.quantized_bytes as f64 / stats.quantized_rows.max(1) as f64),
        ),
        ("leaked_threads".into(), Json::int(leaked.max(0) as usize)),
    ])
}
