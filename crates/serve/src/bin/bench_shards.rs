//! `bench_shards`: measures read throughput of sharded serving tiers at
//! S = 1, 2, 4 shards under a mutation-heavy workload, verifies bit-exact
//! parity against a single-process encode of the same mutation ledger, and
//! writes `BENCH_shards.json`.
//!
//! Every tier — including S = 1 — is measured *through a gateway*, so the
//! gateway's routing overhead is common-mode and the ratio isolates what
//! sharding buys. The workload is what sharding is for: a graph that
//! *partitions well* (a ring lattice: every halo ball is a short arc, so
//! BFS regions own their neighborhoods outright) under sustained mutations,
//! each one a WAL fsync + invalidation barrier on its owning shard.
//! Mutators pin themselves to region interiors — nodes whose repair ball
//! cannot escape the owning region — so at S = 4 concurrent mutations pin
//! *different* shards, their fsyncs overlap, and reads on untouched shards
//! keep flowing. At S = 1 the same storm funnels every fsync through one
//! serialization point and every read queues behind it — which is why read
//! q/s scales even on a single core. A small-world graph would not show
//! this: its halo balls span every region, every repair plan fans out
//! tier-wide, and sharding buys nothing (that regime is measured, and
//! documented as the anti-case, in DESIGN.md).
//!
//! The model is random-initialized rather than trained: serving cost
//! depends on the architecture (layer count sets the halo depth, dims set
//! the FLOPs), not on where the weights ended up, and parity is checked
//! against the same weights either way.
//!
//! ```text
//! bench_shards [--out BENCH_shards.json] [--mutations 30] [--nodes 1024]
//! ```

#[path = "bench_row.rs"]
mod bench_row;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bench_row::{percentile, BenchRow};
use gcmae_core::model::seeded_rng;
use gcmae_core::{Gcmae, GcmaeConfig};
use gcmae_graph::Graph;
use gcmae_serve::{
    load_bundle, save_bundle, Client, Engine, Json, PartitionMode, ResilientClient, ShardTier,
    TierOptions,
};
use gcmae_tensor::parallel::set_num_threads;
use gcmae_tensor::Matrix;

const READERS: usize = 4;
const MUTATORS: usize = 4;
const MAX_BATCH: usize = 16;
/// Ring-lattice width: each node links to its `LATTICE_W` successors.
const LATTICE_W: usize = 2;
const IN_DIM: usize = 8;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_shards.json".to_string());
    let mutations: usize = flag(&args, "--mutations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let n: usize = flag(&args, "--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024);

    // Keep kernels inline: with every shard in one process, a kernel thread
    // pool would just add scheduler noise to the comparison.
    set_num_threads(1);

    let mut edges = Vec::with_capacity(n * LATTICE_W);
    for v in 0..n {
        for j in 1..=LATTICE_W {
            edges.push((v, (v + j) % n));
        }
    }
    let graph = Graph::from_edges(n, &edges);
    let mut rng = seeded_rng(17);
    let features = Matrix::uniform(n, IN_DIM, -1.0, 1.0, &mut rng);
    let cfg = GcmaeConfig { hidden_dim: 16, proj_dim: 8, ..GcmaeConfig::fast() };
    let model = Gcmae::new(&cfg, IN_DIM, &mut rng);
    eprintln!(
        "benchmark graph: ring lattice, {} nodes / {} edges",
        n,
        graph.num_edges()
    );
    let bundle = save_bundle(&model, &graph, &features);

    let mut rows: Vec<Json> = Vec::new();
    let mut read_qps = std::collections::BTreeMap::new();
    let mut all_parity = true;
    let mut leaked_total = 0_i64;
    for shards in [1_usize, 2, 4] {
        let o = run_tier(&bundle, &graph, &features, &model, shards, mutations);
        eprintln!(
            "shards={shards}: {:8.1} read q/s  p50={:.3}ms p99={:.3}ms  {} mutations  parity={} leaked={}",
            o.row.throughput_qps, o.row.p50_ms, o.row.p99_ms, o.mutations, o.parity_ok, o.leaked_threads
        );
        read_qps.insert(shards, o.row.throughput_qps);
        all_parity &= o.parity_ok;
        leaked_total += o.leaked_threads;
        rows.push(o.row.to_json(vec![
            ("mutations".to_string(), Json::int(o.mutations)),
            ("parity_ok".to_string(), Json::Bool(o.parity_ok)),
            ("leaked_threads".to_string(), Json::num(o.leaked_threads as f64)),
        ]));
    }

    let scaling = read_qps[&4] / read_qps[&1];
    eprintln!("read q/s scaling 4-shard vs single: {scaling:.2}x (parity {all_parity})");
    let doc = Json::Obj(vec![
        ("bench".into(), Json::str("shards")),
        ("graph_nodes".into(), Json::int(n)),
        ("graph_edges".into(), Json::int(graph.num_edges())),
        ("hidden_dim".into(), Json::int(cfg.hidden_dim)),
        ("mutations_per_client".into(), Json::int(mutations)),
        ("scenarios".into(), Json::Arr(rows)),
        ("read_qps_scaling_4x_over_1x".into(), Json::num(scaling)),
        ("parity_ok".into(), Json::Bool(all_parity)),
        ("leaked_threads".into(), Json::num(leaked_total as f64)),
    ]);
    std::fs::write(&out_path, doc.dump()).expect("write bench output");
    eprintln!("wrote {out_path}");
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

struct TierOutcome {
    row: BenchRow,
    mutations: usize,
    parity_ok: bool,
    leaked_threads: i64,
}

/// Threads currently in this process, from `/proc/self/status`. Falls back
/// to 0 where /proc is unavailable (the leak gate then trivially passes).
fn thread_count() -> i64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn run_tier(
    bundle: &[u8],
    graph: &Graph,
    features: &Matrix,
    model: &Gcmae,
    shards: usize,
    mutations: usize,
) -> TierOutcome {
    let baseline_threads = thread_count();
    let wal_dir = std::env::temp_dir().join(format!(
        "gcmae_bench_shards_{}_{shards}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("wal dir");

    let tier = ShardTier::launch(
        bundle,
        shards,
        TierOptions {
            mode: PartitionMode::Bfs,
            max_batch: MAX_BATCH,
            wal_dir: Some(wal_dir.clone()),
            client_seed: 0x6265_6e63_6800 | shards as u64,
            ..TierOptions::default()
        },
    )
    .expect("tier launch");
    let gateway_addr = tier.gateway_addr().to_string();
    let n = graph.num_nodes();

    // Per-shard owned regions, and each region's *interior*: nodes whose
    // closed 2·halo-hop ball stays inside the region. A mutation between
    // interior nodes has a repair plan that touches exactly the owning
    // shard (the plan's reach is bounded by 2·halo hops from the endpoints,
    // and chords added between interior nodes never extend that reach past
    // the region boundary), so concurrent mutations on different shards
    // never serialize against each other.
    let owner = tier.partition().owner.clone();
    let halo = tier.partition().halo_depth;
    let regions: Vec<Vec<usize>> = (0..shards)
        .map(|s| (0..n).filter(|&v| owner[v] as usize == s).collect())
        .collect();
    let interiors: Vec<Vec<usize>> = regions
        .iter()
        .enumerate()
        .map(|(s, region)| {
            let interior: Vec<usize> = region
                .iter()
                .copied()
                .filter(|&v| {
                    graph
                        .k_hop_closed(&[v], 2 * halo)
                        .iter()
                        .all(|&x| owner[x] as usize == s)
                })
                .collect();
            if interior.len() < 2 { region.clone() } else { interior }
        })
        .collect();

    // Mutation storm: MUTATORS sequenced clients, each looping `mutations`
    // add_edges within its pinned region's interior.
    let stop = Arc::new(AtomicBool::new(false));
    let mut mutator_handles = Vec::new();
    for m in 0..MUTATORS {
        let addr = gateway_addr.clone();
        let interior = interiors[m % shards].clone();
        mutator_handles.push(std::thread::spawn(move || -> Vec<(usize, usize)> {
            let mut client = ResilientClient::new(&addr, 0x4d00 + m as u64);
            let mut acked = Vec::with_capacity(mutations);
            let mut state = 0x9e37_79b9_u64.wrapping_mul(m as u64 + 1);
            for _ in 0..mutations {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = interior[(state >> 33) as usize % interior.len()];
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = interior[(state >> 33) as usize % interior.len()];
                if u == v {
                    continue;
                }
                client.add_edges(&[(u, v)]).expect("mutation acked");
                acked.push((u.min(v), u.max(v)));
            }
            acked
        }));
    }

    // Readers: point queries pinned to one region per request so each read
    // routes to exactly one shard (a request spanning owners pays one
    // sequential fetch per owner, which would measure fan-out latency, not
    // shard throughput). Latency is measured client-side per round trip.
    let mut reader_handles = Vec::new();
    for r in 0..READERS {
        let addr = gateway_addr.clone();
        let stop = Arc::clone(&stop);
        let region = regions[r % shards].clone();
        reader_handles.push(std::thread::spawn(move || -> Vec<f64> {
            let mut client = Client::connect(&addr).expect("reader connect");
            let mut latencies = Vec::new();
            let mut i = 0_usize;
            while !stop.load(Ordering::Acquire) {
                let nodes: Vec<usize> = (0..4)
                    .map(|k| region[(r * 31 + i * 11 + k * 3) % region.len()])
                    .collect();
                let begin = Instant::now();
                client.embed(&nodes).expect("read during storm");
                latencies.push(begin.elapsed().as_secs_f64() * 1e3);
                i += 1;
            }
            latencies
        }));
    }

    let started = Instant::now();
    let mut ledger: Vec<(usize, usize)> = Vec::new();
    for h in mutator_handles {
        ledger.extend(h.join().expect("mutator"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Release);
    let mut latencies: Vec<f64> = Vec::new();
    for h in reader_handles {
        latencies.extend(h.join().expect("reader"));
    }

    // Parity: the tier's post-storm answers must be bit-identical to a cold
    // single-process encode over the same acknowledged-mutation ledger —
    // add_edges commutes, so the ledger fully determines the final graph.
    let mut clean = graph.clone();
    ledger.sort_unstable();
    ledger.dedup();
    for &e in &ledger {
        let (next, _) = clean.add_edges(&[e]).expect("clean replay");
        clean = next;
    }
    let expected = model.encode(&clean, features);
    let mut parity_ok = true;
    let mut parity_client = Client::connect(&gateway_addr).expect("parity connect");
    for chunk_start in (0..n).step_by(32) {
        let nodes: Vec<usize> = (chunk_start..n.min(chunk_start + 32)).collect();
        let rows = parity_client.embed(&nodes).expect("parity sweep");
        for (row, &v) in rows.iter().zip(&nodes) {
            if row.as_slice() != expected.row(v) {
                parity_ok = false;
            }
        }
    }
    // Top-k parity on a node sample, against a clean unsharded engine.
    let (m2, _, _) = load_bundle(bundle).expect("bundle reload");
    let mut clean_engine =
        Engine::new(m2, clean.clone(), features.clone()).expect("clean engine");
    for v in (0..n).step_by((n / 16).max(1)) {
        let want = clean_engine.top_k(v, 5).expect("clean top_k");
        let got = parity_client.top_k(v, 5).expect("gateway top_k");
        if got != want {
            parity_ok = false;
        }
    }

    // Cache/batch stats aggregated by the gateway.
    let stats = parity_client.stats().expect("stats");
    drop(parity_client);

    // Graceful drain, then require every tier thread to exit: handler
    // threads tick their stop flags on the 500ms read-timeout poll, so give
    // the count a few seconds to settle back to baseline.
    tier.shutdown();
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    let mut leaked = thread_count() - baseline_threads;
    while leaked > 0 && Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(50));
        leaked = thread_count() - baseline_threads;
    }
    let _ = std::fs::remove_dir_all(&wal_dir);

    latencies.sort_by(f64::total_cmp);
    let reads = latencies.len();
    let hits = stats.cache_hits as f64;
    let misses = stats.cache_misses as f64;
    let batches = stats.batches as f64;
    TierOutcome {
        row: BenchRow {
            clients: READERS,
            max_batch: MAX_BATCH,
            shards,
            queries: reads,
            elapsed_s: elapsed,
            throughput_qps: reads as f64 / elapsed,
            p50_ms: percentile(&latencies, 0.50),
            p99_ms: percentile(&latencies, 0.99),
            cache_hit_rate: if hits + misses > 0.0 { hits / (hits + misses) } else { 0.0 },
            avg_batch: if batches > 0.0 { stats.batched_jobs as f64 / batches } else { 0.0 },
            ann: false,
            recall_at_10: None,
            bytes_per_node: if stats.quantized_rows > 0 {
                Some(stats.quantized_bytes as f64 / stats.quantized_rows as f64)
            } else {
                None
            },
        },
        mutations: ledger.len(),
        parity_ok,
        leaked_threads: leaked,
    }
}
