//! `bench_serve`: measures serving throughput, latency, and cache behavior
//! with and without micro-batching, and writes `BENCH_serve.json`.
//!
//! For each (clients, max_batch) scenario an in-process server is started on
//! an ephemeral port; every client thread issues a fixed number of seeded
//! embedding / link-score queries while one mutator thread periodically
//! inserts edges (keeping the cache from going fully warm, as a live system
//! would see). Latencies are measured client-side around each round trip.
//!
//! ```text
//! bench_serve [--out BENCH_serve.json] [--queries 150] [--scale 0.3]
//! ```

#[path = "bench_row.rs"]
mod bench_row;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bench_row::{percentile, BenchRow};
use gcmae_core::{GcmaeConfig, TrainSession};
use gcmae_graph::generators::citation::{generate, CitationSpec};
use gcmae_serve::{load_bundle, save_bundle, Client, Engine, Json, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Scenario {
    clients: usize,
    max_batch: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let queries: usize = flag(&args, "--queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);
    let scale: f64 = flag(&args, "--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.3);

    // One trained model reused by every scenario.
    let ds = generate(&CitationSpec::cora().scaled(scale), 11);
    let cfg = GcmaeConfig {
        epochs: 2,
        ..GcmaeConfig::fast()
    };
    eprintln!(
        "training benchmark model: {} nodes / {} edges",
        ds.num_nodes(),
        ds.graph.num_edges()
    );
    let trained = match TrainSession::new(&cfg).seed(11).run(&ds) {
        Ok(out) => out,
        Err(e) => unreachable!("unguarded session cannot fail: {e}"),
    };
    // Each scenario gets an identical engine via the bundle round-trip.
    let bundle = save_bundle(&trained.model, &ds.graph, &ds.features);

    let scenarios = [
        Scenario {
            clients: 1,
            max_batch: 1,
        },
        Scenario {
            clients: 1,
            max_batch: 32,
        },
        Scenario {
            clients: 8,
            max_batch: 1,
        },
        Scenario {
            clients: 8,
            max_batch: 32,
        },
        Scenario {
            clients: 16,
            max_batch: 1,
        },
        Scenario {
            clients: 16,
            max_batch: 32,
        },
    ];
    let mut outcomes = Vec::new();
    for s in &scenarios {
        let (model, graph, features) = load_bundle(&bundle).expect("bundle");
        let engine = Engine::new(model, graph, features).expect("engine");
        let o = run_scenario(engine, s, queries);
        eprintln!(
            "clients={:2} max_batch={:2}: {:8.1} q/s  p50={:.3}ms p99={:.3}ms hit={:.2} avg_batch={:.2}",
            o.clients, o.max_batch, o.throughput_qps, o.p50_ms, o.p99_ms, o.cache_hit_rate, o.avg_batch
        );
        outcomes.push(o);
    }
    // Row schema shared with bench_shards (`shards = 1` tags these rows as
    // the unsharded baseline).

    let doc = Json::Obj(vec![
        ("bench".into(), Json::str("serve")),
        ("graph_nodes".into(), Json::int(ds.num_nodes())),
        ("graph_edges".into(), Json::int(ds.graph.num_edges())),
        ("hidden_dim".into(), Json::int(cfg.hidden_dim)),
        ("queries_per_client".into(), Json::int(queries)),
        (
            "scenarios".into(),
            Json::Arr(outcomes.iter().map(|o| o.to_json(Vec::new())).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.dump()).expect("write bench output");
    eprintln!("wrote {out_path}");
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn run_scenario(engine: Engine, s: &Scenario, queries: usize) -> BenchRow {
    let n = engine.graph().num_nodes();
    let server = Server::start(engine, "127.0.0.1:0", s.max_batch).expect("bind");
    let addr = server.addr().to_string();

    // Mutator: keeps invalidating small neighborhoods so the cache never
    // settles, mimicking a live graph. Stops when the workers finish.
    let done = Arc::new(AtomicBool::new(false));
    let mutator = {
        let addr = addr.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("mutator connect");
            let mut rng = StdRng::seed_from_u64(999);
            while !done.load(Ordering::Acquire) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    let _ = client.add_edges(&[(u, v)]);
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        })
    };

    let started = Instant::now();
    let mut workers = Vec::new();
    for t in 0..s.clients {
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || -> Vec<f64> {
            let mut client = Client::connect(&addr).expect("connect");
            let mut rng = StdRng::seed_from_u64(42 + t as u64);
            let mut latencies = Vec::with_capacity(queries);
            for q in 0..queries {
                let begin = Instant::now();
                if q % 16 == 15 {
                    let pairs: Vec<(usize, usize)> = (0..4)
                        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                        .collect();
                    client.link_scores(&pairs).expect("link query");
                } else {
                    let nodes: Vec<usize> = (0..4).map(|_| rng.gen_range(0..n)).collect();
                    client.embed(&nodes).expect("embed query");
                }
                latencies.push(begin.elapsed().as_secs_f64() * 1e3);
            }
            latencies
        }));
    }
    let mut latencies: Vec<f64> = Vec::new();
    for w in workers {
        latencies.extend(w.join().expect("worker"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);
    mutator.join().expect("mutator");

    let mut stats_client = Client::connect(&addr).expect("stats connect");
    let stats = stats_client.stats().expect("stats");
    server.shutdown();

    let hits = stats.cache_hits as f64;
    let misses = stats.cache_misses as f64;
    let batches = stats.batches as f64;
    let batched_jobs = stats.batched_jobs as f64;
    latencies.sort_by(f64::total_cmp);
    let total = latencies.len();
    BenchRow {
        clients: s.clients,
        max_batch: s.max_batch,
        shards: 1,
        queries: total,
        elapsed_s: elapsed,
        throughput_qps: total as f64 / elapsed,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        cache_hit_rate: if hits + misses > 0.0 {
            hits / (hits + misses)
        } else {
            0.0
        },
        avg_batch: if batches > 0.0 {
            batched_jobs / batches
        } else {
            0.0
        },
        // The read mix here is embed/link_score/top_k (exact paths); the
        // quantized sidecar still fills on warm, so its footprint is real.
        ann: false,
        recall_at_10: None,
        bytes_per_node: if stats.quantized_rows > 0 {
            Some(stats.quantized_bytes as f64 / stats.quantized_rows as f64)
        } else {
            None
        },
    }
}
