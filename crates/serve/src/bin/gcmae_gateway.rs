//! `gcmae-gateway`: partition a checkpoint into shard slices, front running
//! shards with a fan-out gateway, or run a whole tier in one process.
//!
//! ```text
//! gcmae-gateway partition --checkpoint ckpt.bin --out-dir tier
//!               [--shards 4] [--mode bfs|hash] [--halo N]
//! gcmae-gateway serve --checkpoint ckpt.bin --manifest tier/manifest.json
//!               --shards 127.0.0.1:7441,127.0.0.1:7442,...
//!               [--addr 127.0.0.1:7440] [--wal gateway.wal] [--readers 4]
//! gcmae-gateway tier --checkpoint ckpt.bin [--shards 4] [--mode bfs|hash]
//!               [--addr 127.0.0.1:7440] [--wal-dir tier-wal]
//! ```
//!
//! The full multi-process flow: `partition` writes `manifest.json` plus one
//! standalone GSRB bundle per shard; each shard runs
//! `gcmae-serve serve --checkpoint tier/shard<i>.bin --shard-manifest
//! tier/manifest.json --shard-index <i>`; then `serve` starts the gateway
//! against those shard addresses. `tier` collapses all of that into one
//! process on ephemeral ports — handy for local experiments.

use std::process::ExitCode;

use gcmae_serve::{
    halo_depth_for, load_bundle, Gateway, GatewayOptions, Json, Partition, PartitionMode,
    ShardTier, TierOptions,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("partition") => cmd_partition(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("tier") => cmd_tier(&args[1..]),
        _ => Err("usage: gcmae-gateway <partition|serve|tier> [options]".to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gcmae-gateway: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("bad value for {name}: {raw}")),
    }
}

fn parse_mode(args: &[String]) -> Result<PartitionMode, String> {
    match flag(args, "--mode") {
        None => Ok(PartitionMode::Bfs),
        Some(raw) => {
            PartitionMode::parse(&raw).ok_or(format!("bad value for --mode (want bfs|hash): {raw}"))
        }
    }
}

fn load_checkpoint(
    args: &[String],
) -> Result<(gcmae_core::Gcmae, gcmae_graph::Graph, gcmae_tensor::Matrix), String> {
    let path = flag(args, "--checkpoint").ok_or("need --checkpoint <file>")?;
    let blob = std::fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    load_bundle(&blob).map_err(|e| format!("{path}: {e}"))
}

/// A per-process-lifetime identity seed for the gateway's shard-facing
/// mutation clients, used only when running **without** a WAL: shards dedup
/// retries within one gateway lifetime, and with no journal to resume from
/// a restarted gateway must start fresh sequences rather than collide with
/// its predecessor's. With a WAL, the stable default seed is used instead —
/// startup probes each shard and resumes the journaled sequences, so the
/// identity must survive the restart.
fn lifetime_seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    (nanos ^ ((std::process::id() as u64) << 32)) | 1
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    let out_dir = flag(args, "--out-dir").ok_or("partition needs --out-dir <dir>")?;
    let shards: usize = parse_flag(args, "--shards", 4)?;
    let mode = parse_mode(args)?;
    let (model, graph, features) = load_checkpoint(args)?;
    let halo: usize = parse_flag(args, "--halo", halo_depth_for(model.encoder_layers()))?;
    let partition = Partition::build(&graph, shards, mode, halo).map_err(|e| e.to_string())?;
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
    let dir = std::path::Path::new(&out_dir);
    let manifest = dir.join("manifest.json");
    std::fs::write(&manifest, partition.to_json().dump())
        .map_err(|e| format!("cannot write manifest: {e}"))?;
    for s in 0..shards {
        let slice = partition.shard_bundle(&model, &graph, &features, s);
        let path = dir.join(format!("shard{s}.bin"));
        std::fs::write(&path, &slice)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        let spec = &partition.shards[s];
        println!(
            "shard {s}: {} residents ({} owned) -> {} ({} bytes)",
            spec.residents.len(),
            spec.owned_nodes(),
            path.display(),
            slice.len()
        );
    }
    println!(
        "partitioned {} nodes into {shards} {} shards, halo depth {halo}; manifest at {}",
        graph.num_nodes(),
        mode.name(),
        manifest.display()
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let manifest_path = flag(args, "--manifest").ok_or("serve needs --manifest <file>")?;
    let shard_list = flag(args, "--shards").ok_or("serve needs --shards addr1,addr2,...")?;
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7440".to_string());
    let (_, graph, features) = load_checkpoint(args)?;
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {manifest_path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{manifest_path}: {e}"))?;
    let partition = Partition::from_json(&doc).map_err(|e| e.to_string())?;
    let shard_addrs: Vec<String> = shard_list.split(',').map(str::to_string).collect();
    let wal_path = flag(args, "--wal").map(std::path::PathBuf::from);
    let client_seed = if wal_path.is_some() {
        GatewayOptions::default().client_seed
    } else {
        lifetime_seed()
    };
    let opts = GatewayOptions {
        read_connections: parse_flag(args, "--readers", 4)?,
        wal_path,
        client_seed,
        ..GatewayOptions::default()
    };
    let gateway = Gateway::start(graph, &features, &partition, &shard_addrs, &addr, opts)
        .map_err(|e| e.to_string())?;
    println!(
        "gateway on {} fronting {} shards (mode {}, halo depth {}); send shutdown to stop",
        gateway.addr(),
        partition.num_shards(),
        partition.mode.name(),
        partition.halo_depth
    );
    gateway.run_until_shutdown();
    println!("gateway stopped");
    Ok(())
}

fn cmd_tier(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--checkpoint").ok_or("tier needs --checkpoint <file>")?;
    let blob = std::fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let shards: usize = parse_flag(args, "--shards", 4)?;
    let wal_dir = flag(args, "--wal-dir").map(std::path::PathBuf::from);
    let client_seed = if wal_dir.is_some() {
        TierOptions::default().client_seed
    } else {
        lifetime_seed()
    };
    let opts = TierOptions {
        mode: parse_mode(args)?,
        wal_dir,
        client_seed,
        ..TierOptions::default()
    };
    if let Some(dir) = &opts.wal_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create wal dir: {e}"))?;
    }
    let tier = ShardTier::launch(&blob, shards, opts).map_err(|e| e.to_string())?;
    for (s, addr) in tier.shard_addrs().iter().enumerate() {
        println!("shard {s} on {addr}");
    }
    println!(
        "gateway on {} ({} shards); send shutdown to stop",
        tier.gateway_addr(),
        tier.num_shards()
    );
    tier.run_until_shutdown();
    println!("tier stopped");
    Ok(())
}
