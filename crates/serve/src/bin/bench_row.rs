//! Shared scenario-row schema for the serving benches.
//!
//! `bench_serve` (single process, `shards = 1`) and `bench_shards` (tiers
//! behind a gateway) emit the same row keys, so one reader aggregates both
//! files into a single table; bench-specific extras ride as additional keys
//! after the shared prefix.

use gcmae_serve::Json;

/// One benchmark scenario's results.
pub struct BenchRow {
    /// Concurrent reader clients.
    pub clients: usize,
    /// Scheduler coalescing cap (per shard, where sharded).
    pub max_batch: usize,
    /// Shard count; `1` = unsharded single process.
    pub shards: usize,
    /// Read queries completed.
    pub queries: usize,
    /// Wall-clock seconds for the measured span.
    pub elapsed_s: f64,
    /// Read queries per second.
    pub throughput_qps: f64,
    /// Median read latency, milliseconds.
    pub p50_ms: f64,
    /// Tail read latency, milliseconds.
    pub p99_ms: f64,
    /// Embedding-cache hit rate over the run (summed across shards).
    pub cache_hit_rate: f64,
    /// Mean coalesced batch size (jobs per scheduler group).
    pub avg_batch: f64,
    /// Whether the scenario exercised the ANN similarity path (`sim_top_k`)
    /// rather than exact brute-force / neighbor scoring.
    pub ann: bool,
    /// Recall@10 against an exact brute-force oracle; `None` when the
    /// scenario has no similarity component to measure.
    pub recall_at_10: Option<f64>,
    /// Resident bytes per node in the quantized embedding store; `None`
    /// when the store was empty for the scenario.
    pub bytes_per_node: Option<f64>,
}

impl BenchRow {
    /// Serializes the shared keys, then any bench-specific `extra` keys.
    /// Optional keys are omitted (not null) when unset, so pre-existing
    /// readers keep working on rows that never measured them.
    pub fn to_json(&self, extra: Vec<(String, Json)>) -> Json {
        let mut fields = vec![
            ("clients".to_string(), Json::int(self.clients)),
            ("max_batch".to_string(), Json::int(self.max_batch)),
            ("shards".to_string(), Json::int(self.shards)),
            ("queries".to_string(), Json::int(self.queries)),
            ("elapsed_s".to_string(), Json::num(self.elapsed_s)),
            ("throughput_qps".to_string(), Json::num(self.throughput_qps)),
            ("p50_ms".to_string(), Json::num(self.p50_ms)),
            ("p99_ms".to_string(), Json::num(self.p99_ms)),
            ("cache_hit_rate".to_string(), Json::num(self.cache_hit_rate)),
            ("avg_batch".to_string(), Json::num(self.avg_batch)),
            ("ann".to_string(), Json::Bool(self.ann)),
        ];
        if let Some(r) = self.recall_at_10 {
            fields.push(("recall_at_10".to_string(), Json::num(r)));
        }
        if let Some(b) = self.bytes_per_node {
            fields.push(("bytes_per_node".to_string(), Json::num(b)));
        }
        fields.extend(extra);
        Json::Obj(fields)
    }
}

/// `p`-th percentile of an ascending-sorted latency list.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}
