//! Wire protocol: length-prefixed JSON frames and the request/response
//! vocabulary shared by server and client.
//!
//! Frame layout: `u32` little-endian payload length, then that many bytes of
//! UTF-8 JSON. Responses are objects with an `"ok"` field: `{"ok":true,...}`
//! on success, `{"ok":false,"error":"..."}` on failure.

use std::io::{Read, Write};

use crate::json::{Json, JsonError};

/// Frames larger than this are rejected before allocation — a corrupt or
/// adversarial length prefix must not OOM the server.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Protocol-level failure.
#[derive(Debug)]
pub enum ProtocolError {
    /// Socket/file error.
    Io(std::io::Error),
    /// Length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge(usize),
    /// Payload is not valid UTF-8 JSON.
    BadJson(JsonError),
    /// Valid JSON but not a well-formed request/response.
    BadMessage(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "io error: {e}"),
            ProtocolError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            ProtocolError::BadJson(e) => write!(f, "bad frame payload: {e}"),
            ProtocolError::BadMessage(msg) => write!(f, "bad message: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, doc: &Json) -> Result<(), ProtocolError> {
    let payload = doc.dump();
    let len = payload.len();
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. Blocks until a full frame arrives or the stream errors.
pub fn read_frame(r: &mut impl Read) -> Result<Json, ProtocolError> {
    let mut len_buf = [0_u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let mut payload = vec![0_u8; len];
    r.read_exact(&mut payload)?;
    let text =
        std::str::from_utf8(&payload).map_err(|_| ProtocolError::BadMessage("not utf-8"))?;
    Json::parse(text).map_err(ProtocolError::BadJson)
}

/// A client request. `Embed`, `LinkScore`, and `TopK` are read-only and may
/// be coalesced into one encoder forward by the scheduler; `AddEdges` and
/// `AddNode` mutate the graph and act as ordering barriers.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Server counters (cache hits/misses, epoch, graph size).
    Stats,
    /// Embeddings for the listed nodes.
    Embed {
        /// Target node ids (duplicates allowed; order is preserved).
        nodes: Vec<usize>,
    },
    /// Dot-product link scores for node pairs.
    LinkScore {
        /// `(u, v)` pairs to score.
        pairs: Vec<(usize, usize)>,
    },
    /// The `k` graph neighbors of `node` with the highest link score.
    TopK {
        /// Anchor node.
        node: usize,
        /// How many neighbors to return.
        k: usize,
    },
    /// Incrementally insert undirected edges.
    AddEdges {
        /// `(u, v)` pairs to insert.
        edges: Vec<(usize, usize)>,
    },
    /// Append a node with the given neighbors and feature row.
    AddNode {
        /// Existing nodes to connect to.
        neighbors: Vec<usize>,
        /// Feature row for the new node (must match the model input width).
        features: Vec<f32>,
    },
    /// Stop the server after answering.
    Shutdown,
}

impl Request {
    /// True for requests that never mutate engine state — the scheduler may
    /// batch these together.
    pub fn is_read_only(&self) -> bool {
        !matches!(self, Request::AddEdges { .. } | Request::AddNode { .. } | Request::Shutdown)
    }

    /// Serializes the request to its wire document.
    pub fn to_json(&self) -> Json {
        let op = |name: &str| ("op".to_string(), Json::str(name));
        match self {
            Request::Ping => Json::Obj(vec![op("ping")]),
            Request::Stats => Json::Obj(vec![op("stats")]),
            Request::Embed { nodes } => Json::Obj(vec![
                op("embed"),
                ("nodes".into(), Json::Arr(nodes.iter().map(|&n| Json::int(n)).collect())),
            ]),
            Request::LinkScore { pairs } => Json::Obj(vec![
                op("link_score"),
                (
                    "pairs".into(),
                    Json::Arr(
                        pairs
                            .iter()
                            .map(|&(u, v)| Json::Arr(vec![Json::int(u), Json::int(v)]))
                            .collect(),
                    ),
                ),
            ]),
            Request::TopK { node, k } => Json::Obj(vec![
                op("top_k"),
                ("node".into(), Json::int(*node)),
                ("k".into(), Json::int(*k)),
            ]),
            Request::AddEdges { edges } => Json::Obj(vec![
                op("add_edges"),
                (
                    "edges".into(),
                    Json::Arr(
                        edges
                            .iter()
                            .map(|&(u, v)| Json::Arr(vec![Json::int(u), Json::int(v)]))
                            .collect(),
                    ),
                ),
            ]),
            Request::AddNode { neighbors, features } => Json::Obj(vec![
                op("add_node"),
                (
                    "neighbors".into(),
                    Json::Arr(neighbors.iter().map(|&n| Json::int(n)).collect()),
                ),
                (
                    "features".into(),
                    Json::Arr(features.iter().map(|&v| crate::json::f32_to_json(v)).collect()),
                ),
            ]),
            Request::Shutdown => Json::Obj(vec![op("shutdown")]),
        }
    }

    /// Parses a wire document into a request.
    pub fn from_json(doc: &Json) -> Result<Request, ProtocolError> {
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::BadMessage("missing op"))?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "embed" => Ok(Request::Embed { nodes: usize_list(doc, "nodes")? }),
            "link_score" => Ok(Request::LinkScore { pairs: pair_list(doc, "pairs")? }),
            "top_k" => {
                let node = doc
                    .get("node")
                    .and_then(Json::as_usize)
                    .ok_or(ProtocolError::BadMessage("top_k needs node"))?;
                let k = doc
                    .get("k")
                    .and_then(Json::as_usize)
                    .ok_or(ProtocolError::BadMessage("top_k needs k"))?;
                Ok(Request::TopK { node, k })
            }
            "add_edges" => Ok(Request::AddEdges { edges: pair_list(doc, "edges")? }),
            "add_node" => {
                let neighbors = usize_list(doc, "neighbors")?;
                let features = doc
                    .get("features")
                    .and_then(Json::as_arr)
                    .ok_or(ProtocolError::BadMessage("add_node needs features"))?
                    .iter()
                    .map(|j| {
                        crate::json::json_to_f32(j)
                            .ok_or(ProtocolError::BadMessage("feature must be a number"))
                    })
                    .collect::<Result<Vec<f32>, _>>()?;
                Ok(Request::AddNode { neighbors, features })
            }
            _ => Err(ProtocolError::BadMessage("unknown op")),
        }
    }
}

fn usize_list(doc: &Json, key: &'static str) -> Result<Vec<usize>, ProtocolError> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or(ProtocolError::BadMessage("missing id list"))?
        .iter()
        .map(|j| j.as_usize().ok_or(ProtocolError::BadMessage("id must be a non-negative int")))
        .collect()
}

fn pair_list(doc: &Json, key: &'static str) -> Result<Vec<(usize, usize)>, ProtocolError> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or(ProtocolError::BadMessage("missing pair list"))?
        .iter()
        .map(|j| {
            let pair = j.as_arr().ok_or(ProtocolError::BadMessage("pair must be an array"))?;
            if pair.len() != 2 {
                return Err(ProtocolError::BadMessage("pair must have 2 elements"));
            }
            let u = pair[0].as_usize().ok_or(ProtocolError::BadMessage("pair id must be int"))?;
            let v = pair[1].as_usize().ok_or(ProtocolError::BadMessage("pair id must be int"))?;
            Ok((u, v))
        })
        .collect()
}

/// Builds a success response from payload fields.
pub fn ok_response(fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(fields);
    Json::Obj(all)
}

/// Builds an error response.
pub fn err_response(msg: impl std::fmt::Display) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::str(msg.to_string())),
    ])
}

/// Splits a response into `Ok(payload)` / `Err(server message)`.
pub fn check_response(doc: Json) -> Result<Json, ProtocolError> {
    match doc.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(doc),
        Some(false) => {
            // Surface the server's message; the static-str error type keeps
            // the exact text in the Display output via BadJson-free path.
            Err(ProtocolError::BadMessage("server returned an error (see response)"))
        }
        None => Err(ProtocolError::BadMessage("response missing ok field")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_through_a_buffer() {
        let docs = vec![
            Request::Ping.to_json(),
            Request::Embed { nodes: vec![0, 5, 5, 2] }.to_json(),
            Request::AddNode { neighbors: vec![1, 2], features: vec![0.25, -1.5e-3] }.to_json(),
        ];
        let mut buf = Vec::new();
        for d in &docs {
            write_frame(&mut buf, d).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for d in &docs {
            assert_eq!(&read_frame(&mut cur).unwrap(), d);
        }
    }

    #[test]
    fn every_request_roundtrips_through_json() {
        let reqs = vec![
            Request::Ping,
            Request::Stats,
            Request::Embed { nodes: vec![3, 1, 3] },
            Request::LinkScore { pairs: vec![(0, 1), (7, 7)] },
            Request::TopK { node: 4, k: 10 },
            Request::AddEdges { edges: vec![(1, 2), (0, 9)] },
            Request::AddNode { neighbors: vec![0], features: vec![1.0, 2.5] },
            Request::Shutdown,
        ];
        for r in reqs {
            let doc = r.to_json();
            let parsed = Json::parse(&doc.dump()).unwrap();
            assert_eq!(Request::from_json(&parsed).unwrap(), r);
        }
    }

    #[test]
    fn read_only_classification_matches_mutation_set() {
        assert!(Request::Ping.is_read_only());
        assert!(Request::Embed { nodes: vec![] }.is_read_only());
        assert!(Request::TopK { node: 0, k: 1 }.is_read_only());
        assert!(!Request::AddEdges { edges: vec![] }.is_read_only());
        assert!(!Request::AddNode { neighbors: vec![], features: vec![] }.is_read_only());
        assert!(!Request::Shutdown.is_read_only());
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(b"xx");
        match read_frame(&mut Cursor::new(buf)) {
            Err(ProtocolError::FrameTooLarge(_)) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for text in [
            "{\"op\":\"nope\"}",
            "{\"nodes\":[1]}",
            "{\"op\":\"embed\"}",
            "{\"op\":\"embed\",\"nodes\":[-1]}",
            "{\"op\":\"embed\",\"nodes\":[1.5]}",
            "{\"op\":\"link_score\",\"pairs\":[[1]]}",
            "{\"op\":\"top_k\",\"node\":0}",
        ] {
            let doc = Json::parse(text).unwrap();
            assert!(Request::from_json(&doc).is_err(), "accepted {text}");
        }
    }

    #[test]
    fn response_helpers_tag_ok_field() {
        let ok = ok_response(vec![("x".into(), Json::int(1))]);
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        assert!(check_response(ok).is_ok());
        let err = err_response("boom");
        assert_eq!(err.get("error").unwrap().as_str(), Some("boom"));
        assert!(check_response(err).is_err());
    }
}
